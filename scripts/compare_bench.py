#!/usr/bin/env python3
"""Compare two BENCH_table5.json files and flag performance regressions.

Usage:
  compare_bench.py BASELINE.json CANDIDATE.json [--max-regression 0.10]
      Diffs every rate metric (users/sec, rows/sec, and the in-run speedup
      ratios) in the "kernel", "serving", and "engine" sections, matching
      rows by name. Exits non-zero when any metric regresses by more than
      --max-regression (default 10%). Rows or metrics present only on one
      side are reported but never fail the run — corpus scale and machine
      geometry legitimately change the row set.

  compare_bench.py --assert-only CANDIDATE.json [--min-full-speedup 0.98]
      No baseline: asserts invariants that must hold on any machine at any
      scale. Gated today:
        * every "kernel" sweep row's full-sweep speedup vs the reference
          loop is >= --min-full-speedup (the kernel must never lose to the
          loop it replaced) — gated only where the comparison measures the
          kernel. Two exemptions, both reported: rows whose reference loop
          runs under --min-ref-ns per DP iteration (default 1 µs), where
          the ratio measures ~20 ns of fixed per-call overhead against
          timer noise; and rows whose CSR edge stream does not fit L2
          (12·edges + 16·nodes > l2_bytes), where both loops are
          bandwidth-bound streaming the same bytes — the true ratio is
          ~1.0 (see docs/KERNELS.md) and the measured one swings 0.9-1.1
          with host phase on shared runners. The bandwidth regime is gated
          by the fused width-8 floor below instead, which is what actually
          buys throughput there.
        * every "kernel" sweep row whose value vector does NOT fit L2
          (cache_level L3/RAM — the bandwidth-bound regime fusion exists
          for) must show a width-8 fused per-query speedup of at least
          --min-fused-w8 over width 1. In-cache rows are reported but not
          gated: there the single-query sweep is already compute-bound
          and fusion's benefit is incidental.
        * every "serving" algorithm row's steady_vs_cold_speedup (warm
          cache-served pass vs the cold pass of the same run) is
          >= --min-serving-warm, gated only where the cold pass
          genuinely extracted (cold_hit_rate < 0.5): the zero-copy warm
          path must decisively beat the extraction + plan building it
          skips. Rows whose "cold" pass already ran on hits
          (cross-recommender seed sharing) compare warm to warm and are
          reported but not gated. Skipped with a note when the artifact
          has no serving section (--kernel_only runs).

  compare_bench.py --load BASELINE.json CANDIDATE.json
      Diffs two BENCH_load.json files from bench_load: closed-loop
      throughput per ladder rung plus the saturation headline, and
      open-loop achieved rate, tail latency (p50/p99/p99.9) and rejection
      rate per swept point. Always informational (exit 0): wall-clock load
      numbers are runner-class and core-count dependent, so the diff is a
      prompt to look, never a merge gate.

Absolute rates compare runs on the *same machine* (CI keeps the seed
baseline's runner class); the speedup ratios are machine-normalized
already, since both sides of each ratio were measured in the same run.
"""

import argparse
import json
import sys

# Higher-is-better metrics, by JSON location. Lower-is-better latency
# fields are deliberately left out: they are redundant with the rates
# (1/x), and comparing both would double-count every regression.
KERNEL_SWEEP_RATES = (
    "reference_rows_per_second",
    "kernel_rows_per_second",
    "speedup",
    "full_vs_reference_speedup",
    "cached_speedup",
)
ALGORITHM_RATES = ("batch_users_per_second",)
# Fused-ladder fields diffed per width inside each kernel sweep row.
# Informational only: the ladder's shape is cache-geometry dependent, so
# cross-machine drift is a prompt to look, while the machine-normalized
# width-8 floor below is the actual gate.
FUSED_RUNG_FIELDS = ("per_query_ns_per_iteration", "speedup_vs_width1")
SERVING_RATES = ("steady_users_per_second", "steady_vs_cold_speedup")
ENGINE_RATES = ("users_per_second",)

# Load harness (BENCH_load.json): higher-is-better rates and
# lower-is-better tail latencies, reported side by side but never gated.
LOAD_CLOSED_RATES = ("throughput_rps",)
LOAD_OPEN_RATES = ("achieved_rps",)
LOAD_OPEN_LATENCIES = ("p50_seconds", "p99_seconds", "p999_seconds")

# Field renames across repo history: candidate readers accept both.
FULL_SPEEDUP_ALIASES = ("full_vs_reference_speedup", "full_sweep_speedup")


def rows_by_name(obj, *path):
    """Returns {name: row} for a list of named rows at path, or {}."""
    node = obj
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return {}
        node = node[key]
    if not isinstance(node, list):
        return {}
    return {row["name"]: row for row in node if isinstance(row, dict) and "name" in row}


def fused_rungs(row):
    """Returns {width: rung} for a kernel sweep row's fused ladder, or {}."""
    ladder = row.get("fused")
    if not isinstance(ladder, list):
        return {}
    return {
        rung["width"]: rung
        for rung in ladder
        if isinstance(rung, dict) and isinstance(rung.get("width"), int)
    }


def metric(row, name):
    for alias in FULL_SPEEDUP_ALIASES if name == "full_vs_reference_speedup" else (name,):
        value = row.get(alias)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def compare(baseline, candidate, max_regression):
    """Yields (section, row, metric, base, cand, regression) tuples."""
    sections = (
        ("kernel", ("kernel", "sweeps"), KERNEL_SWEEP_RATES),
        ("algorithms", ("algorithms",), ALGORITHM_RATES),
        ("serving", ("serving", "algorithms"), SERVING_RATES),
        ("engine", ("engine", "traffic"), ENGINE_RATES),
    )
    failures = []
    for section, path, rates in sections:
        base_rows = rows_by_name(baseline, *path)
        cand_rows = rows_by_name(candidate, *path)
        for name in base_rows.keys() | cand_rows.keys():
            if name not in cand_rows:
                print(f"  [info] {section}/{name}: only in baseline")
                continue
            if name not in base_rows:
                print(f"  [info] {section}/{name}: only in candidate")
                continue
            for rate in rates:
                base = metric(base_rows[name], rate)
                cand = metric(cand_rows[name], rate)
                if base is None or cand is None or base <= 0.0:
                    continue
                regression = (base - cand) / base
                marker = " "
                if regression > max_regression:
                    failures.append((section, name, rate))
                    marker = "!"
                print(
                    f" {marker} {section}/{name}.{rate}: "
                    f"{base:.4g} -> {cand:.4g} ({-regression:+.1%})"
                )
            if section == "kernel":
                base_fused = fused_rungs(base_rows[name])
                cand_fused = fused_rungs(cand_rows[name])
                for width in sorted(base_fused.keys() | cand_fused.keys()):
                    if width not in base_fused or width not in cand_fused:
                        side = ("baseline" if width in base_fused
                                else "candidate")
                        print(f"  [info] {section}/{name}.fused.w{width}: "
                              f"only in {side}")
                        continue
                    for field in FUSED_RUNG_FIELDS:
                        base = metric(base_fused[width], field)
                        cand = metric(cand_fused[width], field)
                        if base is None or cand is None or base <= 0.0:
                            continue
                        delta = (cand - base) / base
                        print(
                            f"   {section}/{name}.fused.w{width}.{field}: "
                            f"{base:.4g} -> {cand:.4g} ({delta:+.1%}) [info]"
                        )
    return failures


def scalar(obj, *path):
    node = obj
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare_load(baseline, candidate):
    """Prints load-harness drift; informational only, never fails."""
    for label, path, base_v, cand_v in (
        ("closed_loop.saturation_rps", None,
         scalar(baseline, "closed_loop", "saturation_rps"),
         scalar(candidate, "closed_loop", "saturation_rps")),
        ("open_loop.rejection_rate_at_2x_saturation", None,
         scalar(baseline, "open_loop", "rejection_rate_at_2x_saturation"),
         scalar(candidate, "open_loop", "rejection_rate_at_2x_saturation")),
    ):
        if base_v is None or cand_v is None:
            print(f"  [info] {label}: missing on one side")
            continue
        if base_v:
            delta = f"{(cand_v - base_v) / base_v:+.1%}"
        else:
            delta = f"{cand_v - base_v:+.4f} abs"
        print(f"   {label}: {base_v:.4g} -> {cand_v:.4g} ({delta})")
    sections = (
        ("closed_loop", ("closed_loop", "ladder"), LOAD_CLOSED_RATES, ()),
        ("open_loop", ("open_loop", "points"), LOAD_OPEN_RATES,
         LOAD_OPEN_LATENCIES),
    )
    for section, path, rates, latencies in sections:
        base_rows = rows_by_name(baseline, *path)
        cand_rows = rows_by_name(candidate, *path)
        for name in sorted(base_rows.keys() | cand_rows.keys()):
            if name not in cand_rows or name not in base_rows:
                side = "baseline" if name in base_rows else "candidate"
                print(f"  [info] {section}/{name}: only in {side}")
                continue
            for field in (*rates, *latencies):
                base = metric(base_rows[name], field)
                cand = metric(cand_rows[name], field)
                if base is None or cand is None or base <= 0.0:
                    continue
                delta = (cand - base) / base
                worse = delta < 0 if field in rates else delta > 0
                print(
                    f" {'~' if worse else ' '} {section}/{name}.{field}: "
                    f"{base:.4g} -> {cand:.4g} ({delta:+.1%})"
                )
    print("load diff is informational; not a gate")
    return []


def assert_invariants(candidate, min_full_speedup, min_ref_ns,
                      min_serving_warm, min_fused_w8):
    failures = []
    sweeps = rows_by_name(candidate, "kernel", "sweeps")
    if not sweeps:
        print("  [warn] no kernel sweep rows found")
    l2_bytes = scalar(candidate, "kernel", "cache_geometry", "l2_bytes")
    for name, row in sorted(sweeps.items()):
        speedup = metric(row, "full_vs_reference_speedup")
        if speedup is None:
            print(f"  [warn] kernel/{name}: no full-sweep speedup field")
            continue
        ref_ns = metric(row, "reference_ns_per_iteration")
        if ref_ns is not None and ref_ns < min_ref_ns:
            print(
                f"   kernel/{name}: full_vs_reference_speedup {speedup:.2f} "
                f"[not gated: reference {ref_ns:.0f} ns/it < {min_ref_ns:.0f}]"
            )
            continue
        edges = metric(row, "edges")
        nodes = metric(row, "nodes")
        if (l2_bytes and edges is not None and nodes is not None
                and 12 * edges + 16 * nodes > l2_bytes):
            print(
                f"   kernel/{name}: full_vs_reference_speedup {speedup:.2f} "
                f"[not gated: edge stream exceeds L2 — bandwidth-bound, "
                f"see fused w8 floor]"
            )
            continue
        ok = speedup >= min_full_speedup
        print(
            f" {' ' if ok else '!'} kernel/{name}: "
            f"full_vs_reference_speedup {speedup:.2f} "
            f"(floor {min_full_speedup:.2f})"
        )
        if not ok:
            failures.append(("kernel", name, "full_vs_reference_speedup"))
    # Fused width-8 floor: past-L2 rows must show the CSR stream actually
    # amortizing across lanes. The ratio is machine-normalized (both widths
    # measured in the same run, rung sizes derived from the measured cache
    # geometry), so it gates on any runner.
    for name, row in sorted(sweeps.items()):
        rung = fused_rungs(row).get(8)
        past_l2 = row.get("cache_level") in ("L3", "RAM")
        if rung is None:
            if past_l2:
                print(f"  [warn] kernel/{name}: past-L2 row has no fused "
                      f"width-8 rung")
            continue
        ratio = metric(rung, "speedup_vs_width1")
        if ratio is None:
            print(f"  [warn] kernel/{name}: fused width-8 rung has no "
                  f"speedup_vs_width1")
            continue
        if not past_l2:
            print(f"   kernel/{name}: fused w8 speedup_vs_width1 "
                  f"{ratio:.2f} [not gated: value vector fits "
                  f"{row.get('cache_level', '?')}]")
            continue
        ok = ratio >= min_fused_w8
        print(
            f" {' ' if ok else '!'} kernel/{name}: fused w8 "
            f"speedup_vs_width1 {ratio:.2f} (floor {min_fused_w8:.2f})"
        )
        if not ok:
            failures.append(("kernel", name, "fused.w8.speedup_vs_width1"))
    serving = rows_by_name(candidate, "serving", "algorithms")
    if not serving:
        print("  [info] no serving rows (kernel-only run?); "
              "serving warm floor skipped")
    for name, row in sorted(serving.items()):
        ratio = metric(row, "steady_vs_cold_speedup")
        if ratio is None:
            print(f"  [warn] serving/{name}: no steady_vs_cold_speedup field")
            continue
        cold_hits = metric(row, "cold_hit_rate")
        if cold_hits is not None and cold_hits >= 0.5:
            # Cross-recommender sharing: this row's "cold" pass already ran
            # on cache hits (AT/AC1 after AC2 filled the cache), so the
            # ratio compares two warm passes — pure timer noise, nothing to
            # gate. Only rows whose cold pass genuinely extracted measure
            # the warm path's saving.
            print(
                f"   serving/{name}: steady_vs_cold_speedup {ratio:.2f} "
                f"[not gated: cold pass was already warm "
                f"(hit rate {cold_hits:.0%})]"
            )
            continue
        ok = ratio >= min_serving_warm
        print(
            f" {' ' if ok else '!'} serving/{name}: "
            f"steady_vs_cold_speedup {ratio:.2f} "
            f"(floor {min_serving_warm:.2f})"
        )
        if not ok:
            failures.append(("serving", name, "steady_vs_cold_speedup"))
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("files", nargs="+", help="baseline and candidate, or just candidate with --assert-only")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="fail when a rate metric drops by more than this fraction (default 0.10)")
    parser.add_argument("--assert-only", action="store_true",
                        help="check machine-independent invariants of one file instead of diffing two")
    parser.add_argument("--load", action="store_true",
                        help="diff two BENCH_load.json load-harness files (informational, always exits 0)")
    parser.add_argument("--min-full-speedup", type=float, default=0.98,
                        help="--assert-only: floor for every sweep row's full_vs_reference_speedup (default 0.98)")
    parser.add_argument("--min-ref-ns", type=float, default=1000.0,
                        help="--assert-only: skip gating rows whose reference loop is faster than this per iteration (default 1000 ns)")
    parser.add_argument("--min-fused-w8", type=float, default=1.3,
                        help="--assert-only: floor for the fused ladder's width-8 speedup_vs_width1 on kernel rows whose value vector does not fit L2 (measured ~2.5x on the seed machine; in-cache rows are reported but not gated) (default 1.3)")
    parser.add_argument("--min-serving-warm", type=float, default=1.2,
                        help="--assert-only: floor for steady_vs_cold_speedup on serving rows whose cold pass genuinely extracted (cold_hit_rate < 0.5); already-warm cold passes are reported but not gated (default 1.2)")
    args = parser.parse_args()

    if args.assert_only:
        if len(args.files) != 1:
            parser.error("--assert-only takes exactly one file")
        with open(args.files[0]) as f:
            candidate = json.load(f)
        print(f"asserting invariants of {args.files[0]}")
        failures = assert_invariants(candidate, args.min_full_speedup,
                                     args.min_ref_ns,
                                     args.min_serving_warm,
                                     args.min_fused_w8)
    elif args.load:
        if len(args.files) != 2:
            parser.error("--load expects BASELINE.json CANDIDATE.json")
        with open(args.files[0]) as f:
            baseline = json.load(f)
        with open(args.files[1]) as f:
            candidate = json.load(f)
        print(f"load harness: {args.files[0]} (baseline) vs {args.files[1]}")
        failures = compare_load(baseline, candidate)
    else:
        if len(args.files) != 2:
            parser.error("expected BASELINE.json CANDIDATE.json")
        with open(args.files[0]) as f:
            baseline = json.load(f)
        with open(args.files[1]) as f:
            candidate = json.load(f)
        print(f"comparing {args.files[0]} (baseline) vs {args.files[1]}")
        failures = compare(baseline, candidate, args.max_regression)

    if failures:
        print(f"FAIL: {len(failures)} metric(s) out of bounds:")
        for section, name, rate in failures:
            print(f"  {section}/{name}.{rate}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
