#!/usr/bin/env python3
"""Fails on broken relative links in README.md and docs/*.md.

Checks every markdown link whose target is a relative path:
  * the target file must exist (relative to the linking file);
  * when the link carries a #fragment into a markdown file, a matching
    heading must exist (GitHub-style slugs).
External links (http/https/mailto) are ignored — no network, no external
services, so the check is deterministic and CI-safe.

Usage: python3 scripts/check_links.py [repo_root]
Exit status: 0 = all links resolve, 1 = at least one broken link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_file: Path) -> set[str]:
    content = md_file.read_text(encoding="utf-8")
    return {github_slug(h) for h in HEADING_RE.findall(content)}


def check_file(md_file: Path, root: Path) -> list[str]:
    errors = []
    content = md_file.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            if fragment and github_slug(fragment) not in anchors_of(md_file):
                errors.append(f"{md_file.relative_to(root)}: broken anchor "
                              f"'#{fragment}'")
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_file.relative_to(root)}: broken link "
                          f"'{target}' (no such file)")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in anchors_of(resolved):
                errors.append(f"{md_file.relative_to(root)}: broken anchor "
                              f"'{target}'")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for md in files:
        if not md.exists():
            errors.append(f"expected file missing: {md.relative_to(root)}")
            continue
        checked += 1
        errors.extend(check_file(md, root))
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
