// Figure 5 reproduction: Recall@N (N = 1..50) for the seven-algorithm suite
// on (a) the MovieLens-like corpus and (b) the Douban-like corpus.
//
// Protocol (§5.2.1): hold out long-tail 5-star ratings, score each held-out
// item against `decoys` random unrated items, count top-N hits.
#include "bench/bench_common.h"

namespace longtail {
namespace {

void RunOne(const char* name, const SyntheticData& corpus,
            const bench::BenchFlags& flags, bool douban_like) {
  bench::PrintCorpusHeader(name, corpus.dataset);
  LongTailSplitOptions split_options;
  split_options.num_test_cases = flags.test_cases;
  split_options.min_rating = 5.0f;
  auto split = MakeLongTailSplit(corpus.dataset, split_options);
  LT_CHECK(split.ok()) << split.status().ToString();
  std::printf("# %zu held-out long-tail 5-star test cases\n",
              split->test.size());

  AlgorithmSuite suite = bench::FitSuiteOrDie(split->train, flags.Suite(split->train, douban_like));

  RecallProtocolOptions recall_options;
  recall_options.num_decoys = flags.decoys;
  recall_options.max_n = flags.max_n;
  recall_options.num_threads = flags.threads;

  std::vector<std::pair<std::string, RecallCurve>> curves;
  for (const auto& alg : suite.algorithms) {
    WallTimer timer;
    auto curve =
        EvaluateRecall(*alg, split->train, split->test, recall_options);
    LT_CHECK(curve.ok()) << alg->name() << ": " << curve.status().ToString();
    std::printf("# evaluated %-8s in %5.1fs (decoys=%d, MRR=%.4f, "
                "nDCG@10=%.4f)\n",
                alg->name().c_str(), timer.ElapsedSeconds(),
                curve->effective_decoys, curve->mrr,
                curve->NdcgAt(std::min(10, flags.max_n)));
    curves.emplace_back(alg->name(), std::move(curve).value());
  }

  // Paper-style series: one row per N, one column per algorithm.
  std::printf("\nRecall@N on %s\n", name);
  std::printf("%4s", "N");
  for (const auto& [alg, curve] : curves) std::printf(" %8s", alg.c_str());
  std::printf("\n");
  for (int n = 1; n <= flags.max_n; ++n) {
    if (n > 10 && n % 5 != 0) continue;  // print 1..10 then every 5th
    std::printf("%4d", n);
    for (const auto& [alg, curve] : curves) {
      std::printf(" %8.4f", curve.At(n));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Figure 5: Recall@N on long-tail 5-star test items ==\n\n");
  const SyntheticData ml = MakeMovieLensCorpus(flags);
  RunOne("MovieLens-like (Fig. 5a)", ml, flags, /*douban_like=*/false);
  const SyntheticData db = MakeDoubanCorpus(flags);
  RunOne("Douban-like (Fig. 5b)", db, flags, /*douban_like=*/true);
  return 0;
}
