// Table 2 reproduction: aggregate recommendation diversity (Eq. 17)
//     Diversity = |∪_u R_u| / min(k·|U|, |I|)
// for the seven algorithms on both corpora. Paper shape: AC1 best, the
// graph methods clustered high, DPPR below them, PureSVD lower, LDA lowest
// by an order of magnitude.
#include "bench/bench_common.h"

namespace longtail {
namespace {

void Row(const char* dataset, const SyntheticData& corpus,
         const bench::BenchFlags& flags, bool douban_like) {
  bench::PrintCorpusHeader(dataset, corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(corpus.dataset, flags.Suite(corpus.dataset, douban_like));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  std::printf("# %zu test users, top-%d lists\n\n", users.size(), flags.k);

  std::printf("%-12s", dataset);
  std::vector<std::string> names;
  std::vector<double> values;
  for (const auto& alg : suite.algorithms) {
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               nullptr, flags.threads);
    LT_CHECK(report.ok()) << report.status().ToString();
    names.push_back(alg->name());
    values.push_back(report->diversity);
  }
  std::printf("\n%-12s", "");
  for (const auto& n : names) std::printf(" %8s", n.c_str());
  std::printf("\n%-12s", dataset);
  for (double v : values) std::printf(" %8.3f", v);
  std::printf("\n\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 2: comparison on Diversity (Eq. 17) ==\n");
  std::printf("(paper: Douban row 0.58 0.625 0.58 0.55 0.45 0.325 0.035 | "
              "Movielens row 0.42 0.425 0.42 0.41 0.35 0.245 0.025\n"
              " for AC2 AC1 AT HT DPPR PureSVD LDA)\n\n");
  const SyntheticData db = MakeDoubanCorpus(flags);
  Row("Douban-like", db, flags, /*douban_like=*/true);
  const SyntheticData ml = MakeMovieLensCorpus(flags);
  Row("ML-like", ml, flags, /*douban_like=*/false);
  return 0;
}
