// google-benchmark microbenchmarks of the computational kernels behind the
// reproduction: BFS subgraph extraction, the truncated absorbing-time DP,
// one collapsed-Gibbs sweep, randomized SVD, one PPR power iteration, and
// entropy computation.
#include <benchmark/benchmark.h>

#include "util/logging.h"

#include "baselines/pagerank.h"
#include "core/absorbing_time.h"
#include "core/entropy.h"
#include "data/generator.h"
#include "graph/markov.h"
#include "graph/random_walk.h"
#include "graph/walk_kernel.h"
#include "graph/walk_layout.h"
#include "bench/synthetic_walk_graph.h"
#include "graph/subgraph.h"
#include "linalg/svd.h"
#include "topics/lda.h"

namespace longtail {
namespace {

const SyntheticData& Corpus() {
  static const SyntheticData* corpus = [] {
    auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(0.15));
    LT_CHECK(data.ok());
    return new SyntheticData(std::move(data).value());
  }();
  return *corpus;
}

const BipartiteGraph& Graph() {
  static const BipartiteGraph* graph =
      new BipartiteGraph(BipartiteGraph::FromDataset(Corpus().dataset));
  return *graph;
}

void BM_BfsSubgraphExtraction(benchmark::State& state) {
  const BipartiteGraph& g = Graph();
  SubgraphOptions options;
  options.max_items = static_cast<int32_t>(state.range(0));
  UserId user = 0;
  for (auto _ : state) {
    Subgraph sub = ExtractSubgraph(g, {g.UserNode(user)}, options);
    benchmark::DoNotOptimize(sub.items.size());
    user = (user + 1) % g.num_users();
  }
}
BENCHMARK(BM_BfsSubgraphExtraction)->Arg(100)->Arg(500)->Arg(0);

// Same extraction through a reused WalkWorkspace: no global-sized lookup
// tables are allocated per query, which is the batch engine's steady state.
void BM_BfsSubgraphWorkspace(benchmark::State& state) {
  const BipartiteGraph& g = Graph();
  SubgraphOptions options;
  options.max_items = static_cast<int32_t>(state.range(0));
  WalkWorkspace workspace;
  std::vector<NodeId> seeds(1);
  UserId user = 0;
  for (auto _ : state) {
    seeds[0] = g.UserNode(user);
    const Subgraph& sub = ExtractSubgraphInto(g, seeds, options, &workspace);
    benchmark::DoNotOptimize(sub.items.size());
    user = (user + 1) % g.num_users();
  }
}
BENCHMARK(BM_BfsSubgraphWorkspace)->Arg(100)->Arg(500)->Arg(0);

void BM_AbsorbingTimeTruncated(benchmark::State& state) {
  const BipartiteGraph& g = Graph();
  std::vector<bool> absorbing(g.num_nodes(), false);
  const auto items = Corpus().dataset.UserItems(0);
  for (ItemId i : items) absorbing[g.ItemNode(i)] = true;
  const int tau = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto values = AbsorbingTimeTruncated(g, absorbing, tau);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * tau * g.num_edges() * 2);
}
BENCHMARK(BM_AbsorbingTimeTruncated)->Arg(5)->Arg(15)->Arg(30);

void BM_GibbsSweep(benchmark::State& state) {
  LdaOptions options;
  options.num_topics = static_cast<int>(state.range(0));
  options.iterations = 1;
  for (auto _ : state) {
    auto model = LdaModel::Train(Corpus().dataset, options);
    benchmark::DoNotOptimize(model.ok());
  }
}
BENCHMARK(BM_GibbsSweep)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_RandomizedSvd(benchmark::State& state) {
  const Dataset& d = Corpus().dataset;
  std::vector<Triplet> triplets;
  for (UserId u = 0; u < d.num_users(); ++u) {
    const auto items = d.UserItems(u);
    const auto values = d.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      triplets.push_back({u, items[k], static_cast<double>(values[k])});
    }
  }
  auto r = CsrMatrix::FromTriplets(d.num_users(), d.num_items(),
                                   std::move(triplets));
  LT_CHECK(r.ok());
  SvdOptions options;
  options.rank = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto svd = RandomizedSvd(*r, options);
    benchmark::DoNotOptimize(svd.ok());
  }
}
BENCHMARK(BM_RandomizedSvd)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_PprQuery(benchmark::State& state) {
  static PageRankRecommender* rec = [] {
    auto* r = new PageRankRecommender(/*discounted=*/true);
    LT_CHECK_OK(r->Fit(Corpus().dataset));
    return r;
  }();
  UserId user = 0;
  for (auto _ : state) {
    auto ppr = rec->ComputePpr(user);
    benchmark::DoNotOptimize(ppr.ok());
    user = (user + 1) % Corpus().dataset.num_users();
  }
}
BENCHMARK(BM_PprQuery)->Unit(benchmark::kMillisecond);

// End-to-end batched queries through the engine (workspace-reused walks on
// the thread pool). Arg = worker threads; compare users/sec across args and
// against BM_PprQuery-style single queries for the Table 5 story.
void BM_BatchRecommend(benchmark::State& state) {
  static AbsorbingTimeRecommender* rec = [] {
    auto* r = new AbsorbingTimeRecommender();
    LT_CHECK_OK(r->Fit(Corpus().dataset));
    return r;
  }();
  const int num_users =
      std::min<int>(64, Corpus().dataset.num_users());
  std::vector<UserId> users(num_users);
  for (int u = 0; u < num_users; ++u) users[u] = u;
  BatchOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto lists = rec->RecommendBatch(users, 10, options);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() * num_users);
}
BENCHMARK(BM_BatchRecommend)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Walk-kernel sweep at cache-boundary sizes on the synthetic expander
// (bench/synthetic_walk_graph.h). Arg = target node count; pick args so
// the value vector (8·nodes bytes) lands below and above L2 to see the
// adaptive plan switch (the label records which plan BuildTransitions
// picked). One "iteration" = BuildTransitions + CompileAbsorbingSweep +
// a full τ = 15 ranking sweep — the per-query cost the serving path pays
// on a cache miss.
void BM_WalkKernelSweep(benchmark::State& state) {
  const BipartiteGraph g =
      bench::MakeSyntheticWalkGraph(static_cast<int32_t>(state.range(0)));
  std::vector<bool> absorbing(g.num_nodes(), false);
  for (NodeId nbr : g.Neighbors(0)) absorbing[nbr] = true;
  const std::vector<double> costs(g.num_nodes(), 1.0);
  std::vector<double> value;
  WalkKernel kernel;
  constexpr int kTau = 15;
  for (auto _ : state) {
    kernel.BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
    kernel.CompileAbsorbingSweep(absorbing, costs);
    kernel.SweepTruncatedItemValues(kTau, &value);
    benchmark::DoNotOptimize(value.data());
  }
  state.SetLabel(kernel.sweep_strategy());
  state.SetItemsProcessed(state.iterations() * kTau * g.num_edges());
}
BENCHMARK(BM_WalkKernelSweep)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 19)
    ->Unit(benchmark::kMillisecond);

// Steady-state flavour: the full WalkPlan (layout permutation +
// transition CSR + sweep-plan selection) is built once — the
// SubgraphCache admission cost — and every iteration adopts it, which is
// exactly what a cache-hit query pays: AdoptPlan is two pointer stores,
// then compile + sweep. Compare against BM_WalkKernelSweep at the same
// size for the warm-path payoff; below the reorder threshold the layout
// is null and only the transition-build saving remains.
void BM_WalkKernelSweepCachedLayout(benchmark::State& state) {
  const BipartiteGraph g =
      bench::MakeSyntheticWalkGraph(static_cast<int32_t>(state.range(0)));
  std::vector<bool> absorbing(g.num_nodes(), false);
  for (NodeId nbr : g.Neighbors(0)) absorbing[nbr] = true;
  const std::vector<double> costs(g.num_nodes(), 1.0);
  std::vector<double> value;
  const std::shared_ptr<const WalkLayout> layout =
      BuildWalkLayoutIfBeneficial(g);
  const std::shared_ptr<const WalkPlan> plan = [&] {
    auto p = std::make_shared<WalkPlan>();
    p->Build(g, WalkNormalization::kRowStochastic, layout);
    return p;
  }();
  WalkKernel kernel;
  constexpr int kTau = 15;
  for (auto _ : state) {
    kernel.AdoptPlan(plan);
    kernel.CompileAbsorbingSweep(absorbing, costs);
    kernel.SweepTruncatedItemValues(kTau, &value);
    benchmark::DoNotOptimize(value.data());
  }
  state.SetLabel(kernel.sweep_strategy());
  state.SetItemsProcessed(state.iterations() * kTau * g.num_edges());
}
BENCHMARK(BM_WalkKernelSweepCachedLayout)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 19)
    ->Unit(benchmark::kMillisecond);

// Fused multi-query sweep: Args = (nodes, fused width K). One iteration
// compiles K absorbing lanes onto a shared cached plan and runs one
// τ = 15 batch sweep — K queries served by ONE CSR pass per iteration
// instead of K. items_processed counts edges × τ × K, so items/sec is
// directly the aggregate query throughput; divide wall time by K for the
// per-query cost and compare against width 1 for the amortization curve
// (flat per-pass time until the K-strided value block outgrows cache).
void BM_WalkKernelFusedSweep(benchmark::State& state) {
  const BipartiteGraph g =
      bench::MakeSyntheticWalkGraph(static_cast<int32_t>(state.range(0)));
  const int32_t width = static_cast<int32_t>(state.range(1));
  // Distinct absorbing sets per lane (each lane absorbs the neighbourhood
  // of a different hub) — the serving engine's shape: one subgraph, many
  // users, different rated-item lanes.
  std::vector<std::vector<bool>> absorbing(width);
  for (int32_t q = 0; q < width; ++q) {
    absorbing[q].assign(g.num_nodes(), false);
    for (NodeId nbr : g.Neighbors(q % g.num_nodes())) {
      absorbing[q][nbr] = true;
    }
  }
  const std::vector<double> costs(g.num_nodes(), 1.0);
  const std::shared_ptr<const WalkPlan> plan = [&] {
    auto p = std::make_shared<WalkPlan>();
    p->Build(g, WalkNormalization::kRowStochastic,
             BuildWalkLayoutIfBeneficial(g));
    return p;
  }();
  std::vector<double> block;
  WalkKernel kernel;
  constexpr int kTau = 15;
  for (auto _ : state) {
    kernel.AdoptPlan(plan);
    kernel.CompileAbsorbingSweepBatch(absorbing, costs);
    kernel.SweepTruncatedItemValuesBatch(kTau, &block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetLabel(kernel.sweep_strategy());
  state.SetItemsProcessed(state.iterations() * kTau * g.num_edges() * width);
}
BENCHMARK(BM_WalkKernelFusedSweep)
    ->ArgsProduct({{1 << 14, 1 << 17, 1 << 19}, {1, 2, 4, 8, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_ItemEntropy(benchmark::State& state) {
  for (auto _ : state) {
    auto e = ItemBasedUserEntropy(Corpus().dataset);
    benchmark::DoNotOptimize(e.data());
  }
}
BENCHMARK(BM_ItemEntropy);

void BM_StationaryDistribution(benchmark::State& state) {
  for (auto _ : state) {
    auto pi = StationaryDistribution(Graph());
    benchmark::DoNotOptimize(pi.data());
  }
}
BENCHMARK(BM_StationaryDistribution);

}  // namespace
}  // namespace longtail

BENCHMARK_MAIN();
