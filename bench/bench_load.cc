// Closed-loop + open-loop load harness for the ServingEngine front door.
//
// Serves Zipf-distributed user traffic (util/zipf.h; YCSB-style exponent
// 0.99 by default) against an AT graph walker behind the engine's
// admission-controlled micro-batching, and measures the two numbers a
// capacity plan needs:
//
//  * closed loop — N concurrent clients in submit→wait→repeat lockstep,
//    ramped over a client ladder. Offered load self-limits to the service
//    rate, so the ladder's best throughput is the *saturation rate* of
//    this engine configuration on this machine.
//  * open loop — a Poisson arrival schedule at a fixed rate, submitted
//    regardless of completions (the regime real front ends live in, and
//    the only one where queueing delay and admission rejections appear).
//    The rate sweeps fractions of the measured saturation through 2x past
//    it; each point reports p50/p99/p99.9 latency from the *scheduled*
//    arrival (not the possibly-late submit instant, so a backed-up
//    submitter cannot hide queueing — the coordinated-omission trap) and
//    the rejection rate.
//
// Results go to BENCH_load.json (schema consumed by
// scripts/compare_bench.py --load and validated by CI's smoke run). The
// engine's Prometheus exposition is self-checked at the end of the run
// with the same checker the tests use.
#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/absorbing_time.h"
#include "graph/subgraph_cache.h"
#include "http/http_client.h"
#include "http/http_server.h"
#include "http/serving_http.h"
#include "serving/load_gen.h"
#include "serving/serving_engine.h"
#include "tests/prometheus_text_checker.h"
#include "util/zipf.h"

namespace longtail {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct LoadFlags {
  double douban_scale = 0.02;  // corpus preset (see bench_common.h)
  int k = 10;                  // items per request
  int tau = 15;                // truncated DP iterations
  int threads = 0;             // batch workers (0 = hardware)
  int max_batch = 32;          // engine micro-batch cap
  int queue_depth = 256;       // admission-control queue bound
  double zipf = 0.99;          // workload skew
  int64_t seed = 50123;
  double closed_seconds = 2.0;  // measurement window per ladder rung
  double open_seconds = 3.0;    // measurement window per rate point
  // Closed-loop ladder top (1,2,4,...). Must comfortably exceed the
  // engine's micro-batch width: N lockstep clients cap the in-flight
  // population at N, so a short ladder under-fills batches and reports a
  // "saturation" the open-loop batched engine sails past — which is how
  // the 2x overload point once completed 741/741 with zero rejections.
  // 64 clients keep the queue deep enough that the best rung is a real
  // capacity ceiling and 2x of it genuinely overruns the admission queue.
  int max_clients = 64;
  // Re-run the closed ladder through a loopback HttpServer on the same
  // engine: the rung-by-rung delta against the direct ladder is the full
  // transport cost (socket round trip + parse + JSON + dispatch).
  bool http = false;
  bool smoke = false;           // CI mode: tiny corpus, short windows
  std::string out = "BENCH_load.json";
};

struct ClosedPoint {
  int clients = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double seconds = 0.0;
  double throughput = 0.0;       // completions / second
  double mean_latency = 0.0;     // seconds, over completions
};

struct OpenPoint {
  double target_rate = 0.0;      // requests / second offered
  double fraction_of_saturation = 0.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double seconds = 0.0;
  double achieved_rate = 0.0;    // completions / second
  double rejection_rate = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;  // seconds
};

double Percentile(std::vector<double>* sorted_latencies, double q) {
  if (sorted_latencies->empty()) return 0.0;
  const size_t n = sorted_latencies->size();
  const size_t idx = std::min(
      n - 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return (*sorted_latencies)[idx];
}

/// One closed-loop rung: `clients` threads in submit→wait→repeat lockstep
/// for `seconds`. Each client draws from its own seeded generator so the
/// rung's workload is deterministic in (seed, clients).
ClosedPoint RunClosedLoop(ServingEngine& engine, const std::string& model,
                          const LoadGenOptions& gen_options, int clients,
                          double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0}, rejected{0};
  std::atomic<double> latency_sum{0.0};
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      LoadGenOptions my_options = gen_options;
      my_options.seed = gen_options.seed + 7919ull * (c + 1);
      LoadGenerator gen(my_options);
      double my_latency = 0.0;
      uint64_t my_completed = 0, my_rejected = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ServeRequest request = gen.Next();
        const Clock::time_point t0 = Clock::now();
        const UserQueryResult result = engine.Query(model, request);
        if (result.status.ok()) {
          my_latency += SecondsSince(t0);
          ++my_completed;
        } else {
          ++my_rejected;
        }
      }
      completed.fetch_add(my_completed, std::memory_order_relaxed);
      rejected.fetch_add(my_rejected, std::memory_order_relaxed);
      double seen = latency_sum.load(std::memory_order_relaxed);
      while (!latency_sum.compare_exchange_weak(seen, seen + my_latency,
                                                std::memory_order_relaxed)) {
      }
    });
  }
  const Clock::time_point start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  ClosedPoint point;
  point.clients = clients;
  point.completed = completed.load();
  point.rejected = rejected.load();
  point.seconds = SecondsSince(start);
  point.throughput = point.completed / std::max(1e-9, point.seconds);
  point.mean_latency =
      point.completed > 0 ? latency_sum.load() / point.completed : 0.0;
  return point;
}

/// The same closed-loop rung driven over loopback HTTP: each client owns a
/// keep-alive connection to the embedded server and POSTs /v1/recommend in
/// submit→wait→repeat lockstep. Client c draws from the same seeded
/// generator as RunClosedLoop's client c, so a rung here and its direct
/// twin offer the same user stream — the throughput delta is purely the
/// transport stack.
ClosedPoint RunClosedLoopHttp(uint16_t port, const std::string& model,
                              const LoadGenOptions& gen_options, int clients,
                              double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0}, rejected{0};
  std::atomic<double> latency_sum{0.0};
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      LoadGenOptions my_options = gen_options;
      my_options.seed = gen_options.seed + 7919ull * (c + 1);
      LoadGenerator gen(my_options);
      double my_latency = 0.0;
      uint64_t my_completed = 0, my_rejected = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ServeRequest request = gen.Next();
        const std::string body =
            "{\"model\":\"" + model +
            "\",\"user\":" + std::to_string(request.user) +
            ",\"top_k\":" + std::to_string(request.top_k) + "}";
        const Clock::time_point t0 = Clock::now();
        const auto response = client.Request("POST", "/v1/recommend", body);
        if (!response.ok()) {
          // Connection torn down (e.g. max_requests_per_connection):
          // reconnect and keep going, like a pooled client would.
          ++my_rejected;
          client.Close();
          if (!client.Connect("127.0.0.1", port).ok()) break;
          continue;
        }
        if (response.value().status == 200) {
          my_latency += SecondsSince(t0);
          ++my_completed;
        } else {
          ++my_rejected;
        }
      }
      completed.fetch_add(my_completed, std::memory_order_relaxed);
      rejected.fetch_add(my_rejected, std::memory_order_relaxed);
      double seen = latency_sum.load(std::memory_order_relaxed);
      while (!latency_sum.compare_exchange_weak(seen, seen + my_latency,
                                                std::memory_order_relaxed)) {
      }
    });
  }
  const Clock::time_point start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  ClosedPoint point;
  point.clients = clients;
  point.completed = completed.load();
  point.rejected = rejected.load();
  point.seconds = SecondsSince(start);
  point.throughput = point.completed / std::max(1e-9, point.seconds);
  point.mean_latency =
      point.completed > 0 ? latency_sum.load() / point.completed : 0.0;
  return point;
}

/// One open-loop rate point: a submitter walks the Poisson schedule and a
/// collector settles futures in submit order (per-model dispatch is FIFO,
/// so the collector is almost always parked on the oldest in-flight
/// future and timestamps each completion promptly).
OpenPoint RunOpenLoop(ServingEngine& engine, const std::string& model,
                      const LoadGenOptions& gen_options, double rate,
                      double seconds) {
  struct InFlight {
    std::future<UserQueryResult> future;
    Clock::time_point scheduled;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> inflight;
  bool submitting = true;

  std::vector<double> latencies;
  uint64_t completed = 0, rejected = 0;
  std::thread collector([&] {
    for (;;) {
      InFlight item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !inflight.empty() || !submitting; });
        if (inflight.empty()) return;
        item = std::move(inflight.front());
        inflight.pop_front();
      }
      const UserQueryResult result = item.future.get();
      if (result.status.ok()) {
        latencies.push_back(std::chrono::duration<double>(
                                Clock::now() - item.scheduled)
                                .count());
        ++completed;
      } else {
        ++rejected;
      }
    }
  });

  LoadGenerator gen(gen_options);
  uint64_t offered = 0;
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  Clock::time_point next = start;
  while (next < end) {
    std::this_thread::sleep_until(next);  // no-op when running behind
    const ServeRequest request = gen.Next();
    InFlight item;
    item.scheduled = next;
    item.future = engine.Submit(model, request);
    ++offered;
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.push_back(std::move(item));
    }
    cv.notify_one();
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gen.NextArrivalSeconds(rate)));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    submitting = false;
  }
  cv.notify_all();
  collector.join();
  const double elapsed = SecondsSince(start);

  std::sort(latencies.begin(), latencies.end());
  OpenPoint point;
  point.target_rate = rate;
  point.offered = offered;
  point.completed = completed;
  point.rejected = rejected;
  point.seconds = elapsed;
  point.achieved_rate = completed / std::max(1e-9, elapsed);
  point.rejection_rate =
      offered > 0 ? static_cast<double>(rejected) / offered : 0.0;
  point.p50 = Percentile(&latencies, 0.50);
  point.p99 = Percentile(&latencies, 0.99);
  point.p999 = Percentile(&latencies, 0.999);
  return point;
}

void WriteJson(const LoadFlags& flags, const Dataset& d,
               const ServingEngineOptions& engine_options,
               const LoadGenOptions& gen_options,
               const std::vector<ClosedPoint>& ladder, double saturation,
               const std::vector<ClosedPoint>& http_ladder,
               double http_saturation,
               const std::vector<OpenPoint>& points,
               double rejection_at_2x, size_t metrics_series,
               bool exposition_ok) {
  std::FILE* f = std::fopen(flags.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n",
                 flags.out.c_str());
    return;
  }
  // The mode field lets validators assert overload behaviour only where
  // it is measurable: smoke windows are too short (and their corpora too
  // small) to fill the admission queue, so rejection_rate_at_2x_saturation
  // is only meaningful — and only gated — when mode == "full".
  std::fprintf(f, "{\n  \"bench\": \"load_harness\",\n  \"mode\": \"%s\",\n",
               flags.smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"corpus\": {\"users\": %d, \"items\": %d, "
               "\"ratings\": %lld},\n",
               d.num_users(), d.num_items(),
               static_cast<long long>(d.num_ratings()));
  std::fprintf(f,
               "  \"workload\": {\"model\": \"AT\", \"zipf_exponent\": %.3f, "
               "\"num_users\": %zu, \"top_k\": %d, \"seed\": %llu},\n",
               gen_options.zipf_exponent, gen_options.num_users,
               gen_options.top_k,
               static_cast<unsigned long long>(gen_options.seed));
  std::fprintf(
      f,
      "  \"engine\": {\"max_batch_size\": %zu, \"max_queue_depth\": %zu, "
      "\"flush_interval_ticks\": %llu, \"batch_threads\": %zu, "
      "\"query_retry_budget\": %llu},\n",
      engine_options.max_batch_size, engine_options.max_queue_depth,
      static_cast<unsigned long long>(engine_options.flush_interval_ticks),
      engine_options.batch_threads,
      static_cast<unsigned long long>(engine_options.query_retry_budget));
  std::fprintf(f, "  \"closed_loop\": {\n    \"ladder\": [\n");
  for (size_t i = 0; i < ladder.size(); ++i) {
    const ClosedPoint& p = ladder[i];
    std::fprintf(f,
                 "      {\"name\": \"clients_%d\", \"clients\": %d, "
                 "\"seconds\": %.3f, \"completed\": %llu, "
                 "\"rejected\": %llu, \"throughput_rps\": %.2f, "
                 "\"mean_latency_seconds\": %.6f}%s\n",
                 p.clients, p.clients, p.seconds,
                 static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.rejected), p.throughput,
                 p.mean_latency, i + 1 < ladder.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n    \"saturation_rps\": %.2f\n  },\n",
               saturation);
  if (!http_ladder.empty()) {
    // Additive section (--http): same closed ladder through the loopback
    // HTTP front. Validators that check required fields ignore it.
    std::fprintf(f, "  \"http\": {\n    \"ladder\": [\n");
    for (size_t i = 0; i < http_ladder.size(); ++i) {
      const ClosedPoint& p = http_ladder[i];
      std::fprintf(f,
                   "      {\"name\": \"http_clients_%d\", \"clients\": %d, "
                   "\"seconds\": %.3f, \"completed\": %llu, "
                   "\"rejected\": %llu, \"throughput_rps\": %.2f, "
                   "\"mean_latency_seconds\": %.6f}%s\n",
                   p.clients, p.clients, p.seconds,
                   static_cast<unsigned long long>(p.completed),
                   static_cast<unsigned long long>(p.rejected), p.throughput,
                   p.mean_latency, i + 1 < http_ladder.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n    \"saturation_rps\": %.2f,\n"
                 "    \"transport_cost_fraction\": %.4f\n  },\n",
                 http_saturation,
                 saturation > 0.0
                     ? 1.0 - http_saturation / saturation
                     : 0.0);
  }
  std::fprintf(f, "  \"open_loop\": {\n    \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const OpenPoint& p = points[i];
    std::fprintf(
        f,
        "      {\"name\": \"rate_x%.2f\", \"fraction_of_saturation\": %.2f, "
        "\"target_rate_rps\": %.2f, \"seconds\": %.3f, \"offered\": %llu, "
        "\"completed\": %llu, \"rejected\": %llu, \"achieved_rps\": %.2f, "
        "\"rejection_rate\": %.4f, \"p50_seconds\": %.6f, "
        "\"p99_seconds\": %.6f, \"p999_seconds\": %.6f}%s\n",
        p.fraction_of_saturation, p.fraction_of_saturation, p.target_rate,
        p.seconds, static_cast<unsigned long long>(p.offered),
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.rejected), p.achieved_rate,
        p.rejection_rate, p.p50, p.p99, p.p999,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"rejection_rate_at_2x_saturation\": %.4f\n"
               "  },\n",
               rejection_at_2x);
  std::fprintf(f,
               "  \"metrics\": {\"series_lines\": %zu, "
               "\"exposition_valid\": %s}\n}\n",
               metrics_series, exposition_ok ? "true" : "false");
  std::fclose(f);
  std::printf("# wrote %s\n", flags.out.c_str());
}

void Run(const LoadFlags& flags) {
  const SyntheticData corpus = [&] {
    bench::BenchFlags corpus_flags;
    corpus_flags.douban_scale = flags.smoke ? 0.005 : flags.douban_scale;
    return bench::MakeDoubanCorpus(corpus_flags);
  }();
  const Dataset& d = corpus.dataset;
  bench::PrintCorpusHeader("Douban-like", d);

  // The paper's production regime: µ-pruned subgraphs behind a shared
  // cache (uncapped at this scale would walk the whole component per
  // query and cache nothing but the full graph).
  GraphWalkOptions walk;
  walk.iterations = flags.tau;
  walk.max_subgraph_items = std::max<int32_t>(
      60, static_cast<int32_t>(0.067 * d.num_items()));
  AbsorbingTimeRecommender model(walk);
  {
    WallTimer fit_timer;
    LT_CHECK_OK(model.Fit(d));
    std::printf("# fitted AT (mu = %d) in %.2fs\n", walk.max_subgraph_items,
                fit_timer.ElapsedSeconds());
  }

  // Declaration order is destruction-order-critical: the registry outlives
  // the cache bound to it, which outlives the engine serving from it. (An
  // engine-owned registry would die inside the engine, before the cache
  // unbinds — a use-after-free in ~SubgraphCache.)
  MetricsRegistry registry;
  SubgraphCacheOptions cache_options;
  cache_options.max_bytes = 1ull << 29;
  SubgraphCache cache(cache_options);

  ServingEngineOptions engine_options;
  engine_options.max_batch_size = static_cast<size_t>(flags.max_batch);
  engine_options.max_queue_depth = static_cast<size_t>(flags.queue_depth);
  engine_options.flush_interval_ticks = 1;
  engine_options.batch_threads =
      flags.threads > 0 ? static_cast<size_t>(flags.threads) : 0;
  engine_options.subgraph_cache = &cache;
  engine_options.metrics = &registry;
  ServingEngine engine(engine_options);
  cache.BindMetrics(engine.metrics());
  LT_CHECK_OK(engine.AddModel(&model));

  LoadGenOptions gen_options;
  gen_options.num_users = static_cast<size_t>(d.num_users());
  gen_options.zipf_exponent = flags.zipf;
  gen_options.top_k = flags.k;
  gen_options.seed = static_cast<uint64_t>(flags.seed);

  const double closed_seconds = flags.smoke ? 0.3 : flags.closed_seconds;
  const double open_seconds = flags.smoke ? 0.3 : flags.open_seconds;
  const int max_clients = flags.smoke ? 2 : flags.max_clients;

  // Warm the cache's hot head so the ladder measures the steady state the
  // engine actually serves, not first-touch extraction.
  {
    LoadGenerator warm(gen_options);
    std::vector<ServeRequest> warm_requests;
    for (int i = 0; i < (flags.smoke ? 32 : 256); ++i) {
      warm_requests.push_back(warm.Next());
    }
    const auto results = engine.QueryAll("AT", warm_requests);
    for (const auto& r : results) LT_CHECK_OK(r.status);
  }

  // Closed loop: ramp the client ladder, saturation = best rung.
  std::printf("\n# closed loop (%.1fs per rung)\n\n", closed_seconds);
  std::printf("%8s %12s %14s %16s %10s\n", "clients", "completed",
              "throughput", "mean latency ms", "rejected");
  std::vector<ClosedPoint> ladder;
  double saturation = 0.0;
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    const ClosedPoint point =
        RunClosedLoop(engine, "AT", gen_options, clients, closed_seconds);
    std::printf("%8d %12llu %11.1f/s %16.3f %10llu\n", point.clients,
                static_cast<unsigned long long>(point.completed),
                point.throughput, 1e3 * point.mean_latency,
                static_cast<unsigned long long>(point.rejected));
    saturation = std::max(saturation, point.throughput);
    ladder.push_back(point);
  }
  LT_CHECK(saturation > 0.0) << "no closed-loop completions";

  // Loopback HTTP discipline (--http): the same ladder through an embedded
  // HttpServer + ServingHttpFront on this engine. The rung-by-rung delta
  // against the direct ladder prices the transport stack.
  std::vector<ClosedPoint> http_ladder;
  double http_saturation = 0.0;
  if (flags.http) {
    ServingHttpFrontOptions front_options;
    front_options.ready_at_start = true;  // models are already registered
    ServingHttpFront front(&engine, front_options);
    HttpServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.num_workers = static_cast<size_t>(max_clients);
    server_options.metrics = engine.metrics();
    HttpServer server(
        [&front](const RequestContext& ctx) { return front.Dispatch(ctx); },
        server_options);
    LT_CHECK_OK(server.Start());
    std::printf("\n# closed loop over loopback HTTP on 127.0.0.1:%u "
                "(%.1fs per rung)\n\n",
                server.port(), closed_seconds);
    std::printf("%8s %12s %14s %16s %10s %12s\n", "clients", "completed",
                "throughput", "mean latency ms", "rejected", "vs direct");
    for (int clients = 1; clients <= max_clients; clients *= 2) {
      const ClosedPoint point = RunClosedLoopHttp(
          server.port(), "AT", gen_options, clients, closed_seconds);
      const ClosedPoint& direct = ladder[http_ladder.size()];
      std::printf("%8d %12llu %11.1f/s %16.3f %10llu %11.1f%%\n",
                  point.clients,
                  static_cast<unsigned long long>(point.completed),
                  point.throughput, 1e3 * point.mean_latency,
                  static_cast<unsigned long long>(point.rejected),
                  direct.throughput > 0.0
                      ? 100.0 * point.throughput / direct.throughput
                      : 0.0);
      http_saturation = std::max(http_saturation, point.throughput);
      http_ladder.push_back(point);
    }
    server.Stop();
    LT_CHECK(http_saturation > 0.0) << "no HTTP closed-loop completions";
  }

  // Open loop: sweep fractions of saturation through 2x past the knee.
  const std::vector<double> fractions =
      flags.smoke ? std::vector<double>{0.5, 2.0}
                  : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.25, 2.0};
  std::printf("\n# open loop (Poisson arrivals, %.1fs per point)\n\n",
              open_seconds);
  std::printf("%10s %12s %10s %10s %10s %10s %10s\n", "rate", "offered",
              "p50 ms", "p99 ms", "p99.9 ms", "achieved", "rejected");
  std::vector<OpenPoint> points;
  double rejection_at_2x = 0.0;
  for (double fraction : fractions) {
    OpenPoint point = RunOpenLoop(engine, "AT", gen_options,
                                  fraction * saturation, open_seconds);
    point.fraction_of_saturation = fraction;
    std::printf("%7.2fx %12llu %10.3f %10.3f %10.3f %8.1f/s %9.1f%%\n",
                fraction, static_cast<unsigned long long>(point.offered),
                1e3 * point.p50, 1e3 * point.p99, 1e3 * point.p999,
                point.achieved_rate, 100.0 * point.rejection_rate);
    if (fraction == 2.0) rejection_at_2x = point.rejection_rate;
    points.push_back(point);
  }
  if (!flags.smoke && rejection_at_2x <= 0.0) {
    // A full run offering 2x a real saturation estimate must overrun the
    // admission queue; zero rejections means the ladder under-measured
    // capacity and the overload point is not an overload (CI gates the
    // committed artifact on this).
    std::fprintf(stderr,
                 "WARNING: 2x-saturation point rejected nothing — "
                 "saturation estimate is below true capacity\n");
  }

  // The run's own scrape surface, self-checked with the test checker.
  const std::string exposition = engine.metrics()->ExportText();
  std::string checker_error;
  const bool exposition_ok =
      CheckPrometheusText(exposition, &checker_error);
  size_t series_lines = 0;
  for (char ch : exposition) {
    if (ch == '\n') ++series_lines;
  }
  if (!exposition_ok) {
    std::fprintf(stderr, "metrics exposition INVALID: %s\n",
                 checker_error.c_str());
  }
  std::printf("\n# metrics: %zu exposition lines, checker %s\n",
              series_lines, exposition_ok ? "ok" : "INVALID");

  WriteJson(flags, d, engine_options, gen_options, ladder, saturation,
            http_ladder, http_saturation, points, rejection_at_2x,
            series_lines, exposition_ok);
  LT_CHECK(exposition_ok) << checker_error;
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  LoadFlags flags;
  FlagParser parser;
  parser.AddDouble("douban_scale", &flags.douban_scale,
                   "Douban-like corpus scale (1.0 = paper size)");
  parser.AddInt("k", &flags.k, "items per request");
  parser.AddInt("tau", &flags.tau, "truncated DP iterations");
  parser.AddInt("threads", &flags.threads, "batch workers (0 = hardware)");
  parser.AddInt("max_batch", &flags.max_batch, "engine micro-batch cap");
  parser.AddInt("queue_depth", &flags.queue_depth,
                "admission-control queue bound");
  parser.AddDouble("zipf", &flags.zipf, "workload skew exponent");
  parser.AddInt("seed", &flags.seed, "workload seed");
  parser.AddDouble("closed_seconds", &flags.closed_seconds,
                   "closed-loop window per ladder rung");
  parser.AddDouble("open_seconds", &flags.open_seconds,
                   "open-loop window per rate point");
  parser.AddInt("max_clients", &flags.max_clients,
                "closed-loop ladder top (powers of two up to this)");
  parser.AddBool("http", &flags.http,
                 "also run the closed ladder through a loopback HTTP "
                 "server (prices the transport stack)");
  parser.AddBool("smoke", &flags.smoke,
                 "CI mode: tiny corpus, short windows, 2-point sweep");
  parser.AddString("out", &flags.out, "output JSON path");
  const Status status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return status.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  std::printf("== ServingEngine load harness (Zipf arrivals) ==\n\n");
  Run(flags);
  return 0;
}
