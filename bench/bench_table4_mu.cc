// Table 4 reproduction: impact of the subgraph cap µ on AC2's Popularity /
// Similarity / Diversity / Efficiency (Douban-like corpus).
//
// Paper row (µ = 3000, 4000, 5000, 6000, 89908):
//   Popularity 100.6 100.1 95.7 93.2 94.8 | Similarity .44..48 flat |
//   Diversity ~0.58 flat | Efficiency 0.17s → 12.7s at full scan.
// The µ values sweep proportionally to the scaled catalog.
#include "bench/bench_common.h"

#include "core/absorbing_cost.h"

namespace longtail {
namespace {

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);

  // µ sweep: the paper's {3000..6000, all} scaled to the catalog size.
  const int32_t catalog = corpus.dataset.num_items();
  std::vector<int32_t> mu_values;
  for (double frac : {1.0 / 30.0, 4.0 / 90.0, 5.0 / 90.0, 6.0 / 90.0}) {
    mu_values.push_back(
        std::max<int32_t>(50, static_cast<int32_t>(frac * catalog)));
  }
  mu_values.push_back(0);  // 0 = whole graph (the paper's µ = 89908 row)

  // Train the LDA/entropy part once; refit the walk options per µ (the
  // entropy model is µ-independent, but Fit is one-shot by design, so we
  // rebuild and let the suite share nothing — the timing comparison only
  // cares about query cost).
  std::printf("\n%10s %12s %12s %12s %14s\n", "mu", "Popularity",
              "Similarity", "Diversity", "Efficiency(s)");
  for (int32_t mu : mu_values) {
    AbsorbingCostOptions options;
    options.walk.iterations = flags.tau;
    options.walk.max_subgraph_items = mu;
    options.lda.num_topics = flags.topics;
    options.lda.iterations = flags.lda_iters;
    AbsorbingCostRecommender ac2(EntropySource::kTopicBased, options);
    LT_CHECK_OK(ac2.Fit(corpus.dataset));
    auto report = EvaluateTopN(ac2, corpus.dataset, users, flags.k,
                               &corpus.ontology, flags.threads);
    LT_CHECK(report.ok()) << report.status().ToString();
    double mean_pop = 0.0;
    for (double p : report->popularity_at) mean_pop += p;
    mean_pop /= report->popularity_at.size();
    std::printf("%10s %12.1f %12.3f %12.3f %14.5f\n",
                mu == 0 ? "all" : std::to_string(mu).c_str(), mean_pop,
                report->similarity, report->diversity,
                report->seconds_per_user);
  }
  std::printf(
      "\nExpected shape: popularity drifts slightly down with µ, similarity\n"
      "saturates, diversity stays flat, per-user time grows with µ and\n"
      "jumps for the full-graph scan.\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 4: impact of subgraph cap mu on AC2 ==\n\n");
  Run(flags);
  return 0;
}
