// Table 3 reproduction: ontology-based Similarity (Eq. 18–19) of the
// recommendations to each user's rated items, on the Douban-like corpus
// (the paper uses the dangdang book ontology; we use the synthetic
// genre-aligned ontology — DESIGN.md §3).
//
// Paper row: AC2 0.48, AC1 0.42, AT 0.39, HT 0.37, DPPR 0.36,
//            PureSVD 0.45, LDA 0.43.
#include "bench/bench_common.h"

namespace longtail {
namespace {

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(corpus.dataset, flags.Suite(corpus.dataset, /*douban_like=*/true));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  std::printf("# %zu test users, top-%d lists\n\n", users.size(), flags.k);

  std::printf("%10s %12s\n", "algorithm", "similarity");
  for (const auto& alg : suite.algorithms) {
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               &corpus.ontology, flags.threads);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%10s %12.3f\n", alg->name().c_str(), report->similarity);
  }
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 3: comparison on Similarity (Eq. 18-19) ==\n\n");
  Run(flags);
  return 0;
}
