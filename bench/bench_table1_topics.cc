// Table 1 reproduction: interpretable topics from the user-item LDA.
//
// The paper shows two MovieLens topics whose top-5 movies are clearly
// Children's/Animation vs Action. On the synthetic corpus we print the top
// items of each topic together with their ground-truth genre, plus a topic
// purity score (fraction of the top items sharing the topic's majority
// genre) to quantify the "topics align with genres" claim.
#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "topics/lda.h"

namespace longtail {
namespace {

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeMovieLensCorpus(flags);
  bench::PrintCorpusHeader("MovieLens-like", corpus.dataset);

  LdaOptions options;
  options.num_topics = flags.topics;
  options.iterations = flags.lda_iters;
  WallTimer timer;
  auto model = LdaModel::Train(corpus.dataset, options);
  LT_CHECK(model.ok()) << model.status().ToString();
  std::printf("# trained K=%d LDA in %.1fs\n\n", flags.topics,
              timer.ElapsedSeconds());

  const int top_n = 5;
  const auto tops = model->TopItemsPerTopic(top_n);

  // Rank topics by purity and print the best few (the paper shows two).
  struct TopicSummary {
    int topic;
    double purity;
    int majority_genre;
  };
  std::vector<TopicSummary> summaries;
  for (int z = 0; z < flags.topics; ++z) {
    std::map<int, int> genre_count;
    for (const auto& si : tops[z]) {
      if (!corpus.dataset.item_genres.empty()) {
        ++genre_count[corpus.dataset.item_genres[si.item]];
      }
    }
    int best_genre = -1;
    int best = 0;
    for (const auto& [g, c] : genre_count) {
      if (c > best) {
        best = c;
        best_genre = g;
      }
    }
    summaries.push_back(
        {z, static_cast<double>(best) / top_n, best_genre});
  }
  std::sort(summaries.begin(), summaries.end(),
            [](const TopicSummary& a, const TopicSummary& b) {
              return a.purity > b.purity;
            });

  std::printf("Table 1 analogue: top-%d items of the purest topics\n\n",
              top_n);
  const int show = std::min<int>(4, summaries.size());
  for (int s = 0; s < show; ++s) {
    const TopicSummary& ts = summaries[s];
    std::printf("Topic %d (purity %.0f%%)\n", ts.topic, 100.0 * ts.purity);
    for (const auto& si : tops[ts.topic]) {
      std::printf("  %-44s phi=%.4f\n",
                  corpus.dataset.item_labels.empty()
                      ? std::to_string(si.item).c_str()
                      : corpus.dataset.item_labels[si.item].c_str(),
                  si.score);
    }
    std::printf("\n");
  }

  double mean_purity = 0.0;
  for (const auto& ts : summaries) mean_purity += ts.purity;
  mean_purity /= summaries.size();
  std::printf("mean topic purity over K=%d topics: %.2f "
              "(1.0 = every topic genre-pure; random ≈ %.2f)\n",
              flags.topics, mean_purity,
              1.0 / std::max(1, corpus.dataset.num_genres) +
                  (top_n - 1.0) / top_n *
                      (1.0 / std::max(1, corpus.dataset.num_genres)));
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 1: topics extracted from the rating matrix ==\n\n");
  Run(flags);
  return 0;
}
