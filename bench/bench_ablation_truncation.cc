// Ablations of the design choices DESIGN.md calls out:
//  (1) τ sweep — ranking agreement of the truncated DP vs the exact linear
//      solve (§4.1 claims τ=15 ≈ exact);
//  (2) weighted (rating) vs unweighted edges;
//  (3) entropy-cost constant C sweep around the auto (mean-entropy) value;
//  (4) PPR restart at the user node vs at the rated-item set.
#include <algorithm>
#include <set>

#include "bench/bench_common.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "baselines/pagerank.h"

namespace longtail {
namespace {

// Fraction of the top-k lists of two recommenders that overlap, averaged
// over users.
double TopKOverlap(const Recommender& a, const Recommender& b,
                   const std::vector<UserId>& users, int k) {
  double total = 0.0;
  int counted = 0;
  for (UserId u : users) {
    auto ta = a.RecommendTopK(u, k);
    auto tb = b.RecommendTopK(u, k);
    if (!ta.ok() || !tb.ok() || ta->empty() || tb->empty()) continue;
    std::set<ItemId> sa;
    for (const auto& si : *ta) sa.insert(si.item);
    int hits = 0;
    for (const auto& si : *tb) hits += sa.count(si.item);
    total += static_cast<double>(hits) /
             std::max<size_t>(ta->size(), tb->size());
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

double MeanListPopularity(const Recommender& rec, const Dataset& data,
                          const std::vector<UserId>& users, int k) {
  double total = 0.0;
  int counted = 0;
  for (UserId u : users) {
    auto top = rec.RecommendTopK(u, k);
    if (!top.ok()) continue;
    for (const auto& si : *top) {
      total += data.ItemPopularity(si.item);
      ++counted;
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeMovieLensCorpus(flags);
  const Dataset& data = corpus.dataset;
  bench::PrintCorpusHeader("MovieLens-like", data);
  const std::vector<UserId> users = SampleTestUsers(data, 150, 10, 4);

  // ---- (1) τ sweep vs exact.
  std::printf("\n[1] truncated DP vs exact solve: top-%d overlap by tau\n",
              flags.k);
  GraphWalkOptions exact_options;
  exact_options.exact = true;
  exact_options.max_subgraph_items = flags.mu;
  AbsorbingTimeRecommender exact_at(exact_options);
  LT_CHECK_OK(exact_at.Fit(data));
  std::printf("%6s %10s\n", "tau", "overlap");
  for (int tau : {1, 2, 4, 8, 15, 30, 60}) {
    GraphWalkOptions options;
    options.iterations = tau;
    options.max_subgraph_items = flags.mu;
    AbsorbingTimeRecommender at(options);
    LT_CHECK_OK(at.Fit(data));
    std::printf("%6d %10.3f\n", tau, TopKOverlap(exact_at, at, users, flags.k));
  }

  // ---- (2) weighted vs unweighted edges.
  std::printf("\n[2] rating-weighted vs unweighted edges (AT)\n");
  GraphWalkOptions weighted;
  weighted.iterations = flags.tau;
  weighted.max_subgraph_items = flags.mu;
  GraphWalkOptions unweighted = weighted;
  unweighted.weighted_edges = false;
  AbsorbingTimeRecommender at_w(weighted);
  AbsorbingTimeRecommender at_u(unweighted);
  LT_CHECK_OK(at_w.Fit(data));
  LT_CHECK_OK(at_u.Fit(data));
  std::printf("  top-%d overlap: %.3f  mean popularity: weighted=%.1f "
              "unweighted=%.1f\n",
              flags.k, TopKOverlap(at_w, at_u, users, flags.k),
              MeanListPopularity(at_w, data, users, flags.k),
              MeanListPopularity(at_u, data, users, flags.k));

  // ---- (3) C sweep for AC1.
  std::printf("\n[3] entropy-cost constant C sweep (AC1, auto = mean "
              "user entropy)\n");
  std::printf("%12s %12s %14s\n", "C", "vs-AT", "mean popularity");
  AbsorbingTimeRecommender at_base(weighted);
  LT_CHECK_OK(at_base.Fit(data));
  for (double c : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    AbsorbingCostOptions options;
    options.walk = weighted;
    options.user_jump_cost = c;  // 0 = auto
    AbsorbingCostRecommender ac1(EntropySource::kItemBased, options);
    LT_CHECK_OK(ac1.Fit(data));
    char label[32];
    if (c == 0.0) {
      std::snprintf(label, sizeof(label), "auto(%.2f)",
                    ac1.resolved_user_jump_cost());
    } else {
      std::snprintf(label, sizeof(label), "%.1f", c);
    }
    std::printf("%12s %12.3f %14.1f\n", label,
                TopKOverlap(at_base, ac1, users, flags.k),
                MeanListPopularity(ac1, data, users, flags.k));
  }

  // ---- (4) PPR restart modes.
  std::printf("\n[4] PPR restart: user node vs rated-item set (DPPR)\n");
  PageRankOptions user_restart;
  PageRankOptions item_restart;
  item_restart.restart_at_items = true;
  PageRankRecommender dppr_user(true, user_restart);
  PageRankRecommender dppr_items(true, item_restart);
  LT_CHECK_OK(dppr_user.Fit(data));
  LT_CHECK_OK(dppr_items.Fit(data));
  std::printf("  top-%d overlap: %.3f  mean popularity: user=%.1f "
              "items=%.1f\n",
              flags.k, TopKOverlap(dppr_user, dppr_items, users, flags.k),
              MeanListPopularity(dppr_user, data, users, flags.k),
              MeanListPopularity(dppr_items, data, users, flags.k));
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Ablations: truncation, edge weights, C, PPR restart ==\n\n");
  Run(flags);
  return 0;
}
