// §5.1.2 calibration check: reproduces the paper's dataset statistics —
// "about 66% hard-to-find movies generate 20% ratings collected by
// Movielens and 73% least-rating books generate 20% book ratings collected
// by Douban" — on the synthetic substitutes, plus density and degree
// ranges, and a Figure 1-style Lorenz summary of sales concentration.
#include "bench/bench_common.h"

namespace longtail {
namespace {

void Report(const char* name, const Dataset& d, double paper_tail,
            double paper_density) {
  const LongTailStats stats = ComputeLongTailStats(d);
  int32_t min_deg = d.num_items();
  int32_t max_deg = 0;
  for (UserId u = 0; u < d.num_users(); ++u) {
    min_deg = std::min(min_deg, d.UserDegree(u));
    max_deg = std::max(max_deg, d.UserDegree(u));
  }
  std::printf("%s\n", name);
  std::printf("  users=%s items=%s ratings=%s\n",
              FormatWithCommas(d.num_users()).c_str(),
              FormatWithCommas(d.num_items()).c_str(),
              FormatWithCommas(d.num_ratings()).c_str());
  std::printf("  density          %8.4f%%   (paper: %.4f%%)\n",
              100.0 * d.Density(), paper_density);
  std::printf("  tail item share  %8.1f%%   (paper: %.0f%%)\n",
              100.0 * stats.tail_item_fraction, paper_tail);
  std::printf("  user degree      %d..%d (mean %.1f)\n", min_deg, max_deg,
              static_cast<double>(d.num_ratings()) / d.num_users());
  std::printf("  item popularity  %d..%d (mean %.1f, gini %.3f)\n",
              stats.min_popularity, stats.max_popularity,
              stats.mean_popularity, stats.gini);
  const auto lorenz = PopularityLorenzCurve(d, 10);
  std::printf("  lorenz (cumulative rating share per item decile):\n   ");
  for (double v : lorenz) std::printf(" %5.3f", v);
  std::printf("\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Dataset statistics (paper §5.1.2) ==\n");
  const SyntheticData ml = MakeMovieLensCorpus(flags);
  Report("MovieLens-like", ml.dataset, 66.0, 4.26);
  const SyntheticData db = MakeDoubanCorpus(flags);
  Report("Douban-like", db.dataset, 73.0, 0.039);
  std::printf(
      "\nNote: scaled-down corpora cannot hold density and degree constant\n"
      "simultaneously; the generator preserves degree structure and the\n"
      "tail/gini shape, and keeps ML-like denser than Douban-like.\n");
  return 0;
}
