// Shared scaffolding for the reproduction benches: flag definitions,
// dataset construction (synthetic MovieLens-like / Douban-like, or a real
// ratings file), suite configuration, and table printers.
#ifndef LONGTAIL_BENCH_BENCH_COMMON_H_
#define LONGTAIL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/longtail_stats.h"
#include "data/movielens_io.h"
#include "data/split.h"
#include "eval/harness.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace longtail {
namespace bench {

/// Flags shared by every reproduction bench.
struct BenchFlags {
  double ml_scale = 0.25;      // MovieLens-like preset scale
  double douban_scale = 0.02;  // Douban-like preset scale
  int test_cases = 400;        // Recall@N held-out cases
  int decoys = 600;            // decoy items per recall case
  int users = 800;             // top-N test users (paper: 2000)
  int k = 10;                  // list length
  int max_n = 50;              // recall curve horizon
  int topics = 20;             // LDA K
  int lda_iters = 60;          // Gibbs sweeps
  int factors = 50;            // PureSVD f
  int tau = 15;                // truncated DP iterations
  int mu = -1;                 // BFS subgraph item cap; -1 = auto (see MuFor)
  int threads = 0;             // 0 = hardware
  std::string ratings_file;    // optional real MovieLens ratings file
  bool extra_baselines = false;

  void Register(FlagParser* parser) {
    parser->AddDouble("ml_scale", &ml_scale,
                      "MovieLens-like scale (1.0 = paper size)");
    parser->AddDouble("douban_scale", &douban_scale,
                      "Douban-like scale (1.0 = paper size)");
    parser->AddInt("test_cases", &test_cases, "recall test cases");
    parser->AddInt("decoys", &decoys, "decoys per recall case");
    parser->AddInt("users", &users, "top-N test users");
    parser->AddInt("k", &k, "recommendation list length");
    parser->AddInt("max_n", &max_n, "recall horizon N");
    parser->AddInt("topics", &topics, "LDA topics");
    parser->AddInt("lda_iters", &lda_iters, "LDA Gibbs iterations");
    parser->AddInt("factors", &factors, "PureSVD factors");
    parser->AddInt("tau", &tau, "truncated DP iterations");
    parser->AddInt("mu", &mu,
                   "BFS subgraph item cap (0: whole graph, -1: auto — the "
                   "paper's mu=6000 covers all of MovieLens but 6.7% of "
                   "Douban, so auto scales that ratio to the catalog)");
    parser->AddInt("threads", &threads, "worker threads (0 = hardware)");
    parser->AddString("ratings_file", &ratings_file,
                      "optional real MovieLens ratings.dat to use instead "
                      "of the MovieLens-like synthetic corpus");
    parser->AddBool("extra_baselines", &extra_baselines,
                    "also run MostPopular and ItemKNN");
  }

  /// Resolves µ for a corpus: explicit flag wins; auto uses the whole
  /// graph. Rationale: the paper's µ = 6000 comfortably covers a user's
  /// 2-hop item neighbourhood on both corpora (it spans *all* of
  /// MovieLens); at reduced scale only the whole graph preserves that
  /// coverage, while a proportionally scaled cap truncates the 2-hop
  /// neighbourhood mid-level and collapses recall (see bench_table4_mu for
  /// the explicit µ sweep that isolates the cost/quality trade-off).
  int32_t MuFor(const Dataset& d, bool douban_like) const {
    (void)d;
    (void)douban_like;
    if (mu >= 0) return mu;
    return 0;
  }

  SuiteOptions Suite(const Dataset& d, bool douban_like = false) const {
    SuiteOptions options;
    options.walk.iterations = tau;
    options.walk.max_subgraph_items = MuFor(d, douban_like);
    options.lda.num_topics = topics;
    options.lda.iterations = lda_iters;
    options.svd.num_factors = factors;
    options.include_extra_baselines = extra_baselines;
    return options;
  }
};

/// Parses flags; exits the process on --help or bad flags.
inline BenchFlags ParseFlagsOrDie(int argc, char** argv) {
  BenchFlags flags;
  FlagParser parser;
  flags.Register(&parser);
  const Status status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    std::exit(status.code() == StatusCode::kFailedPrecondition ? 0 : 2);
  }
  return flags;
}

/// Builds the MovieLens-like corpus (or loads --ratings_file when given).
inline SyntheticData MakeMovieLensCorpus(const BenchFlags& flags) {
  if (!flags.ratings_file.empty()) {
    auto loaded = LoadMovieLensRatings(flags.ratings_file);
    LT_CHECK(loaded.ok()) << loaded.status().ToString();
    SyntheticData data;
    data.dataset = std::move(loaded).value();
    // Real data has no generator ontology; build a flat one so similarity
    // metrics degrade gracefully (all items share a root category).
    auto ont = CategoryOntology::BuildBalanced({"All"}, 1, 1);
    LT_CHECK(ont.ok());
    data.ontology = std::move(ont).value();
    return data;
  }
  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(flags.ml_scale));
  LT_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

inline SyntheticData MakeDoubanCorpus(const BenchFlags& flags) {
  auto data =
      GenerateSyntheticData(SyntheticSpec::DoubanLike(flags.douban_scale));
  LT_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

inline void PrintCorpusHeader(const char* name, const Dataset& d) {
  const LongTailStats stats = ComputeLongTailStats(d);
  std::printf(
      "# %s: %s users x %s items, %s ratings (density %.3f%%), "
      "tail=%.0f%% of items @ 20%% of ratings, gini=%.2f\n",
      name, FormatWithCommas(d.num_users()).c_str(),
      FormatWithCommas(d.num_items()).c_str(),
      FormatWithCommas(d.num_ratings()).c_str(), 100.0 * d.Density(),
      100.0 * stats.tail_item_fraction, stats.gini);
}

/// Fits the paper suite with progress logging.
inline AlgorithmSuite FitSuiteOrDie(const Dataset& train,
                                    const SuiteOptions& options) {
  WallTimer timer;
  auto suite = BuildAndFitSuite(train, options);
  LT_CHECK(suite.ok()) << suite.status().ToString();
  std::printf("# fitted %zu algorithms in %.1fs\n",
              suite->algorithms.size(), timer.ElapsedSeconds());
  return std::move(suite).value();
}

}  // namespace bench
}  // namespace longtail

#endif  // LONGTAIL_BENCH_BENCH_COMMON_H_
