// Table 5 reproduction: online recommendation time cost for LDA, PureSVD,
// AC2 and DPPR on the Douban-like corpus, top-10 per user. Offline training
// (LDA Gibbs, SVD) is excluded, as in the paper.
//
// Paper row: LDA 0.47s, PureSVD 0.45s, AC2 0.52s, DPPR 13.5s (per user,
// single-threaded, 2011-era Java on the full 89,908-item Douban corpus).
// Absolute numbers differ on the scaled C++ substrate; the shape to check
// is pruned AC2 ≪ DPPR (full-graph power iteration per query). An extra
// µ-pruned AC2 row makes the paper's subgraph cost mechanism explicit.
#include "bench/bench_common.h"

#include "core/absorbing_cost.h"

namespace longtail {
namespace {

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(
      corpus.dataset, flags.Suite(corpus.dataset, /*douban_like=*/true));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  std::printf("# %zu users, top-%d, single-threaded query timing\n\n",
              users.size(), flags.k);

  std::printf("%16s %16s %18s\n", "algorithm", "s/user", "users/second");
  for (const char* name : {"LDA", "PureSVD", "AC2", "DPPR"}) {
    const Recommender* alg = suite.Find(name);
    LT_CHECK(alg != nullptr) << name;
    // Single-threaded to mirror the paper's per-query cost measurement.
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f\n", name, report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user));
  }

  // The paper's efficiency win for AC2 comes from the µ-capped subgraph
  // (µ = 6000 ≈ 6.7% of the Douban catalog). Show the pruned configuration
  // so the cost mechanism is visible at this scale too.
  {
    AbsorbingCostOptions options;
    options.walk.iterations = flags.tau;
    options.walk.max_subgraph_items = std::max<int32_t>(
        60, static_cast<int32_t>(0.067 * corpus.dataset.num_items()));
    options.lda.num_topics = flags.topics;
    options.lda.iterations = flags.lda_iters;
    AbsorbingCostRecommender pruned(EntropySource::kTopicBased, options);
    LT_CHECK_OK(pruned.Fit(corpus.dataset));
    auto report = EvaluateTopN(pruned, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f   (mu = 6.7%% of the catalog, the\n"
                "%52s paper's Douban ratio; recall quality at reduced\n"
                "%52s scale needs larger mu — see bench_table4_mu)\n",
                "AC2-pruned", report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user), "", "");
  }
  std::printf(
      "\nExpected shape: pruned AC2 approaches the model-based methods and\n"
      "beats DPPR (global power iteration per query, no pruning); the\n"
      "advantage widens with catalog size as in the paper's Table 5.\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 5: comparison on online time cost ==\n\n");
  Run(flags);
  return 0;
}
