// Table 5 reproduction: online recommendation time cost for LDA, PureSVD,
// AC2 and DPPR on the Douban-like corpus, top-10 per user. Offline training
// (LDA Gibbs, SVD) is excluded, as in the paper.
//
// Paper row: LDA 0.47s, PureSVD 0.45s, AC2 0.52s, DPPR 13.5s (per user,
// single-threaded, 2011-era Java on the full 89,908-item Douban corpus).
// Absolute numbers differ on the scaled C++ substrate; the shape to check
// is pruned AC2 ≪ DPPR (full-graph power iteration per query). An extra
// µ-pruned AC2 row makes the paper's subgraph cost mechanism explicit.
//
// Beyond the paper, a batch-engine section times RecommendBatch at 1 and
// --threads workers (workspace-reused walks), and the whole table is
// emitted to BENCH_table5.json so future changes have a perf trajectory
// to compare against.
#include "bench/bench_common.h"

#include <thread>

#include "core/absorbing_cost.h"

namespace longtail {
namespace {

struct AlgorithmTimings {
  std::string name;
  double fit_seconds = 0.0;
  double single_seconds_per_user = 0.0;
  double batch1_seconds_per_user = 0.0;   // batch engine, 1 worker
  double batchn_seconds_per_user = 0.0;   // batch engine, `threads` workers
  size_t threads = 0;
};

double TimeBatch(const Recommender& rec, const std::vector<UserId>& users,
                 int k, size_t threads) {
  BatchOptions options;
  options.num_threads = threads;
  WallTimer timer;
  auto lists = rec.RecommendBatch(users, k, options);
  const double elapsed = timer.ElapsedSeconds();
  LT_CHECK_EQ(lists.size(), users.size());
  return elapsed / users.size();
}

void WriteJson(const char* path, const Dataset& d,
               const std::vector<AlgorithmTimings>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table5_efficiency\",\n");
  std::fprintf(f,
               "  \"corpus\": {\"users\": %d, \"items\": %d, "
               "\"ratings\": %lld},\n",
               d.num_users(), d.num_items(),
               static_cast<long long>(d.num_ratings()));
  std::fprintf(f, "  \"algorithms\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const AlgorithmTimings& r = rows[i];
    const double speedup = r.batchn_seconds_per_user > 0.0
                               ? r.single_seconds_per_user /
                                     r.batchn_seconds_per_user
                               : 0.0;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"fit_seconds\": %.6f, "
        "\"single_query_seconds_per_user\": %.9f, "
        "\"batch_seconds_per_user_1t\": %.9f, "
        "\"batch_seconds_per_user\": %.9f, \"batch_threads\": %zu, "
        "\"batch_users_per_second\": %.1f, "
        "\"batch_speedup_vs_single\": %.2f}%s\n",
        r.name.c_str(), r.fit_seconds, r.single_seconds_per_user,
        r.batch1_seconds_per_user, r.batchn_seconds_per_user, r.threads,
        r.batchn_seconds_per_user > 0.0 ? 1.0 / r.batchn_seconds_per_user
                                        : 0.0,
        speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path);
}

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(
      corpus.dataset, flags.Suite(corpus.dataset, /*douban_like=*/true));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  const size_t batch_threads =
      flags.threads > 0 ? static_cast<size_t>(flags.threads)
                        : std::max(1u, std::thread::hardware_concurrency());
  std::printf("# %zu users, top-%d, single-threaded query timing\n\n",
              users.size(), flags.k);

  std::vector<AlgorithmTimings> rows;
  std::printf("%16s %16s %18s\n", "algorithm", "s/user", "users/second");
  for (const char* name : {"LDA", "PureSVD", "AC2", "DPPR"}) {
    const Recommender* alg = suite.Find(name);
    LT_CHECK(alg != nullptr) << name;
    // Single-threaded to mirror the paper's per-query cost measurement.
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f\n", name, report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user));
    AlgorithmTimings row;
    row.name = name;
    row.fit_seconds = suite.FitSeconds(name);
    row.single_seconds_per_user = report->seconds_per_user;
    row.threads = batch_threads;
    rows.push_back(row);
  }

  // The paper's efficiency win for AC2 comes from the µ-capped subgraph
  // (µ = 6000 ≈ 6.7% of the Douban catalog). Show the pruned configuration
  // so the cost mechanism is visible at this scale too.
  {
    AbsorbingCostOptions options;
    options.walk.iterations = flags.tau;
    options.walk.max_subgraph_items = std::max<int32_t>(
        60, static_cast<int32_t>(0.067 * corpus.dataset.num_items()));
    options.lda.num_topics = flags.topics;
    options.lda.iterations = flags.lda_iters;
    AbsorbingCostRecommender pruned(EntropySource::kTopicBased, options);
    WallTimer fit_timer;
    LT_CHECK_OK(pruned.Fit(corpus.dataset));
    const double pruned_fit = fit_timer.ElapsedSeconds();
    auto report = EvaluateTopN(pruned, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f   (mu = 6.7%% of the catalog, the\n"
                "%52s paper's Douban ratio; recall quality at reduced\n"
                "%52s scale needs larger mu — see bench_table4_mu)\n",
                "AC2-pruned", report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user), "", "");
    AlgorithmTimings row;
    row.name = "AC2-pruned";
    row.fit_seconds = pruned_fit;
    row.single_seconds_per_user = report->seconds_per_user;
    row.threads = batch_threads;
    row.batch1_seconds_per_user =
        TimeBatch(pruned, users, flags.k, /*threads=*/1);
    row.batchn_seconds_per_user =
        TimeBatch(pruned, users, flags.k, batch_threads);
    rows.push_back(row);
  }

  // Batch query engine: workspace-reused walks fanned out over the thread
  // pool. Same results as the per-user path (see batch_parity_test), but
  // without per-query global-table allocation and with real parallelism.
  std::printf("\n# batch engine (RecommendBatch, %zu threads)\n\n",
              batch_threads);
  std::printf("%16s %14s %14s %14s %10s\n", "algorithm", "s/user@1t",
              "s/user@Nt", "users/sec@Nt", "speedup");
  for (AlgorithmTimings& row : rows) {
    if (row.name == "AC2-pruned") continue;  // timed above
    const Recommender* alg = suite.Find(row.name);
    row.batch1_seconds_per_user = TimeBatch(*alg, users, flags.k, 1);
    row.batchn_seconds_per_user =
        TimeBatch(*alg, users, flags.k, batch_threads);
  }
  for (const AlgorithmTimings& row : rows) {
    std::printf("%16s %14.5f %14.5f %14.1f %9.2fx\n", row.name.c_str(),
                row.batch1_seconds_per_user, row.batchn_seconds_per_user,
                1.0 / std::max(1e-9, row.batchn_seconds_per_user),
                row.single_seconds_per_user /
                    std::max(1e-9, row.batchn_seconds_per_user));
  }

  std::printf(
      "\nExpected shape: pruned AC2 approaches the model-based methods and\n"
      "beats DPPR (global power iteration per query, no pruning); the\n"
      "advantage widens with catalog size as in the paper's Table 5. The\n"
      "batch rows should scale near-linearly with threads for the graph\n"
      "methods (per-worker walk workspaces, no shared state).\n");

  WriteJson("BENCH_table5.json", corpus.dataset, rows);
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 5: comparison on online time cost ==\n\n");
  Run(flags);
  return 0;
}
