// Table 5 reproduction: online recommendation time cost for LDA, PureSVD,
// AC2 and DPPR on the Douban-like corpus, top-10 per user. Offline training
// (LDA Gibbs, SVD) is excluded, as in the paper.
//
// Paper row: LDA 0.47s, PureSVD 0.45s, AC2 0.52s, DPPR 13.5s (per user,
// single-threaded, 2011-era Java on the full 89,908-item Douban corpus).
// Absolute numbers differ on the scaled C++ substrate; the shape to check
// is pruned AC2 ≪ DPPR (full-graph power iteration per query). An extra
// µ-pruned AC2 row makes the paper's subgraph cost mechanism explicit.
//
// Beyond the paper, a batch-engine section times RecommendBatch at 1 and
// --threads workers (workspace-reused walks on the long-lived
// ServingPool), a serving-layer section times the graph walkers against a
// shared SubgraphCache (cold fill vs. steady state, with per-phase hit
// rates), and the whole table is emitted to BENCH_table5.json so future
// changes have a perf trajectory to compare against.
#include "bench/bench_common.h"
#include "bench/synthetic_walk_graph.h"

#include <filesystem>
#include <thread>

#include <future>

#include "core/absorbing_cost.h"
#include "core/hitting_time.h"
#include "graph/markov.h"
#include "graph/subgraph.h"
#include "graph/subgraph_cache.h"
#include "graph/walk_kernel.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"

namespace longtail {
namespace {

struct AlgorithmTimings {
  std::string name;
  double fit_seconds = 0.0;
  double single_seconds_per_user = 0.0;
  double batch1_seconds_per_user = 0.0;   // batch engine, 1 worker
  double batchn_seconds_per_user = 0.0;   // batch engine, `threads` workers
  size_t threads = 0;
};

/// One graph walker served through the shared SubgraphCache: a cold pass
/// that fills it and a steady-state pass that runs on hits.
struct ServingTimings {
  std::string name;
  double cold_seconds_per_user = 0.0;
  double steady_seconds_per_user = 0.0;
  double cold_hit_rate = 0.0;
  double steady_hit_rate = 0.0;
};

double TimeBatch(const Recommender& rec, const std::vector<UserId>& users,
                 int k, size_t threads, SubgraphCache* cache = nullptr) {
  BatchOptions options;
  options.num_threads = threads;
  options.subgraph_cache = cache;
  WallTimer timer;
  auto lists = rec.RecommendBatch(users, k, options);
  const double elapsed = timer.ElapsedSeconds();
  LT_CHECK_EQ(lists.size(), users.size());
  return elapsed / users.size();
}

/// The ServingEngine front door measured three ways: steady-state traffic
/// through the eval engine path (per walker), single-flight coalescing on
/// identical cold queries, and admission-control rejection under a flood.
struct EngineBench {
  size_t max_batch_size = 0;
  uint64_t flush_interval_ticks = 0;
  size_t threads = 0;
  /// name → seconds/user served through the engine (queue + batch + walk).
  std::vector<std::pair<std::string, double>> traffic;
  /// Engine counters after the traffic pass (queue latency, batch-size
  /// histogram).
  EngineStats traffic_stats;
  // Single-flight experiment: identical cold requests against a fresh
  // cache.
  uint64_t cold_identical_requests = 0;
  uint64_t cold_extractions = 0;
  uint64_t cold_coalesced_waits = 0;
  double coalesced_rate = 0.0;
  // Admission experiment: flood a small queue without pumping.
  uint64_t flood_submitted = 0;
  uint64_t flood_rejected = 0;
  double rejection_rate = 0.0;
};

/// One algorithm's checkpoint economics: persistence latency and the
/// cold-start-from-checkpoint speedup over refitting.
struct CheckpointTimings {
  std::string name;
  double fit_seconds = 0.0;   // offline training cost (refit baseline)
  double save_seconds = 0.0;  // SaveModelCheckpoint wall clock
  double load_seconds = 0.0;  // registry cold-start wall clock
  uint64_t bytes = 0;         // checkpoint file size
};

/// Hit rate over the window between two cumulative stats snapshots.
double WindowHitRate(const SubgraphCacheStats& before,
                     const SubgraphCacheStats& after) {
  const uint64_t hits = after.hits - before.hits;
  const uint64_t total = hits + (after.misses - before.misses);
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

/// Old-vs-new timing of the truncated absorbing sweep on one subgraph
/// size. Three timed configurations, each end-to-end per query (the kernel
/// ones include the per-query BuildTransitions + compile, as in
/// production):
///  * reference — the retained pre-kernel scalar loop;
///  * kernel full sweep — both sides updated every iteration (the generic
///    AbsorbingValueTruncated contract);
///  * kernel ranking sweep — the production path (item-side output only,
///    one side per step, half the edge work).
/// "rows" are node-rows swept by the full-DP contract (nodes × τ), so the
/// rates are directly comparable across the three configurations.
struct KernelTimings {
  std::string name;       // subgraph configuration (µ cap or synthetic rung)
  int32_t nodes = 0;
  int64_t edges = 0;
  int iterations = 0;
  /// One DP value vector (8·nodes): the quantity the plan thresholds gate
  /// on, and the deepest cache it fits in on this machine.
  size_t value_bytes = 0;
  const char* cache_level = "";
  /// Memory-layout plan BuildTransitions picked for this size (the
  /// tentpole's measured dimension): simple / blocked / blocked_reordered,
  /// whether the CSR was permuted, and the L1 row tile.
  const char* layout_strategy = "";
  bool reordered = false;
  int32_t row_tile = 0;
  double reference_ns_per_iteration = 0.0;
  double kernel_full_ns_per_iteration = 0.0;
  double kernel_ranking_ns_per_iteration = 0.0;
  /// Steady-state serving path: ranking sweep over a layout pre-built at
  /// SubgraphCache admission (the permutation is outside the timed loop,
  /// exactly as a cache hit amortizes it).
  double kernel_cached_ns_per_iteration = 0.0;
  const char* cached_strategy = "";
  double reference_rows_per_second = 0.0;
  double kernel_rows_per_second = 0.0;
  /// Production headline: reference loop vs the ranking sweep that now
  /// serves every truncated-walk query.
  double speedup = 0.0;
  /// Like-for-like full-DP comparison (both sides, every iteration). CI
  /// asserts >= 0.98 at every size (scripts/compare_bench.py).
  double full_vs_reference_speedup = 0.0;
  /// Reference vs the cached-layout ranking path.
  double cached_speedup = 0.0;
  /// Fused multi-query ladder on the cached plan: per-query cost of
  /// sweeping K interleaved lanes through one CSR pass per iteration,
  /// versus K sequential width-1 sweeps. speedup_vs_width1 > 1 means the
  /// stream amortized; it grows with width until the K-strided value
  /// block outgrows the cache the single-query vector fit in.
  struct FusedRung {
    int32_t width = 0;
    double per_query_ns_per_iteration = 0.0;
    double speedup_vs_width1 = 0.0;
  };
  std::vector<FusedRung> fused;
};

/// Deepest cache level one value vector of `bytes` fits in.
const char* CacheLevelOf(size_t bytes) {
  const CacheGeometry& geo = ProbeCacheGeometry();
  if (bytes <= geo.l1d_bytes) return "L1";
  if (bytes <= geo.l2_bytes) return "L2";
  if (bytes <= geo.l3_bytes) return "L3";
  return "RAM";
}


/// Times the four sweep configurations on one graph. Configurations are
/// interleaved round-robin; absolute ns/iteration figures take the
/// minimum window per configuration, while the speedup ratios take the
/// *median of per-round ratios* — a round's four windows are adjacent in
/// time, so slow VM phases (steal bursts on shared 1-core CI runners)
/// inflate numerator and denominator together and cancel, where a ratio
/// of cross-round minima would compare windows from different phases.
KernelTimings BenchKernelGraph(const char* name, const BipartiteGraph& g,
                               const std::vector<bool>& absorbing, int tau,
                               int rounds) {
  const int32_t n = g.num_nodes();
  const std::vector<double> costs(n, 1.0);
  std::vector<double> value, scratch;
  WalkKernel kernel;

  // Calibrate repetitions off one reference run, targeting ~60 ms per
  // timed window.
  WallTimer calibrate;
  AbsorbingValueTruncatedReference(g, absorbing, costs, tau, &value,
                                   &scratch);
  const double once = calibrate.ElapsedSeconds();
  const int reps = std::max(2, static_cast<int>(0.06 / std::max(1e-6, once)));

  // The cached configuration adopts a full WalkPlan built once, up front —
  // exactly what SubgraphCache admission does, so the timed loop below is
  // the serving warm path: AdoptPlan (two pointer stores) + compile +
  // sweep, zero O(E) transition builds. The layout is null below the
  // reorder threshold (then the plan is the plain auto plan, i.e.
  // cache-hit == cold plan parity).
  const std::shared_ptr<const WalkLayout> cached_layout =
      BuildWalkLayoutIfBeneficial(g);
  const std::shared_ptr<const WalkPlan> cached_plan = [&] {
    auto p = std::make_shared<WalkPlan>();
    p->Build(g, WalkNormalization::kRowStochastic, cached_layout);
    return p;
  }();
  WalkKernel cached_kernel;

  std::vector<double> ref_t(rounds), full_t(rounds), rank_t(rounds),
      cache_t(rounds);
  double checksum_ref = 0.0, checksum_full = 0.0;
  for (int round = 0; round < rounds; ++round) {
    {
      WallTimer t;
      for (int r = 0; r < reps; ++r) {
        AbsorbingValueTruncatedReference(g, absorbing, costs, tau, &value,
                                         &scratch);
      }
      ref_t[round] = t.ElapsedSeconds();
      checksum_ref = 0.0;
      for (double v : value) checksum_ref += v;
    }
    {
      WallTimer t;
      for (int r = 0; r < reps; ++r) {
        AbsorbingValueTruncated(g, absorbing, costs, tau, &kernel, &value,
                                &scratch);
      }
      full_t[round] = t.ElapsedSeconds();
      checksum_full = 0.0;
      for (double v : value) checksum_full += v;
    }
    {
      WallTimer t;
      for (int r = 0; r < reps; ++r) {
        kernel.BuildTransitions(g,
                                WalkKernel::Normalization::kRowStochastic);
        kernel.CompileAbsorbingSweep(absorbing, costs);
        kernel.SweepTruncatedItemValues(tau, &value);
      }
      rank_t[round] = t.ElapsedSeconds();
    }
    {
      WallTimer t;
      for (int r = 0; r < reps; ++r) {
        cached_kernel.AdoptPlan(cached_plan);
        cached_kernel.CompileAbsorbingSweep(absorbing, costs);
        cached_kernel.SweepTruncatedItemValues(tau, &value);
      }
      cache_t[round] = t.ElapsedSeconds();
    }
  }
  const auto min_of = [](const std::vector<double>& t) {
    return *std::min_element(t.begin(), t.end());
  };
  // Median of the per-round ref/config ratios (see the function comment).
  const auto median_speedup = [&ref_t](const std::vector<double>& t) {
    std::vector<double> r(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      r[i] = t[i] > 0.0 ? ref_t[i] / t[i] : 0.0;
    }
    std::sort(r.begin(), r.end());
    return r[r.size() / 2];
  };
  const double ref_seconds = min_of(ref_t);
  const double full_seconds = min_of(full_t);
  const double ranking_seconds = min_of(rank_t);
  const double cached_seconds = min_of(cache_t);
  // Parity is enforced by tests; the checksum just keeps the compiler
  // honest about running both loops.
  LT_CHECK(std::abs(checksum_ref - checksum_full) <=
           1e-6 * std::max(1.0, std::abs(checksum_ref)));

  KernelTimings row;
  row.name = name;
  row.nodes = n;
  row.edges = g.num_edges();
  row.iterations = tau;
  row.value_bytes = static_cast<size_t>(n) * sizeof(double);
  row.cache_level = CacheLevelOf(row.value_bytes);
  // The kernel still holds the plan its last BuildTransitions picked.
  row.layout_strategy = kernel.sweep_strategy();
  row.reordered = kernel.reordered();
  row.row_tile = kernel.row_tile();
  row.cached_strategy = cached_kernel.sweep_strategy();
  const double sweeps = static_cast<double>(reps) * tau;
  row.reference_ns_per_iteration = 1e9 * ref_seconds / sweeps;
  row.kernel_full_ns_per_iteration = 1e9 * full_seconds / sweeps;
  row.kernel_ranking_ns_per_iteration = 1e9 * ranking_seconds / sweeps;
  row.kernel_cached_ns_per_iteration = 1e9 * cached_seconds / sweeps;
  row.reference_rows_per_second = n * sweeps / ref_seconds;
  row.kernel_rows_per_second = n * sweeps / ranking_seconds;
  row.speedup = median_speedup(rank_t);
  row.full_vs_reference_speedup = median_speedup(full_t);
  row.cached_speedup = median_speedup(cache_t);

  // Fused multi-query ladder, all on the cached plan (the serving warm
  // path, where fusion actually engages). Widths interleave round-robin
  // like the configurations above so per-round ratios cancel slow VM
  // phases; reps scale down with width to keep windows comparable. Width
  // 16 is measured even where the runtime cap would stop at 8 — the
  // ladder is how the cap rule is validated empirically.
  {
    const int32_t widths[] = {1, 2, 4, 8, 16};
    constexpr int kFusedRounds = 3;
    std::vector<std::vector<bool>> lanes;
    std::vector<double> block;
    // per-query seconds per (rep · iteration), [width][round]
    double perq[5][kFusedRounds];
    for (int round = 0; round < kFusedRounds; ++round) {
      for (int wi = 0; wi < 5; ++wi) {
        const int32_t width = widths[wi];
        lanes.assign(width, absorbing);
        const int wreps = std::max(1, reps / width);
        WallTimer t;
        for (int r = 0; r < wreps; ++r) {
          cached_kernel.AdoptPlan(cached_plan);
          cached_kernel.CompileAbsorbingSweepBatch(lanes, costs);
          cached_kernel.SweepTruncatedItemValuesBatch(tau, &block);
        }
        perq[wi][round] =
            t.ElapsedSeconds() / (static_cast<double>(wreps) * tau * width);
      }
    }
    for (int wi = 0; wi < 5; ++wi) {
      KernelTimings::FusedRung rung;
      rung.width = widths[wi];
      rung.per_query_ns_per_iteration =
          1e9 * *std::min_element(perq[wi], perq[wi] + kFusedRounds);
      std::vector<double> ratios(kFusedRounds);
      for (int round = 0; round < kFusedRounds; ++round) {
        ratios[round] =
            perq[wi][round] > 0.0 ? perq[0][round] / perq[wi][round] : 0.0;
      }
      std::sort(ratios.begin(), ratios.end());
      rung.speedup_vs_width1 = ratios[kFusedRounds / 2];
      row.fused.push_back(rung);
    }
  }
  std::printf(
      "%12s %8d %10lld %4s %18s %11.0f %11.0f %11.0f %11.0f %7.2fx %7.2fx "
      "%7.2fx\n",
      row.name.c_str(), row.nodes, static_cast<long long>(row.edges),
      row.cache_level, row.cached_strategy, row.reference_ns_per_iteration,
      row.kernel_full_ns_per_iteration, row.kernel_ranking_ns_per_iteration,
      row.kernel_cached_ns_per_iteration, row.full_vs_reference_speedup,
      row.speedup, row.cached_speedup);
  std::printf("%12s   fused per-query ns/it:", "");
  for (const KernelTimings::FusedRung& rung : row.fused) {
    std::printf("  w%-2d %9.0f (%4.2fx)", rung.width,
                rung.per_query_ns_per_iteration, rung.speedup_vs_width1);
  }
  std::printf("\n");
  return row;
}

/// Times reference vs kernel sweeps across a ladder of subgraph sizes
/// spanning the machine's cache boundaries: µ-capped extractions from the
/// corpus (µ/4 up to the uncapped reachable component) plus synthetic
/// rungs sized off the measured geometry so the value vector crosses L2 —
/// the region where the reordered layout plan engages. Each row records
/// the plan BuildTransitions picked, so the JSON shows the measured
/// crossover points, not just the configured thresholds.
std::vector<KernelTimings> RunKernelBench(const Dataset& d, int tau) {
  const BipartiteGraph graph = BipartiteGraph::FromDataset(d, true);
  // The busiest user seeds the largest (most representative) subgraphs.
  UserId probe = 0;
  for (UserId u = 0; u < d.num_users(); ++u) {
    if (d.UserDegree(u) > d.UserDegree(probe)) probe = u;
  }
  std::vector<NodeId> seeds{graph.UserNode(probe)};
  for (ItemId item : d.UserItems(probe)) seeds.push_back(graph.ItemNode(item));

  const int32_t pruned_mu = std::max<int32_t>(
      60, static_cast<int32_t>(0.067 * d.num_items()));
  const struct {
    const char* name;
    int32_t mu;
  } sizes[] = {
      {"mu_quarter", std::max(15, pruned_mu / 4)},
      {"mu_pruned", pruned_mu},
      {"mu_4x", 4 * pruned_mu},
      {"mu_16x", 16 * pruned_mu},
      {"uncapped", 0},
  };

  const CacheGeometry& geo = ProbeCacheGeometry();
  {
    WalkKernel probe_kernel;
    std::printf(
        "\n# walk kernel (truncated sweep, tau = %d, single thread, "
        "isa = %s,\n#              L1d %zuK / L2 %zuK / L3 %zuM, row tile "
        "%d)\n\n",
        tau, probe_kernel.isa_name(), geo.l1d_bytes / 1024,
        geo.l2_bytes / 1024, geo.l3_bytes / (1024 * 1024),
        WalkKernel::BlockedPlanRowTile());
  }
  std::printf("%12s %8s %10s %4s %18s %11s %11s %11s %11s %8s %8s %8s\n",
              "subgraph", "nodes", "edges", "fits", "steady layout",
              "ref ns/it", "full ns/it", "rank ns/it", "cache ns/it",
              "full x", "rank x", "cache x");
  std::vector<KernelTimings> rows;
  for (const auto& size : sizes) {
    SubgraphOptions sub_options;
    sub_options.max_items = size.mu;
    const Subgraph sub = ExtractSubgraph(graph, seeds, sub_options);
    const int32_t n = sub.graph.num_nodes();
    if (n == 0) continue;
    // Dedupe: a µ cap past the reachable component yields the same
    // subgraph as uncapped.
    if (!rows.empty() && rows.back().nodes == n) continue;
    // AT-style query: the probe user's rated items absorb, unit cost.
    std::vector<bool> absorbing(n, false);
    for (ItemId item : d.UserItems(probe)) {
      const NodeId local = sub.LocalItemNode(item);
      if (local >= 0) absorbing[local] = true;
    }
    rows.push_back(
        BenchKernelGraph(size.name, sub.graph, absorbing, tau, /*rounds=*/7));
  }

  // Synthetic cache-boundary rungs: value vector at half of L2 (blocked,
  // identity order) and at 3x L2 (past the reorder threshold). Sized from
  // the measured geometry so they land on the boundary on any machine;
  // capped so a huge-L2 host cannot make the smoke run unbounded. Fewer
  // timing rounds: at these sizes each round is hundreds of milliseconds
  // and the min-of-rounds noise floor is already low.
  const struct {
    const char* name;
    size_t value_bytes;
  } rungs[] = {
      {"syn_l2_half", geo.l2_bytes / 2},
      {"syn_l2_x3", 3 * geo.l2_bytes},
  };
  for (const auto& rung : rungs) {
    const int32_t n = static_cast<int32_t>(
        std::min<size_t>(rung.value_bytes / sizeof(double), 4u << 20));
    if (!rows.empty() && n <= rows.back().nodes) continue;
    const BipartiteGraph syn = bench::MakeSyntheticWalkGraph(n);
    std::vector<bool> absorbing(syn.num_nodes(), false);
    // AT-style: user 0's rated items absorb.
    for (NodeId nbr : syn.Neighbors(0)) absorbing[nbr] = true;
    rows.push_back(
        BenchKernelGraph(rung.name, syn, absorbing, tau, /*rounds=*/7));
  }
  return rows;
}

/// Emits the "kernel" object (shared by the full run and --kernel_only
/// smoke mode). `trailing_comma` because the section sits mid-object in
/// the full BENCH_table5.json.
void WriteKernelJsonSection(std::FILE* f,
                            const std::vector<KernelTimings>& rows,
                            bool trailing_comma) {
  WalkKernel probe;  // which row-gather flavour runtime dispatch picked
  const CacheGeometry& geo = ProbeCacheGeometry();
  std::fprintf(f, "  \"kernel\": {\n    \"isa\": \"%s\",\n", probe.isa_name());
  std::fprintf(f,
               "    \"cache_geometry\": {\"l1d_bytes\": %zu, "
               "\"l2_bytes\": %zu, \"l3_bytes\": %zu},\n",
               geo.l1d_bytes, geo.l2_bytes, geo.l3_bytes);
  // The configured plan thresholds (docs/KERNELS.md "Tuning"), alongside
  // the measured crossovers below so a drifted machine is visible.
  std::fprintf(f,
               "    \"thresholds\": {\"simple_max_value_bytes\": %zu, "
               "\"reorder_value_bytes_above\": %zu, "
               "\"reorder_min_entries_per_node\": 2, \"row_tile_rows\": "
               "%d},\n",
               WalkKernel::SimplePlanMaxValueBytes(), geo.l2_bytes,
               WalkKernel::BlockedPlanRowTile());
  // Measured crossover points: the smallest swept size where the cost
  // probe left the simple plan, and where the cached (steady-state
  // serving) plan starts reordering.
  int32_t to_blocked = 0, to_reordered = 0;
  for (const KernelTimings& r : rows) {
    if (to_blocked == 0 && std::string(r.layout_strategy) != "simple") {
      to_blocked = r.nodes;
    }
    if (to_reordered == 0 &&
        std::string(r.cached_strategy) == "blocked_reordered") {
      to_reordered = r.nodes;
    }
  }
  std::fprintf(f, "    \"crossovers\": {\"simple_to_blocked_nodes\": ");
  if (to_blocked > 0) {
    std::fprintf(f, "%d", to_blocked);
  } else {
    std::fprintf(f, "null");
  }
  std::fprintf(f, ", \"reorder_nodes\": ");
  if (to_reordered > 0) {
    std::fprintf(f, "%d", to_reordered);
  } else {
    std::fprintf(f, "null");
  }
  std::fprintf(f, "},\n    \"sweeps\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelTimings& r = rows[i];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"nodes\": %d, \"edges\": %lld, "
        "\"iterations\": %d, \"value_bytes\": %zu, "
        "\"cache_level\": \"%s\", \"layout\": {\"strategy\": \"%s\", "
        "\"reordered\": %s, \"row_tile\": %d, \"cached_strategy\": "
        "\"%s\"}, \"reference_ns_per_iteration\": %.1f, "
        "\"kernel_full_ns_per_iteration\": %.1f, "
        "\"kernel_ranking_ns_per_iteration\": %.1f, "
        "\"kernel_cached_ns_per_iteration\": %.1f, "
        "\"reference_rows_per_second\": %.0f, "
        "\"kernel_rows_per_second\": %.0f, "
        "\"full_vs_reference_speedup\": %.2f, \"speedup\": %.2f, "
        "\"cached_speedup\": %.2f, \"fused\": [",
        r.name.c_str(), r.nodes, static_cast<long long>(r.edges),
        r.iterations, r.value_bytes, r.cache_level, r.layout_strategy,
        r.reordered ? "true" : "false", r.row_tile, r.cached_strategy,
        r.reference_ns_per_iteration, r.kernel_full_ns_per_iteration,
        r.kernel_ranking_ns_per_iteration, r.kernel_cached_ns_per_iteration,
        r.reference_rows_per_second, r.kernel_rows_per_second,
        r.full_vs_reference_speedup, r.speedup, r.cached_speedup);
    for (size_t j = 0; j < r.fused.size(); ++j) {
      const KernelTimings::FusedRung& rung = r.fused[j];
      std::fprintf(f,
                   "{\"width\": %d, \"per_query_ns_per_iteration\": %.1f, "
                   "\"speedup_vs_width1\": %.2f}%s",
                   rung.width, rung.per_query_ns_per_iteration,
                   rung.speedup_vs_width1, j + 1 < r.fused.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }%s\n", trailing_comma ? "," : "");
}

void WriteJson(const char* path, const Dataset& d,
               const std::vector<AlgorithmTimings>& rows,
               const std::vector<ServingTimings>& serving,
               const EngineBench& engine,
               const std::vector<CheckpointTimings>& checkpoints,
               const std::vector<KernelTimings>& kernel,
               const SubgraphCacheStats& cache_stats, size_t threads) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table5_efficiency\",\n");
  std::fprintf(f,
               "  \"corpus\": {\"users\": %d, \"items\": %d, "
               "\"ratings\": %lld},\n",
               d.num_users(), d.num_items(),
               static_cast<long long>(d.num_ratings()));
  std::fprintf(f, "  \"algorithms\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const AlgorithmTimings& r = rows[i];
    const double speedup = r.batchn_seconds_per_user > 0.0
                               ? r.single_seconds_per_user /
                                     r.batchn_seconds_per_user
                               : 0.0;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"fit_seconds\": %.6f, "
        "\"single_query_seconds_per_user\": %.9f, "
        "\"batch_seconds_per_user_1t\": %.9f, "
        "\"batch_seconds_per_user\": %.9f, \"batch_threads\": %zu, "
        "\"batch_users_per_second\": %.1f, "
        "\"batch_speedup_vs_single\": %.2f}%s\n",
        r.name.c_str(), r.fit_seconds, r.single_seconds_per_user,
        r.batch1_seconds_per_user, r.batchn_seconds_per_user, r.threads,
        r.batchn_seconds_per_user > 0.0 ? 1.0 / r.batchn_seconds_per_user
                                        : 0.0,
        speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Serving layer: shared ServingPool + SubgraphCache. "steady" rows are
  // the latencies a long-lived server settles into once the cache holds
  // the working set.
  std::fprintf(f, "  \"serving\": {\n    \"threads\": %zu,\n", threads);
  std::fprintf(f, "    \"algorithms\": [\n");
  for (size_t i = 0; i < serving.size(); ++i) {
    const ServingTimings& s = serving[i];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"cold_batch_seconds_per_user\": %.9f, "
        "\"steady_batch_seconds_per_user\": %.9f, "
        "\"steady_users_per_second\": %.1f, "
        "\"steady_vs_cold_speedup\": %.4f, \"cold_hit_rate\": %.4f, "
        "\"steady_hit_rate\": %.4f}%s\n",
        s.name.c_str(), s.cold_seconds_per_user, s.steady_seconds_per_user,
        s.steady_seconds_per_user > 0.0 ? 1.0 / s.steady_seconds_per_user
                                        : 0.0,
        // In-run, machine-normalized: both passes ran back to back on the
        // same machine, so this ratio is gate-able anywhere (the warm pass
        // must never lose to the cold pass it skipped extraction for;
        // compare_bench.py --assert-only holds the floor).
        s.steady_seconds_per_user > 0.0
            ? s.cold_seconds_per_user / s.steady_seconds_per_user
            : 0.0,
        s.cold_hit_rate, s.steady_hit_rate,
        i + 1 < serving.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(
      f,
      "    \"subgraph_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"hit_rate\": %.4f, \"coalesced_waits\": %llu, "
      "\"coalesced_rate\": %.4f, \"inserts\": %llu, \"evictions\": %llu, "
      "\"entries\": %zu, \"resident_mb\": %.2f}\n",
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      cache_stats.HitRate(),
      static_cast<unsigned long long>(cache_stats.coalesced_waits),
      cache_stats.CoalescedRate(),
      static_cast<unsigned long long>(cache_stats.inserts),
      static_cast<unsigned long long>(cache_stats.evictions),
      cache_stats.entries,
      static_cast<double>(cache_stats.resident_bytes) / (1024.0 * 1024.0));
  std::fprintf(f, "  },\n");
  // Serving engine: admission-controlled micro-batching front door
  // (docs/SERVING.md) — queue latency, batch shaping, single-flight
  // coalescing, and fail-fast rejection under flood.
  std::fprintf(f,
               "  \"engine\": {\n    \"max_batch_size\": %zu, "
               "\"flush_interval_ticks\": %llu, \"threads\": %zu,\n",
               engine.max_batch_size,
               static_cast<unsigned long long>(engine.flush_interval_ticks),
               engine.threads);
  std::fprintf(f, "    \"traffic\": [\n");
  for (size_t i = 0; i < engine.traffic.size(); ++i) {
    const auto& [name, spu] = engine.traffic[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", "
                 "\"engine_seconds_per_user\": %.9f, "
                 "\"users_per_second\": %.1f}%s\n",
                 name.c_str(), spu, spu > 0.0 ? 1.0 / spu : 0.0,
                 i + 1 < engine.traffic.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  const EngineStats& es = engine.traffic_stats;
  std::fprintf(
      f,
      "    \"queue\": {\"dispatched\": %llu, \"batches\": %llu, "
      "\"mean_queue_ticks\": %.3f, \"max_queue_ticks\": %llu},\n",
      static_cast<unsigned long long>(es.dispatched),
      static_cast<unsigned long long>(es.batches_executed),
      es.MeanQueueTicks(),
      static_cast<unsigned long long>(es.queue_ticks_max));
  std::fprintf(f, "    \"batch_size_histogram\": [");
  bool first_bucket = true;
  for (size_t i = 0; i < es.batch_size_pow2.size(); ++i) {
    if (es.batch_size_pow2[i] == 0) continue;
    std::fprintf(f, "%s{\"min_batch\": %llu, \"count\": %llu}",
                 first_bucket ? "" : ", ",
                 static_cast<unsigned long long>(1ull << i),
                 static_cast<unsigned long long>(es.batch_size_pow2[i]));
    first_bucket = false;
  }
  std::fprintf(f, "],\n");
  std::fprintf(
      f,
      "    \"coalescing\": {\"identical_cold_requests\": %llu, "
      "\"extractions\": %llu, \"coalesced_waits\": %llu, "
      "\"coalesced_rate\": %.4f},\n",
      static_cast<unsigned long long>(engine.cold_identical_requests),
      static_cast<unsigned long long>(engine.cold_extractions),
      static_cast<unsigned long long>(engine.cold_coalesced_waits),
      engine.coalesced_rate);
  std::fprintf(
      f,
      "    \"admission\": {\"submitted\": %llu, "
      "\"rejected_queue_full\": %llu, \"rejection_rate\": %.4f}\n",
      static_cast<unsigned long long>(engine.flood_submitted),
      static_cast<unsigned long long>(engine.flood_rejected),
      engine.rejection_rate);
  std::fprintf(f, "  },\n");
  // Walk kernel: single-thread sweep throughput, old-vs-new (see
  // docs/KERNELS.md for how to read this).
  WriteKernelJsonSection(f, kernel, /*trailing_comma=*/true);
  // Checkpoint subsystem: persistence latency per algorithm and the
  // cold-start speedup a restart gets by loading instead of refitting.
  std::fprintf(f, "  \"checkpoint\": [\n");
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const CheckpointTimings& c = checkpoints[i];
    const double speedup =
        c.load_seconds > 0.0 ? c.fit_seconds / c.load_seconds : 0.0;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"refit_seconds\": %.6f, "
        "\"save_seconds\": %.6f, \"load_seconds\": %.6f, "
        "\"checkpoint_mb\": %.3f, \"cold_start_speedup_vs_refit\": %.1f}%s\n",
        c.name.c_str(), c.fit_seconds, c.save_seconds, c.load_seconds,
        static_cast<double>(c.bytes) / (1024.0 * 1024.0), speedup,
        i + 1 < checkpoints.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path);
}

/// --kernel_only: corpus + the walk-kernel microbench, nothing else. CI's
/// docs job runs this as a smoke test so the "kernel" JSON section is
/// exercised (and stays parseable) on every PR without fitting the suite.
void RunKernelOnly(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  const std::vector<KernelTimings> kernel =
      RunKernelBench(corpus.dataset, flags.tau);
  std::FILE* f = std::fopen("BENCH_table5.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_table5.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table5_efficiency (kernel smoke)\",\n");
  std::fprintf(f,
               "  \"corpus\": {\"users\": %d, \"items\": %d, "
               "\"ratings\": %lld},\n",
               corpus.dataset.num_users(), corpus.dataset.num_items(),
               static_cast<long long>(corpus.dataset.num_ratings()));
  WriteKernelJsonSection(f, kernel, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_table5.json (kernel section only)\n");
}

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeDoubanCorpus(flags);
  bench::PrintCorpusHeader("Douban-like", corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(
      corpus.dataset, flags.Suite(corpus.dataset, /*douban_like=*/true));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  const size_t batch_threads =
      flags.threads > 0 ? static_cast<size_t>(flags.threads)
                        : std::max(1u, std::thread::hardware_concurrency());
  std::printf("# %zu users, top-%d, single-threaded query timing\n\n",
              users.size(), flags.k);

  std::vector<AlgorithmTimings> rows;
  std::printf("%16s %16s %18s\n", "algorithm", "s/user", "users/second");
  for (const char* name : {"LDA", "PureSVD", "AC2", "DPPR"}) {
    const Recommender* alg = suite.Find(name);
    LT_CHECK(alg != nullptr) << name;
    // Single-threaded to mirror the paper's per-query cost measurement.
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f\n", name, report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user));
    AlgorithmTimings row;
    row.name = name;
    row.fit_seconds = suite.FitSeconds(name);
    row.single_seconds_per_user = report->seconds_per_user;
    row.threads = batch_threads;
    rows.push_back(row);
  }

  // The paper's efficiency win for AC2 comes from the µ-capped subgraph
  // (µ = 6000 ≈ 6.7% of the Douban catalog). Show the pruned configuration
  // so the cost mechanism is visible at this scale too.
  const int32_t pruned_mu = std::max<int32_t>(
      60, static_cast<int32_t>(0.067 * corpus.dataset.num_items()));
  GraphWalkOptions pruned_walk;
  pruned_walk.iterations = flags.tau;
  pruned_walk.max_subgraph_items = pruned_mu;
  AbsorbingCostOptions pruned_options;
  pruned_options.walk = pruned_walk;
  pruned_options.lda.num_topics = flags.topics;
  pruned_options.lda.iterations = flags.lda_iters;
  // Kept alive for the serving-layer section below.
  AbsorbingCostRecommender pruned(EntropySource::kTopicBased, pruned_options);
  {
    WallTimer fit_timer;
    LT_CHECK_OK(pruned.Fit(corpus.dataset));
    const double pruned_fit = fit_timer.ElapsedSeconds();
    auto report = EvaluateTopN(pruned, corpus.dataset, users, flags.k,
                               nullptr, /*num_threads=*/1);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%16s %16.5f %18.1f   (mu = 6.7%% of the catalog, the\n"
                "%52s paper's Douban ratio; recall quality at reduced\n"
                "%52s scale needs larger mu — see bench_table4_mu)\n",
                "AC2-pruned", report->seconds_per_user,
                1.0 / std::max(1e-9, report->seconds_per_user), "", "");
    AlgorithmTimings row;
    row.name = "AC2-pruned";
    row.fit_seconds = pruned_fit;
    row.single_seconds_per_user = report->seconds_per_user;
    row.threads = batch_threads;
    row.batch1_seconds_per_user =
        TimeBatch(pruned, users, flags.k, /*threads=*/1);
    row.batchn_seconds_per_user =
        TimeBatch(pruned, users, flags.k, batch_threads);
    rows.push_back(row);
  }

  // Batch query engine: workspace-reused walks fanned out over the thread
  // pool. Same results as the per-user path (see batch_parity_test), but
  // without per-query global-table allocation and with real parallelism.
  std::printf("\n# batch engine (RecommendBatch, %zu threads)\n\n",
              batch_threads);
  std::printf("%16s %14s %14s %14s %10s\n", "algorithm", "s/user@1t",
              "s/user@Nt", "users/sec@Nt", "speedup");
  for (AlgorithmTimings& row : rows) {
    if (row.name == "AC2-pruned") continue;  // timed above
    const Recommender* alg = suite.Find(row.name);
    row.batch1_seconds_per_user = TimeBatch(*alg, users, flags.k, 1);
    row.batchn_seconds_per_user =
        TimeBatch(*alg, users, flags.k, batch_threads);
  }
  for (const AlgorithmTimings& row : rows) {
    std::printf("%16s %14.5f %14.5f %14.1f %9.2fx\n", row.name.c_str(),
                row.batch1_seconds_per_user, row.batchn_seconds_per_user,
                1.0 / std::max(1e-9, row.batchn_seconds_per_user),
                row.single_seconds_per_user /
                    std::max(1e-9, row.batchn_seconds_per_user));
  }

  // Serving layer: one shared SubgraphCache across the graph walkers, in
  // the paper's production regime (µ-pruned subgraphs — with µ uncapped at
  // reduced scale, every "subgraph" is the whole component and caching it
  // is all memory and no speedup). Traffic is the hot slice of the test
  // users: serving workloads concentrate on active users, and the steady
  // state being measured is precisely the cached slice; the byte budget
  // below is what bounds the cache when traffic overflows it (evictions
  // are reported either way). Each algorithm runs a cold pass (filling the
  // cache) and a steady-state pass (served from it). AT/AC1/AC2 share
  // seed sets, so once AC2 has filled the cache the AC1/AT "cold" passes
  // already hit — the cross-recommender sharing a suite server gets for
  // free.
  const std::vector<UserId> hot_users(
      users.begin(),
      users.begin() + std::min<size_t>(users.size(), 200));
  std::printf(
      "\n# serving layer (shared SubgraphCache, mu = %d, %zu hot users, "
      "%zu threads)\n\n",
      pruned_mu, hot_users.size(), batch_threads);
  std::printf("%16s %14s %14s %10s %10s\n", "algorithm", "s/user cold",
              "s/user steady", "hit%cold", "hit%steady");
  AbsorbingCostOptions ac1_options;
  ac1_options.walk = pruned_walk;
  AbsorbingCostRecommender ac1_pruned(EntropySource::kItemBased, ac1_options);
  AbsorbingTimeRecommender at_pruned(pruned_walk);
  HittingTimeRecommender ht_pruned(pruned_walk);
  LT_CHECK_OK(ac1_pruned.Fit(corpus.dataset));
  LT_CHECK_OK(at_pruned.Fit(corpus.dataset));
  LT_CHECK_OK(ht_pruned.Fit(corpus.dataset));
  const std::vector<std::pair<const char*, const Recommender*>> walkers = {
      {"AC2-pruned", &pruned},
      {"AC1-pruned", &ac1_pruned},
      {"AT-pruned", &at_pruned},
      {"HT-pruned", &ht_pruned},
  };
  SubgraphCacheOptions cache_options;
  cache_options.max_bytes = 1ull << 30;
  SubgraphCache cache(cache_options);
  std::vector<ServingTimings> serving;
  for (const auto& [name, alg] : walkers) {
    ServingTimings s;
    s.name = name;
    const SubgraphCacheStats before = cache.Stats();
    s.cold_seconds_per_user =
        TimeBatch(*alg, hot_users, flags.k, batch_threads, &cache);
    const SubgraphCacheStats mid = cache.Stats();
    s.steady_seconds_per_user =
        TimeBatch(*alg, hot_users, flags.k, batch_threads, &cache);
    const SubgraphCacheStats after = cache.Stats();
    s.cold_hit_rate = WindowHitRate(before, mid);
    s.steady_hit_rate = WindowHitRate(mid, after);
    std::printf("%16s %14.5f %14.5f %9.1f%% %9.1f%%\n", name,
                s.cold_seconds_per_user, s.steady_seconds_per_user,
                100.0 * s.cold_hit_rate, 100.0 * s.steady_hit_rate);
    serving.push_back(s);
  }
  // Snapshot the serving-phase cache stats *before* the engine section
  // below reuses the same cache: the JSON "serving".subgraph_cache block
  // must describe the serving passes, not later engine/flood traffic.
  const SubgraphCacheStats cache_stats = cache.Stats();
  std::printf(
      "# cache: %.1f%% hit rate overall, %zu entries, %.1f MB resident, "
      "%llu evictions\n",
      100.0 * cache_stats.HitRate(), cache_stats.entries,
      static_cast<double>(cache_stats.resident_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(cache_stats.evictions));

  // Serving engine: the admission-controlled micro-batching front door
  // (docs/SERVING.md). Traffic runs through EvaluateTopN's engine path —
  // identical lists to the direct batch (bit-parity enforced by
  // tests/serving_engine_test.cc) — so the delta vs the steady serving
  // rows above is pure engine overhead: queueing, batch formation,
  // future hand-off.
  EngineBench eb;
  eb.max_batch_size = 32;
  eb.flush_interval_ticks = 1;
  eb.threads = batch_threads;
  std::printf(
      "\n# serving engine (max_batch %zu, flush %llu tick, %zu hot users)\n\n",
      eb.max_batch_size,
      static_cast<unsigned long long>(eb.flush_interval_ticks),
      hot_users.size());
  std::printf("%16s %18s %14s\n", "algorithm", "s/user via engine",
              "users/sec");
  {
    ServingEngineOptions engine_options;
    engine_options.max_batch_size = eb.max_batch_size;
    engine_options.flush_interval_ticks = eb.flush_interval_ticks;
    engine_options.batch_threads = batch_threads;
    engine_options.subgraph_cache = &cache;
    ServingEngine engine(engine_options);
    for (const auto& [name, alg] : walkers) {
      LT_CHECK_OK(engine.AddModel(alg));  // keyed by the model's name()
    }
    for (const auto& [label, alg] : walkers) {
      auto report = EvaluateTopN(*alg, corpus.dataset, hot_users, flags.k,
                                 nullptr, batch_threads,
                                 /*subgraph_cache=*/nullptr, &engine);
      LT_CHECK(report.ok()) << report.status().ToString();
      eb.traffic.emplace_back(alg->name(), report->seconds_per_user);
      std::printf("%16s %18.5f %14.1f\n", label, report->seconds_per_user,
                  1.0 / std::max(1e-9, report->seconds_per_user));
    }
    eb.traffic_stats = engine.Stats();
    std::printf(
        "# queue: %.2f mean ticks (%llu max), %llu requests in %llu "
        "batches\n",
        eb.traffic_stats.MeanQueueTicks(),
        static_cast<unsigned long long>(eb.traffic_stats.queue_ticks_max),
        static_cast<unsigned long long>(eb.traffic_stats.dispatched),
        static_cast<unsigned long long>(eb.traffic_stats.batches_executed));
  }
  {
    // Single flight: identical cold requests against a fresh cache must
    // extract once. Extra concurrency shows up as coalesced waits; on a
    // 1-core runner the duplicates resolve as cache hits instead — the
    // extraction count stays 1 either way.
    SubgraphCache cold_cache;
    ServingEngineOptions cold_options;
    cold_options.max_batch_size = 64;
    cold_options.batch_threads = batch_threads;
    cold_options.subgraph_cache = &cold_cache;
    cold_options.start_dispatcher = false;
    ServingEngine cold_engine(cold_options);
    LT_CHECK_OK(cold_engine.AddModel(&at_pruned));
    constexpr uint64_t kDupes = 64;
    ServeRequest dupe;
    dupe.user = hot_users.front();
    dupe.top_k = flags.k;
    std::vector<std::future<UserQueryResult>> futures;
    futures.reserve(kDupes);
    for (uint64_t i = 0; i < kDupes; ++i) {
      futures.push_back(cold_engine.Submit(at_pruned.name(), dupe));
    }
    cold_engine.PumpUntilIdle();
    for (auto& f : futures) {
      const UserQueryResult r = f.get();
      LT_CHECK(r.status.ok()) << r.status.ToString();
    }
    const SubgraphCacheStats cs = cold_cache.Stats();
    eb.cold_identical_requests = kDupes;
    eb.cold_extractions = cs.misses;
    eb.cold_coalesced_waits = cs.coalesced_waits;
    eb.coalesced_rate = cs.CoalescedRate();
    std::printf(
        "# coalescing: %llu identical cold requests -> %llu extraction(s), "
        "%llu coalesced waits\n",
        static_cast<unsigned long long>(kDupes),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.coalesced_waits));
  }
  {
    // Admission control: flood a deliberately tiny queue without pumping;
    // the overflow fails fast with ResourceExhausted instead of queueing.
    ServingEngineOptions flood_options;
    flood_options.max_queue_depth = 16;
    flood_options.max_batch_size = 16;
    flood_options.batch_threads = batch_threads;
    flood_options.subgraph_cache = &cache;
    flood_options.start_dispatcher = false;
    ServingEngine flood_engine(flood_options);
    LT_CHECK_OK(flood_engine.AddModel(&ht_pruned));
    std::vector<std::future<UserQueryResult>> futures;
    for (size_t i = 0; i < 64; ++i) {
      ServeRequest r;
      r.user = hot_users[i % hot_users.size()];
      r.top_k = flags.k;
      futures.push_back(flood_engine.Submit(ht_pruned.name(), r));
    }
    flood_engine.PumpUntilIdle();
    for (auto& f : futures) f.get();
    const EngineStats es = flood_engine.Stats();
    eb.flood_submitted = es.submitted;
    eb.flood_rejected = es.rejected_queue_full;
    eb.rejection_rate = es.RejectionRate();
    std::printf(
        "# admission: %llu submitted vs queue depth 16 -> %llu rejected "
        "(%.0f%%)\n",
        static_cast<unsigned long long>(es.submitted),
        static_cast<unsigned long long>(es.rejected_queue_full),
        100.0 * es.RejectionRate());
  }

  // Checkpoint phase: save every suite model, then cold-start each from
  // its checkpoint through the ModelRegistry — the restart path a serving
  // process takes instead of refitting (paper Table 5 shows why: fitting
  // dominates the offline cost). Each loaded model serves a probe batch so
  // the timing covers a genuinely usable model.
  std::printf("\n# checkpoint (save → registry cold-start vs refit)\n\n");
  std::printf("%16s %12s %12s %12s %10s %12s\n", "algorithm", "refit s",
              "save s", "load s", "ckpt MB", "cold-start x");
  const std::vector<UserId> probe_users(
      users.begin(), users.begin() + std::min<size_t>(users.size(), 10));
  std::vector<CheckpointTimings> checkpoints;
  for (const char* name :
       {"AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA"}) {
    const Recommender* alg = suite.Find(name);
    LT_CHECK(alg != nullptr) << name;
    const std::string path = std::string("BENCH_") + name + ".ckpt";
    CheckpointTimings c;
    c.name = name;
    c.fit_seconds = suite.FitSeconds(name);
    {
      WallTimer timer;
      LT_CHECK_OK(SaveModelCheckpoint(*alg, path));
      c.save_seconds = timer.ElapsedSeconds();
    }
    std::error_code ec;
    const auto file_bytes = std::filesystem::file_size(path, ec);
    c.bytes = ec ? 0 : static_cast<uint64_t>(file_bytes);
    {
      WallTimer timer;
      auto loaded = LoadModelCheckpoint(path, corpus.dataset);
      LT_CHECK(loaded.ok()) << loaded.status().ToString();
      c.load_seconds = timer.ElapsedSeconds();
      const auto probe = (*loaded)->RecommendBatch(probe_users, flags.k);
      LT_CHECK_EQ(probe.size(), probe_users.size());
    }
    std::filesystem::remove(path, ec);
    std::printf("%16s %12.4f %12.4f %12.4f %10.3f %11.1fx\n", name,
                c.fit_seconds, c.save_seconds, c.load_seconds,
                static_cast<double>(c.bytes) / (1024.0 * 1024.0),
                c.load_seconds > 0.0 ? c.fit_seconds / c.load_seconds : 0.0);
    checkpoints.push_back(c);
  }

  // Walk kernel: the single-thread sweep-throughput trajectory — on the
  // 1-core CI substrate this is the only axis where batch-engine progress
  // is measurable at all.
  const std::vector<KernelTimings> kernel =
      RunKernelBench(corpus.dataset, flags.tau);

  std::printf(
      "\nExpected shape: pruned AC2 approaches the model-based methods and\n"
      "beats DPPR (global power iteration per query, no pruning); the\n"
      "advantage widens with catalog size as in the paper's Table 5. The\n"
      "batch rows should scale near-linearly with threads for the graph\n"
      "methods (per-worker walk workspaces on the long-lived serving\n"
      "pool). Steady-state serving rows skip extraction entirely; AC1/AT\n"
      "hit even on their first pass because AC2 shares their seed sets,\n"
      "while HT (different seeds) fills its own entries.\n"
      "Checkpoint rows: cold-start-from-checkpoint should beat refit by\n"
      "orders of magnitude for the trained models (LDA Gibbs, SVD), since\n"
      "loading is file IO while refitting repeats the paper's dominant\n"
      "offline cost.\n");

  WriteJson("BENCH_table5.json", corpus.dataset, rows, serving, eb,
            checkpoints, kernel, cache_stats, batch_threads);
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags;
  bool kernel_only = false;
  FlagParser parser;
  flags.Register(&parser);
  parser.AddBool("kernel_only", &kernel_only,
                 "run only the walk-kernel microbench (CI smoke mode)");
  const Status status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
    return status.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  std::printf("== Table 5: comparison on online time cost ==\n\n");
  if (kernel_only) {
    RunKernelOnly(flags);
  } else {
    Run(flags);
  }
  return 0;
}
