// Deterministic synthetic bipartite graph for walk-kernel benchmarks.
//
// The corpus generator tops out near L2 on typical hosts, so cache-boundary
// benchmark rungs need a graph whose node count is chosen freely. This
// builder produces an expander-like user-item graph: per-user degrees 4-8
// from a multiplicative hash, item endpoints from a fixed-seed LCG, small
// integer weights. Expander edges have no exploitable locality, which makes
// these rungs a *lower bound* for layout techniques — corpus subgraphs
// (power-law, community-structured) reorder better, never worse.
//
// Shared by bench_table5_efficiency.cc (cache-ladder rungs) and
// bench_kernels.cc (sweep microbenchmarks) so both measure the same shape.
#ifndef LONGTAIL_BENCH_SYNTHETIC_WALK_GRAPH_H_
#define LONGTAIL_BENCH_SYNTHETIC_WALK_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace longtail {
namespace bench {

/// Builds a graph with ~target_nodes nodes (1/4 items, 3/4 users).
/// Deterministic: the same target always yields the same graph.
inline BipartiteGraph MakeSyntheticWalkGraph(int32_t target_nodes) {
  const int32_t num_items = std::max(2, target_nodes / 4);
  const int32_t num_users = std::max(2, target_nodes - num_items);
  auto degree_of = [](int32_t u) { return 4 + (u * 2654435761u >> 28) % 5; };
  auto item_of = [num_items](uint64_t state) {
    return static_cast<NodeId>(state % static_cast<uint64_t>(num_items));
  };
  std::vector<int32_t> degrees(num_users + num_items, 0);
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t d = degree_of(u);
    degrees[u] += d;
    for (int32_t k = 0; k < d; ++k) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      ++degrees[num_users + item_of(lcg >> 17)];
    }
  }
  BipartiteGraph g;
  g.BeginAssign(num_users, num_items, degrees);
  lcg = 0x9e3779b97f4a7c15ull;  // same sequence as the counting pass
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t d = degree_of(u);
    for (int32_t k = 0; k < d; ++k) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      g.AssignEdge(u, num_users + item_of(lcg >> 17),
                   1.0 + static_cast<double>(k % 5));
    }
  }
  g.FinishAssign();
  return g;
}

}  // namespace bench
}  // namespace longtail

#endif  // LONGTAIL_BENCH_SYNTHETIC_WALK_GRAPH_H_
