// Table 6 reproduction: the (simulated) user study — Preference, Novelty,
// Serendipity and overall Score of top-10 recommendations from AC2, DPPR,
// PureSVD and LDA, averaged over 50 evaluators (DESIGN.md §3 documents the
// human-evaluator substitution).
//
// Paper rows:            Pref  Nov   Ser   Score
//   AC2                  4.32  0.98  4.78  4.41
//   DPPR                 3.12  0.89  3.95  3.65
//   PureSVD              4.34  0.64  2.12  4.25
//   LDA                  4.12  0.66  2.15  4.22
#include "bench/bench_common.h"
#include "eval/user_study.h"

namespace longtail {
namespace {

void Run(const bench::BenchFlags& flags) {
  const SyntheticData corpus = bench::MakeMovieLensCorpus(flags);
  LT_CHECK(!corpus.dataset.item_genres.empty())
      << "the user study needs generator ground truth; drop --ratings_file";
  bench::PrintCorpusHeader("MovieLens-like", corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(corpus.dataset, flags.Suite(corpus.dataset));

  UserStudyOptions study;
  study.num_evaluators = 50;
  study.k = flags.k;
  std::printf("# %d simulated evaluators, %d recommendations each\n\n",
              study.num_evaluators, study.k);

  std::printf("%10s %12s %10s %13s %8s\n", "algorithm", "Preference",
              "Novelty", "Serendipity", "Score");
  for (const char* name : {"AC2", "DPPR", "PureSVD", "LDA"}) {
    const Recommender* alg = suite.Find(name);
    LT_CHECK(alg != nullptr) << name;
    auto report = RunUserStudy(*alg, corpus.dataset, study);
    LT_CHECK(report.ok()) << report.status().ToString();
    std::printf("%10s %12.2f %10.2f %13.2f %8.2f\n", name,
                report->preference, report->novelty, report->serendipity,
                report->score);
  }
  std::printf(
      "\nExpected shape (paper): AC2 high on every column; DPPR novel but\n"
      "low preference/score; PureSVD/LDA well-liked but not novel, with\n"
      "low serendipity.\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Table 6: comparison on usefulness (simulated study) ==\n\n");
  Run(flags);
  return 0;
}
