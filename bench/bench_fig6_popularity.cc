// Figure 6 reproduction: Popularity@N — the average rating-count of the
// item recommended at each list position N (1..10), per algorithm, on the
// Douban-like (6a) and MovieLens-like (6b) corpora.
//
// Expected shape (§5.2.2): the graph methods and DPPR recommend
// consistently niche items; LDA and PureSVD put popular items on top, so
// their curves start high and fall with N.
#include "bench/bench_common.h"

namespace longtail {
namespace {

void RunOne(const char* name, const SyntheticData& corpus,
            const bench::BenchFlags& flags, bool douban_like) {
  bench::PrintCorpusHeader(name, corpus.dataset);
  AlgorithmSuite suite = bench::FitSuiteOrDie(corpus.dataset, flags.Suite(corpus.dataset, douban_like));
  const std::vector<UserId> users =
      SampleTestUsers(corpus.dataset, flags.users, 10, 2000);
  std::printf("# %zu test users, top-%d lists\n", users.size(), flags.k);

  std::vector<TopNReport> reports;
  for (const auto& alg : suite.algorithms) {
    auto report = EvaluateTopN(*alg, corpus.dataset, users, flags.k,
                               &corpus.ontology, flags.threads);
    LT_CHECK(report.ok()) << alg->name() << ": "
                          << report.status().ToString();
    reports.push_back(std::move(report).value());
  }

  std::printf("\nPopularity@N on %s\n", name);
  std::printf("%4s", "N");
  for (const auto& r : reports) std::printf(" %8s", r.algorithm.c_str());
  std::printf("\n");
  for (int n = 1; n <= flags.k; ++n) {
    std::printf("%4d", n);
    for (const auto& r : reports) {
      std::printf(" %8.1f", r.popularity_at[n - 1]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace longtail

int main(int argc, char** argv) {
  using namespace longtail;
  using namespace longtail::bench;
  BenchFlags flags = ParseFlagsOrDie(argc, argv);
  std::printf("== Figure 6: Popularity at position N ==\n\n");
  const SyntheticData db = MakeDoubanCorpus(flags);
  RunOne("Douban-like (Fig. 6a)", db, flags, /*douban_like=*/true);
  const SyntheticData ml = MakeMovieLensCorpus(flags);
  RunOne("MovieLens-like (Fig. 6b)", ml, flags, /*douban_like=*/false);
  return 0;
}
