// AC — the entropy-biased Absorbing Cost recommenders (§4.2, Eq. 8–9).
//
// The walk pays a cost per transition instead of a unit step: jumping from
// an item node to a user node costs that user's entropy E(u) (ratings from
// taste-specific users are more informative, so reaching them is cheap);
// jumping from a user node to an item node costs a constant C. Two entropy
// sources are provided:
//   * AC1 — item-based entropy over the user's rating distribution (Eq. 10);
//   * AC2 — topic-based entropy over the user's LDA topic mixture (Eq. 11),
//            which is robust to prolific-but-narrow raters.
#ifndef LONGTAIL_CORE_ABSORBING_COST_H_
#define LONGTAIL_CORE_ABSORBING_COST_H_

#include <optional>

#include "core/absorbing_time.h"
#include "topics/lda.h"

namespace longtail {

/// Which user-entropy definition drives the transition costs.
enum class EntropySource {
  kItemBased,   // AC1, Eq. 10
  kTopicBased,  // AC2, Eq. 11 (requires LDA training during Fit)
};

struct AbsorbingCostOptions {
  GraphWalkOptions walk;
  /// C: the constant cost of a user→item jump (Eq. 9 tuning parameter).
  /// <= 0 selects the paper's default — "the mean cost of jumping from V2
  /// to V1", i.e. the mean user entropy — so the entropy term acts as a
  /// relative discriminator on top of hop counts rather than overwhelming
  /// them.
  double user_jump_cost = 0.0;
  /// LDA configuration for the topic-based variant.
  LdaOptions lda;
};

/// Absorbing-cost recommender: rank items by smallest AC(S_q | item).
/// Inherits the seed/absorbing structure of AT and overrides the costs.
class AbsorbingCostRecommender : public AbsorbingTimeRecommender {
 public:
  AbsorbingCostRecommender(EntropySource source,
                           AbsorbingCostOptions options = {})
      : AbsorbingTimeRecommender(options.walk),
        source_(source),
        cost_options_(options) {}

  std::string name() const override {
    return source_ == EntropySource::kItemBased ? "AC1" : "AC2";
  }

  /// Per-user entropies computed during Fit (size num_users).
  const std::vector<double>& user_entropy() const { return user_entropy_; }

  /// The resolved C (auto-computed mean entropy unless overridden).
  double resolved_user_jump_cost() const { return resolved_jump_cost_; }

  /// The LDA model trained for AC2 (nullopt for AC1). Exposed so harnesses
  /// can reuse it for the LDA baseline without training twice.
  const std::optional<LdaModel>& lda_model() const { return lda_model_; }

 protected:
  Status FitImpl() override;
  void NodeCosts(const Subgraph& sub,
                 std::vector<double>* costs) const override;

  /// Checkpointing: the entropies + resolved C ride in an extra chunk, and
  /// AC2 adds its LDA tables, so a loaded instance prices walks (and can
  /// hand the LDA baseline its model) exactly like the fitted one.
  Status SaveExtraChunks(CheckpointWriter& writer) const override;
  Status LoadExtraChunk(ChunkReader& chunk, bool* handled) override;
  Status FinishLoad(const Dataset& data) override;

 private:
  EntropySource source_;
  AbsorbingCostOptions cost_options_;
  double resolved_jump_cost_ = 1.0;
  std::vector<double> user_entropy_;
  std::optional<LdaModel> lda_model_;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_ABSORBING_COST_H_
