#include "core/hitting_time.h"

#include "util/logging.h"

namespace longtail {

Result<std::vector<NodeId>> HittingTimeRecommender::SeedNodes(
    UserId user) const {
  if (data_->UserDegree(user) == 0) {
    return Status::FailedPrecondition("user " + std::to_string(user) +
                                      " has no ratings");
  }
  return std::vector<NodeId>{graph_.UserNode(user)};
}

std::vector<bool> HittingTimeRecommender::AbsorbingFlags(const Subgraph& sub,
                                                         UserId user) const {
  std::vector<bool> absorbing(sub.graph.num_nodes(), false);
  const NodeId local = sub.LocalUserNode(user);
  LT_CHECK_GE(local, 0) << "query user must be in its own subgraph";
  absorbing[local] = true;
  return absorbing;
}

}  // namespace longtail
