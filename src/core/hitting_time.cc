#include "core/hitting_time.h"

#include "util/logging.h"

namespace longtail {

Status HittingTimeRecommender::SeedNodes(UserId user,
                                         std::vector<NodeId>* seeds) const {
  if (data_->UserDegree(user) == 0) {
    return Status::FailedPrecondition("user " + std::to_string(user) +
                                      " has no ratings");
  }
  seeds->push_back(graph_.UserNode(user));
  return Status::OK();
}

void HittingTimeRecommender::AbsorbingFlags(
    const Subgraph& sub, UserId user, std::vector<bool>* absorbing) const {
  absorbing->assign(sub.graph.num_nodes(), false);
  const NodeId local = sub.LocalUserNode(user);
  LT_CHECK_GE(local, 0) << "query user must be in its own subgraph";
  (*absorbing)[local] = true;
}

}  // namespace longtail
