// The recommender interface shared by the paper's algorithms (HT, AT, AC1,
// AC2) and every baseline (LDA, PureSVD, PPR, DPPR, popularity, item-kNN).
//
// Two query shapes are needed by the paper's evaluation:
//  * RecommendTopK — top-k unrated items for a user (Figures 6, Tables 2-6).
//  * ScoreItems    — scores for an explicit candidate list (the Recall@N
//                    protocol of §5.2.1 ranks 1 test item among 1000 decoys).
// Scores are "higher is better"; graph methods return negated times/costs.
#ifndef LONGTAIL_CORE_RECOMMENDER_H_
#define LONGTAIL_CORE_RECOMMENDER_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

class CheckpointReader;
class CheckpointWriter;
class ChunkReader;
class ChunkWriter;
class ServingPool;
class SubgraphCache;

/// Chunk tags of the built-in model-checkpoint format (the chunked
/// container of data/serialization.h; files are written/read through
/// serving/model_registry.h). Tag 0 is reserved for the container's end
/// marker. Loaders skip tags they do not know — forward compatibility —
/// so a tag, once shipped, must never be repurposed; new chunk kinds take
/// fresh values.
enum CheckpointChunkTag : uint32_t {
  kChunkModelHeader = 1,       // algorithm name + fitted dataset shape
  kChunkGraphWalkOptions = 2,  // GraphWalkOptions + SolverOptions
  kChunkBipartiteGraph = 3,    // CSR adjacency of the fitted rating graph
  kChunkUserEntropy = 4,       // AC1/AC2 per-user entropies + resolved C
  kChunkLdaModel = 5,          // θ and φ tables (AC2, LDA baseline)
  kChunkSvdFactors = 6,        // PureSVD item-factor matrix
  kChunkKnnNeighbors = 7,      // ItemKNN per-item neighbour lists
  kChunkKatzOptions = 8,       // Katz attenuation/truncation parameters
  kChunkPageRankOptions = 9,   // (D)PPR damping/restart configuration
};

/// Version written for every built-in chunk. A loader rejects a *known*
/// tag carrying a higher version (it cannot interpret the payload), while
/// unknown tags are skipped entirely; bump this only with a loader that
/// still accepts every older version.
inline constexpr uint32_t kCheckpointChunkVersion = 1;

/// Score assigned to candidates that a recommender cannot reach or rank
/// (e.g. items outside the BFS subgraph). Ranks below every real score.
inline constexpr double kUnreachableScore = -1e300;

/// Options for the batch query engine.
struct BatchOptions {
  /// Worker threads: 0 = hardware concurrency, 1 = the calling thread only.
  size_t num_threads = 0;
  /// Pool the batch fans out on; nullptr = the process-lifetime
  /// ServingPool::Global(). Batches never spawn threads of their own.
  ServingPool* pool = nullptr;
  /// Optional shared cache of extracted walk subgraphs. Graph recommenders
  /// consult it per query; results are bit-identical with and without it
  /// (tests/subgraph_cache_test.cc). Other recommenders ignore it. The
  /// cache may be shared across recommenders and concurrent batches.
  SubgraphCache* subgraph_cache = nullptr;
  /// Fused multi-query sweep width ceiling for graph recommenders: queries
  /// whose seed sets are identical share one subgraph and sweep as K
  /// interleaved lanes of a single CSR pass (see docs/KERNELS.md). 0 =
  /// probe the cap from the machine's cache geometry
  /// (WalkKernel::FusedWidthCap), 1 = disable grouping entirely (the
  /// pre-fusion per-query dispatch), otherwise an explicit ceiling.
  /// Results are bit-identical at every setting; other recommenders
  /// ignore it.
  int32_t max_fused_width = 0;
  /// Optional observer invoked once per dispatched fused sweep with its
  /// width (1 for queries that found no partner). May be called
  /// concurrently from pool workers; the ServingEngine points this at its
  /// longtail_engine_fused_width histogram. Not called on the
  /// max_fused_width == 1 fallback path or by non-graph recommenders.
  const std::function<void(int32_t width)>* fused_width_observer = nullptr;
};

/// One user's request in a batch: top-k recommendations, scores for an
/// explicit candidate list, or both. Graph recommenders serve both halves
/// from a single subgraph walk instead of recomputing it per call.
struct UserQuery {
  UserId user = 0;
  /// > 0 → fill UserQueryResult::top_k with up to this many items.
  int top_k = 0;
  /// Non-empty → fill UserQueryResult::scores, aligned with this span. The
  /// referenced storage must outlive the QueryBatch call.
  std::span<const ItemId> score_items;
};

/// Per-query outcome. A failed query (cold-start user, bad candidate id)
/// carries its error here without failing the rest of the batch.
struct UserQueryResult {
  Status status;
  std::vector<ScoredItem> top_k;
  std::vector<double> scores;
};

/// Abstract recommender. Implementations are immutable after Fit and safe
/// for concurrent queries from multiple threads.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Short identifier used in reports ("AC2", "PureSVD", ...).
  virtual std::string name() const = 0;

  /// Trains on the dataset. Must be called exactly once before querying.
  /// The dataset must outlive the recommender.
  virtual Status Fit(const Dataset& data) = 0;

  /// Serializes the fitted model as checkpoint chunks (the container magic,
  /// header chunk and end marker are the registry's job — see
  /// serving/model_registry.h). Implementations may only be called after
  /// Fit. Default: Unimplemented.
  virtual Status SaveModel(CheckpointWriter& writer) const;

  /// Restores a model written by SaveModel into this *unfitted* instance,
  /// consuming the reader's remaining chunks (unknown tags are skipped).
  /// `data` must be the dataset the model was fitted on and must outlive
  /// the recommender, exactly as with Fit; afterwards the object answers
  /// every query bit-identically to the instance that was saved, without
  /// Fit ever running. Default: Unimplemented.
  virtual Status LoadModel(CheckpointReader& reader, const Dataset& data);

  /// The dataset bound by Fit or LoadModel (nullptr before either).
  const Dataset* dataset() const { return data_; }

  /// Returns up to k items not rated by `user`, best first.
  virtual Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                        int k) const = 0;

  /// Returns one score per candidate item (aligned with `items`).
  virtual Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const = 0;

  /// Serves a batch of queries; results align with `queries`. The default
  /// loops over the per-user virtuals (parallelised across the batch when
  /// `options.num_threads != 1`, which the thread-safe-query contract
  /// permits). GraphRecommenderBase overrides this with a fused walk per
  /// query and per-worker reusable workspaces.
  virtual std::vector<UserQueryResult> QueryBatch(
      std::span<const UserQuery> queries,
      const BatchOptions& options = {}) const;

  /// Batch RecommendTopK: top-k lists for many users, aligned with `users`.
  std::vector<Result<std::vector<ScoredItem>>> RecommendBatch(
      std::span<const UserId> users, int k,
      const BatchOptions& options = {}) const;

  /// Batch ScoreItems: `items_per_user[i]` is scored for `users[i]`.
  std::vector<Result<std::vector<double>>> ScoreBatch(
      std::span<const UserId> users,
      std::span<const std::vector<ItemId>> items_per_user,
      const BatchOptions& options = {}) const;

 protected:
  /// The training/serving dataset, set by Fit and LoadModel
  /// implementations. Shared here because every recommender needs it for
  /// rated-item filtering and query validation.
  const Dataset* data_ = nullptr;
};

/// Sorts candidates by (score desc, item id asc) and keeps the best k.
std::vector<ScoredItem> TopKScoredItems(std::vector<ScoredItem> candidates,
                                        int k);

/// Validates that `user` is in range and `data` is fitted; shared by
/// implementations.
Status CheckQueryUser(const Dataset* data, UserId user);

}  // namespace longtail

#endif  // LONGTAIL_CORE_RECOMMENDER_H_
