// The recommender interface shared by the paper's algorithms (HT, AT, AC1,
// AC2) and every baseline (LDA, PureSVD, PPR, DPPR, popularity, item-kNN).
//
// Two query shapes are needed by the paper's evaluation:
//  * RecommendTopK — top-k unrated items for a user (Figures 6, Tables 2-6).
//  * ScoreItems    — scores for an explicit candidate list (the Recall@N
//                    protocol of §5.2.1 ranks 1 test item among 1000 decoys).
// Scores are "higher is better"; graph methods return negated times/costs.
#ifndef LONGTAIL_CORE_RECOMMENDER_H_
#define LONGTAIL_CORE_RECOMMENDER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

/// Score assigned to candidates that a recommender cannot reach or rank
/// (e.g. items outside the BFS subgraph). Ranks below every real score.
inline constexpr double kUnreachableScore = -1e300;

/// Abstract recommender. Implementations are immutable after Fit and safe
/// for concurrent queries from multiple threads.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Short identifier used in reports ("AC2", "PureSVD", ...).
  virtual std::string name() const = 0;

  /// Trains on the dataset. Must be called exactly once before querying.
  /// The dataset must outlive the recommender.
  virtual Status Fit(const Dataset& data) = 0;

  /// Returns up to k items not rated by `user`, best first.
  virtual Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                        int k) const = 0;

  /// Returns one score per candidate item (aligned with `items`).
  virtual Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const = 0;
};

/// Sorts candidates by (score desc, item id asc) and keeps the best k.
std::vector<ScoredItem> TopKScoredItems(std::vector<ScoredItem> candidates,
                                        int k);

/// Validates that `user` is in range and `data` is fitted; shared by
/// implementations.
Status CheckQueryUser(const Dataset* data, UserId user);

}  // namespace longtail

#endif  // LONGTAIL_CORE_RECOMMENDER_H_
