// AT — the item-based Absorbing Time recommender (§4.1, Problem 4,
// Algorithm 1).
//
// The absorbing set S_q is every item the query user has rated; AT(S_q|j)
// is the expected number of steps for a walker starting at item j to first
// hit S_q (Def. 2–3, Eq. 6). Using the item set instead of the user node
// exploits the higher information content of item-side ratings and improves
// accuracy and diversity (§5.2).
#ifndef LONGTAIL_CORE_ABSORBING_TIME_H_
#define LONGTAIL_CORE_ABSORBING_TIME_H_

#include "core/graph_recommender_base.h"

namespace longtail {

/// Absorbing-time recommender: rank items by smallest AT(S_q | item).
class AbsorbingTimeRecommender : public GraphRecommenderBase {
 public:
  explicit AbsorbingTimeRecommender(GraphWalkOptions options = {})
      : GraphRecommenderBase(options) {}

  std::string name() const override { return "AT"; }

 protected:
  Status SeedNodes(UserId user, std::vector<NodeId>* seeds) const override;
  void AbsorbingFlags(const Subgraph& sub, UserId user,
                      std::vector<bool>* absorbing) const override;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_ABSORBING_TIME_H_
