#include "core/graph_recommender_base.h"

#include <cmath>
#include <limits>

#include "graph/subgraph_cache.h"
#include "util/serving_pool.h"

namespace longtail {

namespace {

/// Workspace pinned to the current thread. Serving-pool workers live for
/// the process, so their workspaces stay warm across batches — the
/// per-worker pinning the serving layer is built around. Ad-hoc
/// single-user RecommendTopK/ScoreItems callers get the same
/// zero-allocation steady state on their own threads. Deliberate
/// trade-off: the buffers (O(global nodes)) stay resident for the thread's
/// lifetime and can outlive the recommender that sized them.
WalkWorkspace& LocalWorkspace() {
  static thread_local WalkWorkspace workspace;
  return workspace;
}

}  // namespace

Status GraphRecommenderBase::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  data_ = &data;
  graph_ = BipartiteGraph::FromDataset(data, options_.weighted_edges);
  return FitImpl();
}

void GraphRecommenderBase::NodeCosts(const Subgraph& sub,
                                     std::vector<double>* costs) const {
  costs->assign(sub.graph.num_nodes(), 1.0);
}

Status GraphRecommenderBase::ComputeWalk(UserId user, WalkWorkspace* ws,
                                         SubgraphCache* cache) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  ws->seeds.clear();
  LT_RETURN_IF_ERROR(SeedNodes(user, &ws->seeds));
  if (ws->seeds.empty()) {
    return Status::FailedPrecondition(
        "no seed nodes for user " + std::to_string(user) +
        " (cold-start users cannot be served by graph recommenders)");
  }
  SubgraphOptions sub_options;
  sub_options.max_items = options_.max_subgraph_items;
  // Subgraph extraction is a pure function of (graph, seeds, µ), so a
  // cached extraction — possibly inserted by a sibling recommender fitted
  // on the same dataset — is adopted verbatim; the walk below is
  // bit-identical either way.
  bool adopted = false;
  uint64_t key = 0;
  if (cache != nullptr) {
    key = SubgraphCache::Key(graph_.fingerprint(), ws->seeds, sub_options);
    adopted = cache->Lookup(key, graph_, ws->seeds, sub_options, ws);
  }
  if (!adopted) {
    ExtractSubgraphInto(graph_, ws->seeds, sub_options, ws);
    if (cache != nullptr) {
      cache->Insert(key, graph_.fingerprint(), ws->seeds, sub_options, *ws);
    }
  }
  const Subgraph& sub = ws->sub();
  AbsorbingFlags(sub, user, &ws->absorbing);
  NodeCosts(sub, &ws->node_costs);
  if (options_.exact) {
    LT_RETURN_IF_ERROR(AbsorbingValueExactInto(sub.graph, ws->absorbing,
                                               ws->node_costs,
                                               options_.solver, &ws->values,
                                               &ws->solver));
  } else {
    AbsorbingValueTruncated(sub.graph, ws->absorbing, ws->node_costs,
                            options_.iterations, &ws->values,
                            &ws->dp_scratch);
  }
  return Status::OK();
}

Result<std::vector<ScoredItem>> GraphRecommenderBase::TopKFromWalk(
    UserId user, int k, const WalkWorkspace& ws) const {
  const Subgraph& sub = ws.sub();
  const int32_t num_local_users = static_cast<int32_t>(sub.users.size());
  std::vector<ScoredItem> candidates;
  candidates.reserve(sub.items.size());
  for (size_t li = 0; li < sub.items.size(); ++li) {
    const ItemId item = sub.items[li];
    if (data_->HasRating(user, item)) continue;
    const double value = ws.values[num_local_users + static_cast<int32_t>(li)];
    if (!std::isfinite(value)) continue;  // Unreachable from absorbing set.
    candidates.push_back({item, -value});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> GraphRecommenderBase::ScoresFromWalk(
    std::span<const ItemId> items, const WalkWorkspace& ws) const {
  const Subgraph& sub = ws.sub();
  std::vector<double> scores(items.size(), kUnreachableScore);
  for (size_t k = 0; k < items.size(); ++k) {
    const ItemId item = items[k];
    if (item < 0 || item >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    const NodeId local = sub.LocalItemNode(item);
    if (local < 0) continue;  // Outside the subgraph: unreachable.
    const double value = ws.values[local];
    if (std::isfinite(value)) scores[k] = -value;
  }
  return scores;
}

Result<std::vector<ScoredItem>> GraphRecommenderBase::RecommendTopK(
    UserId user, int k) const {
  WalkWorkspace& ws = LocalWorkspace();
  LT_RETURN_IF_ERROR(ComputeWalk(user, &ws, /*cache=*/nullptr));
  return TopKFromWalk(user, k, ws);
}

Result<std::vector<double>> GraphRecommenderBase::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  WalkWorkspace& ws = LocalWorkspace();
  LT_RETURN_IF_ERROR(ComputeWalk(user, &ws, /*cache=*/nullptr));
  return ScoresFromWalk(items, ws);
}

UserQueryResult GraphRecommenderBase::RunQuery(const UserQuery& query,
                                               WalkWorkspace* ws,
                                               SubgraphCache* cache) const {
  UserQueryResult out;
  // An empty query requests nothing: skip the walk entirely and return OK,
  // matching the default Recommender::QueryBatch (which never invokes the
  // per-user virtuals for it).
  if (query.top_k <= 0 && query.score_items.empty()) return out;
  out.status = ComputeWalk(query.user, ws, cache);
  if (!out.status.ok()) return out;
  if (query.top_k > 0) {
    auto top = TopKFromWalk(query.user, query.top_k, *ws);
    if (!top.ok()) {
      out.status = top.status();
      return out;
    }
    out.top_k = std::move(top).value();
  }
  if (!query.score_items.empty()) {
    auto scores = ScoresFromWalk(query.score_items, *ws);
    if (!scores.ok()) {
      out.status = scores.status();
      return out;
    }
    out.scores = std::move(scores).value();
  }
  return out;
}

std::vector<UserQueryResult> GraphRecommenderBase::QueryBatch(
    std::span<const UserQuery> queries, const BatchOptions& options) const {
  std::vector<UserQueryResult> results(queries.size());
  if (queries.empty()) return results;
  ServingPool& pool =
      options.pool != nullptr ? *options.pool : ServingPool::Global();
  // Queries are claimed one at a time (grain 1) so skewed subgraph sizes
  // stay balanced; every participating thread — pool workers and the
  // caller — serves them from its own pinned workspace.
  pool.ParallelFor(
      queries.size(),
      [&](size_t i) {
        results[i] =
            RunQuery(queries[i], &LocalWorkspace(), options.subgraph_cache);
      },
      options.num_threads, /*grain=*/1);
  return results;
}

}  // namespace longtail
