#include "core/graph_recommender_base.h"

#include <cmath>
#include <limits>

namespace longtail {

Status GraphRecommenderBase::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  data_ = &data;
  graph_ = BipartiteGraph::FromDataset(data, options_.weighted_edges);
  return FitImpl();
}

std::vector<double> GraphRecommenderBase::NodeCosts(const Subgraph& sub) const {
  return std::vector<double>(sub.graph.num_nodes(), 1.0);
}

Result<GraphRecommenderBase::WalkValues> GraphRecommenderBase::ComputeWalk(
    UserId user) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  LT_ASSIGN_OR_RETURN(std::vector<NodeId> seeds, SeedNodes(user));
  if (seeds.empty()) {
    return Status::FailedPrecondition(
        "no seed nodes for user " + std::to_string(user) +
        " (cold-start users cannot be served by graph recommenders)");
  }
  WalkValues out;
  SubgraphOptions sub_options;
  sub_options.max_items = options_.max_subgraph_items;
  out.sub = ExtractSubgraph(graph_, seeds, sub_options);
  const std::vector<bool> absorbing = AbsorbingFlags(out.sub, user);
  const std::vector<double> costs = NodeCosts(out.sub);
  if (options_.exact) {
    LT_ASSIGN_OR_RETURN(out.values, AbsorbingValueExact(out.sub.graph,
                                                        absorbing, costs,
                                                        options_.solver));
  } else {
    out.values = AbsorbingValueTruncated(out.sub.graph, absorbing, costs,
                                         options_.iterations);
  }
  return out;
}

Result<std::vector<ScoredItem>> GraphRecommenderBase::RecommendTopK(
    UserId user, int k) const {
  LT_ASSIGN_OR_RETURN(WalkValues walk, ComputeWalk(user));
  const int32_t num_local_users =
      static_cast<int32_t>(walk.sub.users.size());
  std::vector<ScoredItem> candidates;
  candidates.reserve(walk.sub.items.size());
  for (size_t li = 0; li < walk.sub.items.size(); ++li) {
    const ItemId item = walk.sub.items[li];
    if (data_->HasRating(user, item)) continue;
    const double value = walk.values[num_local_users + static_cast<int32_t>(li)];
    if (!std::isfinite(value)) continue;  // Unreachable from absorbing set.
    candidates.push_back({item, -value});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> GraphRecommenderBase::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_ASSIGN_OR_RETURN(WalkValues walk, ComputeWalk(user));
  std::vector<double> scores(items.size(), kUnreachableScore);
  for (size_t k = 0; k < items.size(); ++k) {
    const ItemId item = items[k];
    if (item < 0 || item >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    const NodeId local = walk.sub.LocalItemNode(item);
    if (local < 0) continue;  // Outside the subgraph: unreachable.
    const double value = walk.values[local];
    if (std::isfinite(value)) scores[k] = -value;
  }
  return scores;
}

}  // namespace longtail
