#include "core/graph_recommender_base.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "data/serialization.h"
#include "graph/subgraph_cache.h"
#include "util/serving_pool.h"

namespace longtail {

namespace {

/// Workspace pinned to the current thread. Serving-pool workers live for
/// the process, so their workspaces stay warm across batches — the
/// per-worker pinning the serving layer is built around. Ad-hoc
/// single-user RecommendTopK/ScoreItems callers get the same
/// zero-allocation steady state on their own threads. Deliberate
/// trade-off: the buffers (O(global nodes)) stay resident for the thread's
/// lifetime and can outlive the recommender that sized them.
WalkWorkspace& LocalWorkspace() {
  static thread_local WalkWorkspace workspace;
  return workspace;
}

}  // namespace

Status GraphRecommenderBase::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  data_ = &data;
  graph_ = BipartiteGraph::FromDataset(data, options_.weighted_edges);
  return FitImpl();
}

void GraphRecommenderBase::NodeCosts(const Subgraph& sub,
                                     std::vector<double>* costs) const {
  costs->assign(sub.graph.num_nodes(), 1.0);
}

Status GraphRecommenderBase::SaveExtraChunks(CheckpointWriter& writer) const {
  (void)writer;
  return Status::OK();
}

Status GraphRecommenderBase::LoadExtraChunk(ChunkReader& chunk,
                                            bool* handled) {
  (void)chunk;
  *handled = false;
  return Status::OK();
}

Status GraphRecommenderBase::FinishLoad(const Dataset& data) {
  (void)data;
  return Status::OK();
}

Status GraphRecommenderBase::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  ChunkWriter options;
  options.Scalar<int32_t>(options_.iterations);
  options.Scalar<int32_t>(options_.max_subgraph_items);
  options.Scalar<uint8_t>(options_.weighted_edges ? 1 : 0);
  options.Scalar<uint8_t>(options_.exact ? 1 : 0);
  options.Scalar<int32_t>(options_.solver.max_iterations);
  options.Scalar<double>(options_.solver.tolerance);
  LT_RETURN_IF_ERROR(writer.WriteChunk(kChunkGraphWalkOptions,
                                       kCheckpointChunkVersion, options));
  ChunkWriter graph;
  graph_.SaveTo(&graph);
  LT_RETURN_IF_ERROR(
      writer.WriteChunk(kChunkBipartiteGraph, kCheckpointChunkVersion, graph));
  return SaveExtraChunks(writer);
}

Status GraphRecommenderBase::LoadModel(CheckpointReader& reader,
                                       const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged into locals and committed only after the whole stream parses:
  // a failed load must not leave half-restored options behind, or a
  // fallback Fit() would silently train under the checkpoint's
  // configuration instead of the caller's. (Subclass state touched by
  // LoadExtraChunk needs no staging — FitImpl recomputes all of it.)
  bool have_options = false;
  bool have_graph = false;
  GraphWalkOptions loaded_options = options_;
  BipartiteGraph loaded_graph;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    switch (chunk.tag()) {
      case kChunkGraphWalkOptions: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported walk-options chunk version");
        }
        int32_t iterations = 0;
        int32_t max_items = 0;
        uint8_t weighted = 0;
        uint8_t exact = 0;
        LT_RETURN_IF_ERROR(chunk.Scalar(&iterations));
        LT_RETURN_IF_ERROR(chunk.Scalar(&max_items));
        LT_RETURN_IF_ERROR(chunk.Scalar(&weighted));
        LT_RETURN_IF_ERROR(chunk.Scalar(&exact));
        LT_RETURN_IF_ERROR(
            chunk.Scalar(&loaded_options.solver.max_iterations));
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.solver.tolerance));
        loaded_options.iterations = iterations;
        loaded_options.max_subgraph_items = max_items;
        loaded_options.weighted_edges = weighted != 0;
        loaded_options.exact = exact != 0;
        have_options = true;
        break;
      }
      case kChunkBipartiteGraph: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported graph chunk version");
        }
        LT_ASSIGN_OR_RETURN(loaded_graph, BipartiteGraph::LoadFrom(&chunk));
        have_graph = true;
        break;
      }
      default: {
        bool handled = false;
        LT_RETURN_IF_ERROR(LoadExtraChunk(chunk, &handled));
        // Unhandled tags are skipped: newer checkpoints stay loadable.
        break;
      }
    }
  }
  if (!have_options || !have_graph) {
    return Status::IOError(
        "checkpoint is missing the graph walker chunks for " + name());
  }
  // Value validation mirrors what Fit-time construction guarantees: a
  // checksummed-but-hostile file must not bind a walker whose every query
  // silently returns garbage. (max_subgraph_items may be <= 0: uncapped.)
  if (loaded_options.iterations < 1 ||
      loaded_options.solver.max_iterations < 1 ||
      !std::isfinite(loaded_options.solver.tolerance) ||
      loaded_options.solver.tolerance < 0.0) {
    return Status::IOError("checkpoint walk options are invalid");
  }
  if (loaded_graph.num_users() != data.num_users() ||
      loaded_graph.num_items() != data.num_items()) {
    return Status::InvalidArgument(
        "checkpoint graph shape does not match the dataset");
  }
  // Subclass validation runs before the commit below: if it fails, the
  // object stays unfitted (data_ null, caller's options intact) and the
  // harness's fallback Fit() still works.
  LT_RETURN_IF_ERROR(FinishLoad(data));
  options_ = loaded_options;
  graph_ = std::move(loaded_graph);
  data_ = &data;
  return Status::OK();
}

Status GraphRecommenderBase::ComputeWalk(UserId user, WalkWorkspace* ws,
                                         SubgraphCache* cache) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  ws->seeds.clear();
  LT_RETURN_IF_ERROR(SeedNodes(user, &ws->seeds));
  if (ws->seeds.empty()) {
    return Status::FailedPrecondition(
        "no seed nodes for user " + std::to_string(user) +
        " (cold-start users cannot be served by graph recommenders)");
  }
  SubgraphOptions sub_options;
  sub_options.max_items = options_.max_subgraph_items;
  // Subgraph extraction is a pure function of (graph, seeds, µ), so a
  // cached extraction — possibly inserted by a sibling recommender fitted
  // on the same dataset — is adopted verbatim; the walk below is
  // bit-identical either way. The cache's single-flight front door also
  // coalesces concurrent identical misses into one extraction.
  if (cache != nullptr) {
    cache->GetOrExtract(graph_, ws->seeds, sub_options, ws);
  } else {
    ExtractSubgraphInto(graph_, ws->seeds, sub_options, ws);
  }
  const Subgraph& sub = ws->sub();
  AbsorbingFlags(sub, user, &ws->absorbing);
  NodeCosts(sub, &ws->node_costs);
  if (options_.exact) {
    LT_RETURN_IF_ERROR(AbsorbingValueExactInto(sub.graph, ws->absorbing,
                                               ws->node_costs,
                                               options_.solver, &ws->values,
                                               &ws->solver));
  } else {
    // Ranking sweep: TopKFromWalk/ScoresFromWalk consume item-side values
    // only, so the kernel runs the alternating half of the DP those values
    // depend on (bit-identical item values, half the edge work). User rows
    // of ws->values hold intermediates and must not be read.
    if (sub.plan != nullptr) {
      // Warm path: the cache payload carries the plan built at admission
      // (transitions + sweep-plan selection + layout binding). Adoption is
      // two pointer stores — the query's only remaining per-node work is
      // the coefficient compile below. Bit-identical to the cold branch:
      // the admission build ran the same decision procedure on the same
      // graph and layout.
      ws->kernel.AdoptPlan(sub.plan);
    } else {
      // Cold path: fresh extraction — rebuild the kernel's own plan. A
      // cache-borne layout (sub.layout) would make it sweep the
      // pre-permuted CSR, but fresh extractions have none.
      ws->kernel.BuildTransitions(sub.graph,
                                  WalkKernel::Normalization::kRowStochastic,
                                  sub.layout);
    }
    ws->kernel.CompileAbsorbingSweep(ws->absorbing, ws->node_costs);
    ws->kernel.SweepTruncatedItemValues(options_.iterations, &ws->values);
  }
  return Status::OK();
}

Result<std::vector<ScoredItem>> GraphRecommenderBase::TopKFromWalk(
    UserId user, int k, const WalkWorkspace& ws) const {
  const Subgraph& sub = ws.sub();
  const int32_t num_local_users = static_cast<int32_t>(sub.users.size());
  std::vector<ScoredItem> candidates;
  candidates.reserve(sub.items.size());
  for (size_t li = 0; li < sub.items.size(); ++li) {
    const ItemId item = sub.items[li];
    if (data_->HasRating(user, item)) continue;
    const double value = ws.values[num_local_users + static_cast<int32_t>(li)];
    if (!std::isfinite(value)) continue;  // Unreachable from absorbing set.
    candidates.push_back({item, -value});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> GraphRecommenderBase::ScoresFromWalk(
    std::span<const ItemId> items, const WalkWorkspace& ws) const {
  const Subgraph& sub = ws.sub();
  std::vector<double> scores(items.size(), kUnreachableScore);
  for (size_t k = 0; k < items.size(); ++k) {
    const ItemId item = items[k];
    if (item < 0 || item >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    const NodeId local = sub.LocalItemNode(item);
    if (local < 0) continue;  // Outside the subgraph: unreachable.
    const double value = ws.values[local];
    if (std::isfinite(value)) scores[k] = -value;
  }
  return scores;
}

Result<std::vector<ScoredItem>> GraphRecommenderBase::RecommendTopK(
    UserId user, int k) const {
  WalkWorkspace& ws = LocalWorkspace();
  LT_RETURN_IF_ERROR(ComputeWalk(user, &ws, /*cache=*/nullptr));
  return TopKFromWalk(user, k, ws);
}

Result<std::vector<double>> GraphRecommenderBase::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  WalkWorkspace& ws = LocalWorkspace();
  LT_RETURN_IF_ERROR(ComputeWalk(user, &ws, /*cache=*/nullptr));
  return ScoresFromWalk(items, ws);
}

void GraphRecommenderBase::ServeFromWalk(const UserQuery& query,
                                         const WalkWorkspace& ws,
                                         UserQueryResult* out) const {
  if (query.top_k > 0) {
    auto top = TopKFromWalk(query.user, query.top_k, ws);
    if (!top.ok()) {
      out->status = top.status();
      return;
    }
    out->top_k = std::move(top).value();
  }
  if (!query.score_items.empty()) {
    auto scores = ScoresFromWalk(query.score_items, ws);
    if (!scores.ok()) {
      out->status = scores.status();
      return;
    }
    out->scores = std::move(scores).value();
  }
}

UserQueryResult GraphRecommenderBase::RunQuery(const UserQuery& query,
                                               WalkWorkspace* ws,
                                               SubgraphCache* cache) const {
  UserQueryResult out;
  // An empty query requests nothing: skip the walk entirely and return OK,
  // matching the default Recommender::QueryBatch (which never invokes the
  // per-user virtuals for it).
  if (query.top_k <= 0 && query.score_items.empty()) return out;
  out.status = ComputeWalk(query.user, ws, cache);
  if (!out.status.ok()) return out;
  ServeFromWalk(query, *ws, &out);
  return out;
}

void GraphRecommenderBase::RunFusedGroup(std::span<const UserQuery> queries,
                                         const size_t* members, int32_t count,
                                         const BatchOptions& options,
                                         WalkWorkspace* ws,
                                         UserQueryResult* results) const {
  // Resolve the shared subgraph once from the first member's seeds: all
  // members carry the same exact seed set, and extraction is a pure
  // function of (graph, seeds, µ), so every member's sequential RunQuery
  // would have produced this same subgraph (and, through the cache, the
  // same payload).
  ws->seeds.clear();
  const Status st = SeedNodes(queries[members[0]].user, &ws->seeds);
  if (!st.ok() || ws->seeds.empty()) {
    // Unreachable: phase A validated every member; fail them all rather
    // than serve garbage if a SeedNodes override is non-deterministic.
    for (int32_t q = 0; q < count; ++q) {
      results[members[q]].status =
          st.ok() ? Status::FailedPrecondition("seed set vanished") : st;
    }
    return;
  }
  SubgraphOptions sub_options;
  sub_options.max_items = options_.max_subgraph_items;
  if (options.subgraph_cache != nullptr) {
    options.subgraph_cache->GetOrExtract(graph_, ws->seeds, sub_options, ws);
  } else {
    ExtractSubgraphInto(graph_, ws->seeds, sub_options, ws);
  }
  const Subgraph& sub = ws->sub();
  NodeCosts(sub, &ws->node_costs);
  if (sub.plan != nullptr) {
    ws->kernel.AdoptPlan(sub.plan);
  } else {
    ws->kernel.BuildTransitions(
        sub.graph, WalkKernel::Normalization::kRowStochastic, sub.layout);
  }
  const int32_t n = sub.graph.num_nodes();
  int32_t cap = WalkKernel::FusedWidthCap(n);
  if (options.max_fused_width > 0) {
    cap = std::min(cap, options.max_fused_width);
  }
  for (int32_t begin = 0; begin < count; begin += cap) {
    const int32_t width = std::min(cap, count - begin);
    if (options.fused_width_observer != nullptr) {
      (*options.fused_width_observer)(width);
    }
    if (width == 1) {
      // A lone lane runs the sequential sweep — same result (a width-1
      // batch is the sequential pass), no strided block to de-interleave.
      const UserQuery& query = queries[members[begin]];
      AbsorbingFlags(sub, query.user, &ws->absorbing);
      ws->kernel.CompileAbsorbingSweep(ws->absorbing, ws->node_costs);
      ws->kernel.SweepTruncatedItemValues(options_.iterations, &ws->values);
      ServeFromWalk(query, *ws, &results[members[begin]]);
      continue;
    }
    ws->batch_absorbing.resize(width);
    for (int32_t q = 0; q < width; ++q) {
      AbsorbingFlags(sub, queries[members[begin + q]].user,
                     &ws->batch_absorbing[q]);
    }
    ws->kernel.CompileAbsorbingSweepBatch(ws->batch_absorbing,
                                          ws->node_costs);
    ws->kernel.SweepTruncatedItemValuesBatch(options_.iterations,
                                             &ws->values_block);
    const double* block = ws->values_block.data();
    for (int32_t q = 0; q < width; ++q) {
      // De-interleave lane q into the workspace value vector TopKFromWalk /
      // ScoresFromWalk read — an exact copy, so serving is untouched by
      // fusion.
      ws->values.resize(n);
      for (int32_t v = 0; v < n; ++v) {
        ws->values[v] = block[static_cast<size_t>(v) * width + q];
      }
      ServeFromWalk(queries[members[begin + q]], *ws,
                    &results[members[begin + q]]);
    }
  }
}

std::vector<UserQueryResult> GraphRecommenderBase::QueryBatch(
    std::span<const UserQuery> queries, const BatchOptions& options) const {
  std::vector<UserQueryResult> results(queries.size());
  if (queries.empty()) return results;
  ServingPool& pool =
      options.pool != nullptr ? *options.pool : ServingPool::Global();
  if (options_.exact || options.max_fused_width == 1) {
    // The exact solver has no fused path, and width 1 disables grouping:
    // dispatch per query, claimed one at a time (grain 1) so skewed
    // subgraph sizes stay balanced, each thread on its pinned workspace.
    pool.ParallelFor(
        queries.size(),
        [&](size_t i) {
          results[i] =
              RunQuery(queries[i], &LocalWorkspace(), options.subgraph_cache);
        },
        options.num_threads, /*grain=*/1);
    return results;
  }
  // Phase A (sequential, O(Σ seed set) — cheap next to the walks): compute
  // every query's seed set and group queries whose sets are identical.
  // Validation failures resolve here with statuses identical to the
  // per-query path's; empty queries keep their default OK result.
  std::map<std::vector<NodeId>, std::vector<size_t>> by_seeds;
  {
    std::vector<NodeId> seeds;
    for (size_t i = 0; i < queries.size(); ++i) {
      const UserQuery& q = queries[i];
      if (q.top_k <= 0 && q.score_items.empty()) continue;
      Status st = CheckQueryUser(data_, q.user);
      if (st.ok()) {
        seeds.clear();
        st = SeedNodes(q.user, &seeds);
        if (st.ok() && seeds.empty()) {
          st = Status::FailedPrecondition(
              "no seed nodes for user " + std::to_string(q.user) +
              " (cold-start users cannot be served by graph recommenders)");
        }
      }
      if (!st.ok()) {
        results[i].status = std::move(st);
        continue;
      }
      by_seeds[seeds].push_back(i);
    }
  }
  // Phase B: flatten the groups into dispatch slices of at most the width
  // ceiling, so one giant group (every warm query hitting one hot user's
  // subgraph) still spreads across pool workers; RunFusedGroup re-chunks a
  // slice further if the probed per-subgraph cap is smaller.
  const int32_t slice_cap =
      options.max_fused_width > 0
          ? std::min<int32_t>(options.max_fused_width,
                              WalkKernel::kMaxFusedWidth)
          : 16;
  struct Slice {
    const std::vector<size_t>* members;
    int32_t begin;
    int32_t count;
  };
  std::vector<Slice> slices;
  for (const auto& entry : by_seeds) {
    const std::vector<size_t>& members = entry.second;
    const int32_t total = static_cast<int32_t>(members.size());
    for (int32_t b = 0; b < total; b += slice_cap) {
      slices.push_back({&members, b, std::min(slice_cap, total - b)});
    }
  }
  pool.ParallelFor(
      slices.size(),
      [&](size_t si) {
        const Slice& s = slices[si];
        RunFusedGroup(queries, s.members->data() + s.begin, s.count, options,
                      &LocalWorkspace(), results.data());
      },
      options.num_threads, /*grain=*/1);
  return results;
}

}  // namespace longtail
