// User entropy — the paper's novel feature (§4.2).
//
// Item-based (Eq. 10): E(u) = -Σ_{i∈S_u} p(i|u) log p(i|u) with
// p(i|u) = w(u,i) / Σ w(u,·). Broad raters have high entropy; taste-specific
// raters low entropy. Ratings from low-entropy users are more informative,
// so jumping from an item to such a user should be cheap (Eq. 9).
//
// Topic-based (Eq. 11): E(u) = -Σ_z p(z|θ_u) log p(z|θ_u) over the user's
// LDA topic distribution — robust to prolific users with narrow taste.
#ifndef LONGTAIL_CORE_ENTROPY_H_
#define LONGTAIL_CORE_ENTROPY_H_

#include <span>
#include <vector>

#include "data/dataset.h"
#include "linalg/dense.h"

namespace longtail {

/// Shannon entropy (nats) of an unnormalized non-negative weight vector.
/// Zero-weight entries contribute 0; an all-zero vector has entropy 0.
double Entropy(std::span<const double> weights);
double Entropy(std::span<const float> weights);

/// Eq. 10 for every user: entropy of the user's rating-weight distribution.
std::vector<double> ItemBasedUserEntropy(const Dataset& data);

/// Eq. 11 for every user: entropy of each row of θ (num_users × K).
std::vector<double> TopicBasedUserEntropy(const DenseMatrix& theta);

}  // namespace longtail

#endif  // LONGTAIL_CORE_ENTROPY_H_
