#include "core/recommender.h"

#include <algorithm>

namespace longtail {

std::vector<ScoredItem> TopKScoredItems(std::vector<ScoredItem> candidates,
                                        int k) {
  if (k < 0) k = 0;
  const size_t keep = std::min<size_t>(candidates.size(), k);
  auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(), better);
  candidates.resize(keep);
  return candidates;
}

Status CheckQueryUser(const Dataset* data, UserId user) {
  if (data == nullptr) {
    return Status::FailedPrecondition("recommender is not fitted; call Fit()");
  }
  if (user < 0 || user >= data->num_users()) {
    return Status::OutOfRange("user id " + std::to_string(user) +
                              " outside [0, " +
                              std::to_string(data->num_users()) + ")");
  }
  return Status::OK();
}

}  // namespace longtail
