#include "core/recommender.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serving_pool.h"

namespace longtail {

Status Recommender::SaveModel(CheckpointWriter& writer) const {
  (void)writer;
  return Status::Unimplemented("SaveModel is not implemented for " + name());
}

Status Recommender::LoadModel(CheckpointReader& reader, const Dataset& data) {
  (void)reader;
  (void)data;
  return Status::Unimplemented("LoadModel is not implemented for " + name());
}

std::vector<UserQueryResult> Recommender::QueryBatch(
    std::span<const UserQuery> queries, const BatchOptions& options) const {
  std::vector<UserQueryResult> results(queries.size());
  ServingPool& pool =
      options.pool != nullptr ? *options.pool : ServingPool::Global();
  pool.ParallelFor(
      queries.size(),
      [&](size_t idx) {
        const UserQuery& q = queries[idx];
        UserQueryResult& out = results[idx];
        if (q.top_k > 0) {
          auto top = RecommendTopK(q.user, q.top_k);
          if (!top.ok()) {
            out.status = top.status();
            return;
          }
          out.top_k = std::move(top).value();
        }
        if (!q.score_items.empty()) {
          auto scores = ScoreItems(q.user, q.score_items);
          if (!scores.ok()) {
            out.status = scores.status();
            return;
          }
          out.scores = std::move(scores).value();
        }
      },
      options.num_threads, /*grain=*/1);
  return results;
}

std::vector<Result<std::vector<ScoredItem>>> Recommender::RecommendBatch(
    std::span<const UserId> users, int k, const BatchOptions& options) const {
  std::vector<UserQuery> queries(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    queries[i].user = users[i];
    queries[i].top_k = k;
  }
  std::vector<UserQueryResult> batch = QueryBatch(queries, options);
  std::vector<Result<std::vector<ScoredItem>>> results;
  results.reserve(batch.size());
  for (UserQueryResult& r : batch) {
    if (r.status.ok()) {
      results.emplace_back(std::move(r.top_k));
    } else {
      results.emplace_back(std::move(r.status));
    }
  }
  return results;
}

std::vector<Result<std::vector<double>>> Recommender::ScoreBatch(
    std::span<const UserId> users,
    std::span<const std::vector<ItemId>> items_per_user,
    const BatchOptions& options) const {
  LT_CHECK_EQ(users.size(), items_per_user.size());
  std::vector<UserQuery> queries(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    queries[i].user = users[i];
    queries[i].score_items = items_per_user[i];
  }
  std::vector<UserQueryResult> batch = QueryBatch(queries, options);
  std::vector<Result<std::vector<double>>> results;
  results.reserve(batch.size());
  for (UserQueryResult& r : batch) {
    if (r.status.ok()) {
      results.emplace_back(std::move(r.scores));
    } else {
      results.emplace_back(std::move(r.status));
    }
  }
  return results;
}

std::vector<ScoredItem> TopKScoredItems(std::vector<ScoredItem> candidates,
                                        int k) {
  if (k < 0) k = 0;
  const size_t keep = std::min<size_t>(candidates.size(), k);
  auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(), better);
  candidates.resize(keep);
  return candidates;
}

Status CheckQueryUser(const Dataset* data, UserId user) {
  if (data == nullptr) {
    return Status::FailedPrecondition("recommender is not fitted; call Fit()");
  }
  if (user < 0 || user >= data->num_users()) {
    return Status::OutOfRange("user id " + std::to_string(user) +
                              " outside [0, " +
                              std::to_string(data->num_users()) + ")");
  }
  return Status::OK();
}

}  // namespace longtail
