// Shared primitive types for the longtail library.
#ifndef LONGTAIL_CORE_TYPES_H_
#define LONGTAIL_CORE_TYPES_H_

#include <cstdint>

namespace longtail {

/// Contiguous 0-based user id within a Dataset.
using UserId = int32_t;
/// Contiguous 0-based item id within a Dataset.
using ItemId = int32_t;
/// Graph node id: users occupy [0, num_users), items
/// [num_users, num_users + num_items).
using NodeId = int32_t;

/// One observed rating event.
struct RatingEntry {
  UserId user;
  ItemId item;
  /// Rating value; the paper's datasets use 1..5 stars. Used as the edge
  /// weight of the user-item graph and as token multiplicity in LDA.
  float value;
};

/// An item with a recommender-assigned score; higher is better.
struct ScoredItem {
  ItemId item;
  double score;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_TYPES_H_
