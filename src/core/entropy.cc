#include "core/entropy.h"

#include <cmath>

namespace longtail {

namespace {
template <typename T>
double EntropyImpl(std::span<const T> weights) {
  double total = 0.0;
  for (T w : weights) total += static_cast<double>(w);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (T w : weights) {
    const double p = static_cast<double>(w) / total;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}
}  // namespace

double Entropy(std::span<const double> weights) { return EntropyImpl(weights); }
double Entropy(std::span<const float> weights) { return EntropyImpl(weights); }

std::vector<double> ItemBasedUserEntropy(const Dataset& data) {
  std::vector<double> entropy(data.num_users(), 0.0);
  for (UserId u = 0; u < data.num_users(); ++u) {
    entropy[u] = Entropy(data.UserValues(u));
  }
  return entropy;
}

std::vector<double> TopicBasedUserEntropy(const DenseMatrix& theta) {
  std::vector<double> entropy(theta.rows(), 0.0);
  for (size_t u = 0; u < theta.rows(); ++u) {
    entropy[u] = Entropy(theta.Row(u));
  }
  return entropy;
}

}  // namespace longtail
