// Shared machinery for the paper's graph recommenders (HT, AT, AC1, AC2).
//
// Query flow (Algorithm 1): seed nodes → BFS subgraph capped at µ item
// nodes → truncated DP for τ iterations on the workspace's WalkKernel
// (the item-side ranking sweep; an exact linear solve when configured)
// → rank items by smallest time/cost. See docs/ARCHITECTURE.md for the
// full serving pipeline and docs/KERNELS.md for the kernel.
//
// All query state lives in a WalkWorkspace, so the per-query walk performs
// no global-sized heap allocation in the steady state. Every thread —
// single-user callers and serving-pool workers alike — pins one
// thread-local workspace; QueryBatch fans queries out over the
// process-lifetime ServingPool (no per-batch thread spawn, workspaces stay
// warm across batches), serves the top-k and candidate-scoring halves of a
// query from a single walk, and can reuse extracted subgraphs through a
// shared SubgraphCache (BatchOptions::subgraph_cache).
#ifndef LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
#define LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_

#include <vector>

#include "core/recommender.h"
#include "graph/bipartite_graph.h"
#include "graph/markov.h"
#include "graph/subgraph.h"

namespace longtail {

/// Options shared by all graph-walk recommenders.
struct GraphWalkOptions {
  /// τ: truncated-DP sweeps (paper default 15, §5.2.2).
  int iterations = 15;
  /// µ: BFS subgraph cap on item nodes (paper default 6000, §5.2.2).
  /// <= 0 disables the cap (whole reachable component).
  int32_t max_subgraph_items = 6000;
  /// Edge weight = rating (paper) vs 1.0 (ablation).
  bool weighted_edges = true;
  /// Replace the truncated DP with an exact Gauss–Seidel solve
  /// (tests/ablation; slower).
  bool exact = false;
  SolverOptions solver;
};

/// Base class implementing Fit/RecommendTopK/ScoreItems/QueryBatch on top
/// of three hooks: seed nodes, absorbing flags, and per-node costs. The
/// hooks write into caller-owned buffers so the batch engine can reuse them
/// across queries.
class GraphRecommenderBase : public Recommender {
 public:
  /// Builds the bipartite rating graph from `data` (edge weight = rating
  /// when options().weighted_edges) and runs FitImpl. Must be called
  /// exactly once; `data` must outlive the recommender.
  Status Fit(const Dataset& data) override;

  /// Runs one walk for `user` and returns up to `k` unrated items ranked
  /// by smallest time/cost (ScoredItem::score is the negated walk value,
  /// so larger = better as everywhere else). Items outside the extracted
  /// subgraph or unreachable from the absorbing set are never returned.
  /// FailedPrecondition for unfitted models and cold-start users.
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;

  /// Scores an explicit candidate list from one walk; aligned with
  /// `items`. Candidates outside the subgraph (or unreachable) get
  /// kUnreachableScore; out-of-range ids fail with OutOfRange.
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Batch engine: queries whose seed sets are identical — equivalently,
  /// whose subgraph-cache fingerprints collide, since extraction is a pure
  /// function of (graph, seeds, µ) — are grouped and served by ONE fused
  /// multi-query sweep: the shared subgraph is resolved once, each query
  /// compiles its own absorbing lane, and a single CSR pass per truncated
  /// iteration advances all lanes (SpMV → SpMM; see docs/KERNELS.md).
  /// Groups and singletons fan out on the long-lived ServingPool with one
  /// pinned WalkWorkspace per worker thread. Results are bit-identical to
  /// the sequential per-user calls at any thread count, any fused width,
  /// with or without a subgraph cache.
  std::vector<UserQueryResult> QueryBatch(
      std::span<const UserQuery> queries,
      const BatchOptions& options = {}) const override;

  /// Persists the fitted walker: walk options + the bipartite graph, plus
  /// whatever SaveExtraChunks appends (AC entropies, AC2's LDA tables).
  Status SaveModel(CheckpointWriter& writer) const override;

  /// Restores a walker saved by SaveModel; serves bit-identically to the
  /// fitted original without refitting.
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  /// The walk configuration this recommender was constructed (or
  /// checkpoint-restored) with.
  const GraphWalkOptions& options() const { return options_; }
  /// The fitted global rating graph; valid only after Fit/LoadModel.
  const BipartiteGraph& graph() const { return graph_; }

 protected:
  explicit GraphRecommenderBase(GraphWalkOptions options)
      : options_(options) {}

  /// Extra training after the graph is built (entropies, LDA). Default none.
  virtual Status FitImpl() { return Status::OK(); }

  /// Appends the global node ids seeding the BFS subgraph for this query
  /// to `*seeds` (cleared by the caller).
  virtual Status SeedNodes(UserId user, std::vector<NodeId>* seeds) const = 0;

  /// Writes local absorbing flags on the extracted subgraph into
  /// `*absorbing` (resized to the subgraph's node count, indexed by local
  /// node id). The walk pins absorbing nodes at value exactly 0; rankings
  /// order the remaining items by how fast the walk reaches this set.
  virtual void AbsorbingFlags(const Subgraph& sub, UserId user,
                              std::vector<bool>* absorbing) const = 0;

  /// Writes local per-node immediate costs into `*costs` (resized to the
  /// subgraph's node count): the cost a walker pays per step leaving each
  /// node. Default unit cost — values become expected steps (absorbing
  /// *time*); AC1/AC2 override with the Eq. 9 entropy costs (absorbing
  /// *cost*). Entries for absorbing nodes are ignored.
  virtual void NodeCosts(const Subgraph& sub,
                         std::vector<double>* costs) const;

  /// Appends subclass checkpoint chunks after the shared walker chunks.
  virtual Status SaveExtraChunks(CheckpointWriter& writer) const;

  /// Offers a chunk the base loader does not recognise to the subclass;
  /// sets `*handled` when consumed. Unhandled chunks are skipped (forward
  /// compatibility).
  virtual Status LoadExtraChunk(ChunkReader& chunk, bool* handled);

  /// Validates subclass state (filled in by LoadExtraChunk) once the whole
  /// chunk stream is consumed. Runs *before* the base commits options_,
  /// graph_ and data_, so a failure leaves the object unfitted and a
  /// fallback Fit() still works; validate against `data`, not data_.
  virtual Status FinishLoad(const Dataset& data);

  BipartiteGraph graph_;
  GraphWalkOptions options_;

 private:
  /// Runs Algorithm 1 for one user: subgraph into ws->sub() (adopted from
  /// `cache` on a hit, extracted — and inserted — on a miss; nullptr
  /// disables caching), walk values into ws->values. On the default
  /// truncated path only the item rows (local ids >= sub().users.size())
  /// are valid — the kernel's ranking sweep leaves user rows as
  /// intermediates — and all values are finite; the exact path fills
  /// every row and marks unreachable nodes +inf. TopKFromWalk /
  /// ScoresFromWalk read item rows only and treat non-finite as
  /// unreachable, which is correct for both.
  Status ComputeWalk(UserId user, WalkWorkspace* ws,
                     SubgraphCache* cache) const;
  /// Serves one batched query from a single walk.
  UserQueryResult RunQuery(const UserQuery& query, WalkWorkspace* ws,
                           SubgraphCache* cache) const;
  /// Serves the top-k and scoring halves of `query` from the walk values
  /// already in `ws` (shared by RunQuery and the fused group path).
  void ServeFromWalk(const UserQuery& query, const WalkWorkspace& ws,
                     UserQueryResult* out) const;
  /// Serves `count` queries (indices `members[0..count)`) that share one
  /// exact seed set: resolves the subgraph once, then sweeps the queries
  /// as fused lanes in chunks of at most the probed width cap. Results are
  /// bit-identical to per-query RunQuery. Callers guarantee every member
  /// passed phase-A validation (fitted model, non-empty seeds, non-empty
  /// query).
  void RunFusedGroup(std::span<const UserQuery> queries,
                     const size_t* members, int32_t count,
                     const BatchOptions& options, WalkWorkspace* ws,
                     UserQueryResult* results) const;
  Result<std::vector<ScoredItem>> TopKFromWalk(UserId user, int k,
                                               const WalkWorkspace& ws) const;
  Result<std::vector<double>> ScoresFromWalk(std::span<const ItemId> items,
                                             const WalkWorkspace& ws) const;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
