// Shared machinery for the paper's graph recommenders (HT, AT, AC1, AC2).
//
// Query flow (Algorithm 1): seed nodes → BFS subgraph capped at µ item
// nodes → truncated DP for τ iterations (or an exact linear solve when
// configured) → rank items by smallest time/cost.
#ifndef LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
#define LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_

#include <vector>

#include "core/recommender.h"
#include "graph/bipartite_graph.h"
#include "graph/markov.h"
#include "graph/subgraph.h"

namespace longtail {

/// Options shared by all graph-walk recommenders.
struct GraphWalkOptions {
  /// τ: truncated-DP sweeps (paper default 15, §5.2.2).
  int iterations = 15;
  /// µ: BFS subgraph cap on item nodes (paper default 6000, §5.2.2).
  /// <= 0 disables the cap (whole reachable component).
  int32_t max_subgraph_items = 6000;
  /// Edge weight = rating (paper) vs 1.0 (ablation).
  bool weighted_edges = true;
  /// Replace the truncated DP with an exact Gauss–Seidel solve
  /// (tests/ablation; slower).
  bool exact = false;
  SolverOptions solver;
};

/// Base class implementing Fit/RecommendTopK/ScoreItems on top of three
/// hooks: seed nodes, absorbing flags, and per-node costs.
class GraphRecommenderBase : public Recommender {
 public:
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  const GraphWalkOptions& options() const { return options_; }
  const BipartiteGraph& graph() const { return graph_; }

 protected:
  explicit GraphRecommenderBase(GraphWalkOptions options)
      : options_(options) {}

  /// Extra training after the graph is built (entropies, LDA). Default none.
  virtual Status FitImpl() { return Status::OK(); }

  /// Global node ids to seed the BFS subgraph for this query.
  virtual Result<std::vector<NodeId>> SeedNodes(UserId user) const = 0;

  /// Local absorbing flags on the extracted subgraph.
  virtual std::vector<bool> AbsorbingFlags(const Subgraph& sub,
                                           UserId user) const = 0;

  /// Local per-node immediate costs; default unit cost (absorbing *time*).
  virtual std::vector<double> NodeCosts(const Subgraph& sub) const;

  const Dataset* data_ = nullptr;
  BipartiteGraph graph_;
  GraphWalkOptions options_;

 private:
  struct WalkValues {
    Subgraph sub;
    std::vector<double> values;  // per local node; +inf = unreachable
  };
  Result<WalkValues> ComputeWalk(UserId user) const;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
