// Shared machinery for the paper's graph recommenders (HT, AT, AC1, AC2).
//
// Query flow (Algorithm 1): seed nodes → BFS subgraph capped at µ item
// nodes → truncated DP for τ iterations (or an exact linear solve when
// configured) → rank items by smallest time/cost.
//
// All query state lives in a WalkWorkspace, so the per-query walk performs
// no global-sized heap allocation in the steady state. Every thread —
// single-user callers and serving-pool workers alike — pins one
// thread-local workspace; QueryBatch fans queries out over the
// process-lifetime ServingPool (no per-batch thread spawn, workspaces stay
// warm across batches), serves the top-k and candidate-scoring halves of a
// query from a single walk, and can reuse extracted subgraphs through a
// shared SubgraphCache (BatchOptions::subgraph_cache).
#ifndef LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
#define LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_

#include <vector>

#include "core/recommender.h"
#include "graph/bipartite_graph.h"
#include "graph/markov.h"
#include "graph/subgraph.h"

namespace longtail {

/// Options shared by all graph-walk recommenders.
struct GraphWalkOptions {
  /// τ: truncated-DP sweeps (paper default 15, §5.2.2).
  int iterations = 15;
  /// µ: BFS subgraph cap on item nodes (paper default 6000, §5.2.2).
  /// <= 0 disables the cap (whole reachable component).
  int32_t max_subgraph_items = 6000;
  /// Edge weight = rating (paper) vs 1.0 (ablation).
  bool weighted_edges = true;
  /// Replace the truncated DP with an exact Gauss–Seidel solve
  /// (tests/ablation; slower).
  bool exact = false;
  SolverOptions solver;
};

/// Base class implementing Fit/RecommendTopK/ScoreItems/QueryBatch on top
/// of three hooks: seed nodes, absorbing flags, and per-node costs. The
/// hooks write into caller-owned buffers so the batch engine can reuse them
/// across queries.
class GraphRecommenderBase : public Recommender {
 public:
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Batch engine: one walk per query (shared between the top-k and
  /// scoring halves), fanned out on the long-lived ServingPool with one
  /// pinned WalkWorkspace per worker thread. Results are bit-identical to
  /// the sequential per-user calls at any thread count, with or without a
  /// subgraph cache.
  std::vector<UserQueryResult> QueryBatch(
      std::span<const UserQuery> queries,
      const BatchOptions& options = {}) const override;

  /// Persists the fitted walker: walk options + the bipartite graph, plus
  /// whatever SaveExtraChunks appends (AC entropies, AC2's LDA tables).
  Status SaveModel(CheckpointWriter& writer) const override;

  /// Restores a walker saved by SaveModel; serves bit-identically to the
  /// fitted original without refitting.
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  const GraphWalkOptions& options() const { return options_; }
  const BipartiteGraph& graph() const { return graph_; }

 protected:
  explicit GraphRecommenderBase(GraphWalkOptions options)
      : options_(options) {}

  /// Extra training after the graph is built (entropies, LDA). Default none.
  virtual Status FitImpl() { return Status::OK(); }

  /// Appends the global node ids seeding the BFS subgraph for this query
  /// to `*seeds` (cleared by the caller).
  virtual Status SeedNodes(UserId user, std::vector<NodeId>* seeds) const = 0;

  /// Writes local absorbing flags on the extracted subgraph into
  /// `*absorbing` (resized to the subgraph's node count).
  virtual void AbsorbingFlags(const Subgraph& sub, UserId user,
                              std::vector<bool>* absorbing) const = 0;

  /// Writes local per-node immediate costs into `*costs`; default unit
  /// cost (absorbing *time*).
  virtual void NodeCosts(const Subgraph& sub,
                         std::vector<double>* costs) const;

  /// Appends subclass checkpoint chunks after the shared walker chunks.
  virtual Status SaveExtraChunks(CheckpointWriter& writer) const;

  /// Offers a chunk the base loader does not recognise to the subclass;
  /// sets `*handled` when consumed. Unhandled chunks are skipped (forward
  /// compatibility).
  virtual Status LoadExtraChunk(ChunkReader& chunk, bool* handled);

  /// Validates subclass state (filled in by LoadExtraChunk) once the whole
  /// chunk stream is consumed. Runs *before* the base commits options_,
  /// graph_ and data_, so a failure leaves the object unfitted and a
  /// fallback Fit() still works; validate against `data`, not data_.
  virtual Status FinishLoad(const Dataset& data);

  BipartiteGraph graph_;
  GraphWalkOptions options_;

 private:
  /// Runs Algorithm 1 for one user: subgraph into ws->sub() (adopted from
  /// `cache` on a hit, extracted — and inserted — on a miss; nullptr
  /// disables caching), per-local-node values into ws->values
  /// (+inf = unreachable).
  Status ComputeWalk(UserId user, WalkWorkspace* ws,
                     SubgraphCache* cache) const;
  /// Serves one batched query from a single walk.
  UserQueryResult RunQuery(const UserQuery& query, WalkWorkspace* ws,
                           SubgraphCache* cache) const;
  Result<std::vector<ScoredItem>> TopKFromWalk(UserId user, int k,
                                               const WalkWorkspace& ws) const;
  Result<std::vector<double>> ScoresFromWalk(std::span<const ItemId> items,
                                             const WalkWorkspace& ws) const;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_GRAPH_RECOMMENDER_BASE_H_
