#include "core/absorbing_time.h"

#include "util/logging.h"

namespace longtail {

Status AbsorbingTimeRecommender::SeedNodes(UserId user,
                                           std::vector<NodeId>* seeds) const {
  const auto items = data_->UserItems(user);
  if (items.empty()) {
    return Status::FailedPrecondition("user " + std::to_string(user) +
                                      " has no ratings");
  }
  seeds->reserve(items.size() + 1);
  // Seeding with S_q; the query user node is adjacent to all of S_q and
  // therefore joins the subgraph in the first BFS level, but including it
  // explicitly keeps the behaviour obvious.
  seeds->push_back(graph_.UserNode(user));
  for (ItemId item : items) seeds->push_back(graph_.ItemNode(item));
  return Status::OK();
}

void AbsorbingTimeRecommender::AbsorbingFlags(
    const Subgraph& sub, UserId user, std::vector<bool>* absorbing) const {
  absorbing->assign(sub.graph.num_nodes(), false);
  for (ItemId item : data_->UserItems(user)) {
    const NodeId local = sub.LocalItemNode(item);
    LT_CHECK_GE(local, 0) << "rated item must be in its own subgraph";
    (*absorbing)[local] = true;
  }
}

}  // namespace longtail
