// HT — the user-based Hitting Time recommender (§3.3, Problem 2).
//
// For a query user q, H(q|j) is the expected number of steps for a walker
// starting at item j to first reach q (Def. 1). Eq. 5 shows
// H(q|j) = π_j / (p_qj π_q): small hitting time ⇔ relevant to q *and* low
// stationary probability (unpopular) — exactly the long-tail objective.
// Operationally this is the absorbing time with S = {q}.
#ifndef LONGTAIL_CORE_HITTING_TIME_H_
#define LONGTAIL_CORE_HITTING_TIME_H_

#include "core/graph_recommender_base.h"

namespace longtail {

/// Hitting-time recommender: rank items by smallest H(q|item).
class HittingTimeRecommender : public GraphRecommenderBase {
 public:
  explicit HittingTimeRecommender(GraphWalkOptions options = {})
      : GraphRecommenderBase(options) {}

  std::string name() const override { return "HT"; }

 protected:
  Status SeedNodes(UserId user, std::vector<NodeId>* seeds) const override;
  void AbsorbingFlags(const Subgraph& sub, UserId user,
                      std::vector<bool>* absorbing) const override;
};

}  // namespace longtail

#endif  // LONGTAIL_CORE_HITTING_TIME_H_
