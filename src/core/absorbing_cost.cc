#include "core/absorbing_cost.h"

#include <algorithm>
#include <cmath>

#include "core/entropy.h"
#include "data/serialization.h"
#include "graph/markov.h"

namespace longtail {

Status AbsorbingCostRecommender::FitImpl() {
  switch (source_) {
    case EntropySource::kItemBased:
      user_entropy_ = ItemBasedUserEntropy(*data_);
      break;
    case EntropySource::kTopicBased: {
      LT_ASSIGN_OR_RETURN(LdaModel model,
                          LdaModel::Train(*data_, cost_options_.lda));
      user_entropy_ = TopicBasedUserEntropy(model.theta());
      lda_model_ = std::move(model);
      break;
    }
  }
  if (cost_options_.user_jump_cost > 0.0) {
    resolved_jump_cost_ = cost_options_.user_jump_cost;
  } else {
    // Paper default: C is "the mean cost of jumping from V2 to V1" — the
    // mean user entropy. Floor at a small epsilon so the walk never takes
    // free steps (degenerate ranking) on pathological datasets.
    double sum = 0.0;
    for (double e : user_entropy_) sum += e;
    const double mean =
        user_entropy_.empty() ? 0.0 : sum / user_entropy_.size();
    resolved_jump_cost_ = std::max(mean, 1e-3);
  }
  return Status::OK();
}

Status AbsorbingCostRecommender::SaveExtraChunks(
    CheckpointWriter& writer) const {
  ChunkWriter entropy;
  entropy.Scalar<double>(resolved_jump_cost_);
  entropy.Vector(user_entropy_);
  LT_RETURN_IF_ERROR(writer.WriteChunk(kChunkUserEntropy,
                                       kCheckpointChunkVersion, entropy));
  if (lda_model_.has_value()) {
    ChunkWriter lda;
    WriteLdaModelChunk(*lda_model_, &lda);
    LT_RETURN_IF_ERROR(
        writer.WriteChunk(kChunkLdaModel, kCheckpointChunkVersion, lda));
  }
  return Status::OK();
}

Status AbsorbingCostRecommender::LoadExtraChunk(ChunkReader& chunk,
                                                bool* handled) {
  switch (chunk.tag()) {
    case kChunkUserEntropy: {
      if (chunk.version() > kCheckpointChunkVersion) {
        return Status::IOError("unsupported entropy chunk version");
      }
      LT_RETURN_IF_ERROR(chunk.Scalar(&resolved_jump_cost_));
      LT_RETURN_IF_ERROR(
          chunk.Vector(&user_entropy_, kMaxSerializedArrayElements));
      *handled = true;
      return Status::OK();
    }
    case kChunkLdaModel: {
      if (chunk.version() > kCheckpointChunkVersion) {
        return Status::IOError("unsupported LDA chunk version");
      }
      LT_ASSIGN_OR_RETURN(LdaModel model, ReadLdaModelChunk(&chunk));
      lda_model_ = std::move(model);
      *handled = true;
      return Status::OK();
    }
    default:
      *handled = false;
      return Status::OK();
  }
}

Status AbsorbingCostRecommender::FinishLoad(const Dataset& data) {
  if (user_entropy_.size() != static_cast<size_t>(data.num_users())) {
    return Status::IOError("checkpoint entropy table does not match the "
                           "dataset's user count");
  }
  if (!(resolved_jump_cost_ > 0.0) || !std::isfinite(resolved_jump_cost_)) {
    return Status::IOError("checkpoint carries an invalid user jump cost");
  }
  for (const double e : user_entropy_) {
    if (!std::isfinite(e) || e < 0.0) {
      return Status::IOError("checkpoint carries an invalid user entropy");
    }
  }
  if (source_ == EntropySource::kTopicBased) {
    if (!lda_model_.has_value()) {
      return Status::IOError("AC2 checkpoint is missing its LDA model");
    }
    if (lda_model_->theta().rows() != static_cast<size_t>(data.num_users()) ||
        lda_model_->phi().cols() != static_cast<size_t>(data.num_items())) {
      return Status::IOError("AC2 checkpoint LDA model does not match the "
                             "dataset shape");
    }
  }
  return Status::OK();
}

void AbsorbingCostRecommender::NodeCosts(const Subgraph& sub,
                                         std::vector<double>* costs) const {
  // Map global entropies onto the subgraph's local user ids, then build the
  // per-node expected-immediate-cost vector of Eq. 9. The entropy staging
  // vector is subgraph-sized, so this stays within the steady-state
  // allocation budget (only global-sized tables are banned per query).
  std::vector<double> local_entropy(sub.users.size(), 0.0);
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    local_entropy[lu] = user_entropy_[sub.users[lu]];
  }
  EntropyNodeCostsInto(sub.graph, local_entropy, resolved_jump_cost_, costs);
}

}  // namespace longtail
