#include "core/absorbing_cost.h"

#include <algorithm>

#include "core/entropy.h"
#include "graph/markov.h"

namespace longtail {

Status AbsorbingCostRecommender::FitImpl() {
  switch (source_) {
    case EntropySource::kItemBased:
      user_entropy_ = ItemBasedUserEntropy(*data_);
      break;
    case EntropySource::kTopicBased: {
      LT_ASSIGN_OR_RETURN(LdaModel model,
                          LdaModel::Train(*data_, cost_options_.lda));
      user_entropy_ = TopicBasedUserEntropy(model.theta());
      lda_model_ = std::move(model);
      break;
    }
  }
  if (cost_options_.user_jump_cost > 0.0) {
    resolved_jump_cost_ = cost_options_.user_jump_cost;
  } else {
    // Paper default: C is "the mean cost of jumping from V2 to V1" — the
    // mean user entropy. Floor at a small epsilon so the walk never takes
    // free steps (degenerate ranking) on pathological datasets.
    double sum = 0.0;
    for (double e : user_entropy_) sum += e;
    const double mean =
        user_entropy_.empty() ? 0.0 : sum / user_entropy_.size();
    resolved_jump_cost_ = std::max(mean, 1e-3);
  }
  return Status::OK();
}

void AbsorbingCostRecommender::NodeCosts(const Subgraph& sub,
                                         std::vector<double>* costs) const {
  // Map global entropies onto the subgraph's local user ids, then build the
  // per-node expected-immediate-cost vector of Eq. 9. The entropy staging
  // vector is subgraph-sized, so this stays within the steady-state
  // allocation budget (only global-sized tables are banned per query).
  std::vector<double> local_entropy(sub.users.size(), 0.0);
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    local_entropy[lu] = user_entropy_[sub.users[lu]];
  }
  EntropyNodeCostsInto(sub.graph, local_entropy, resolved_jump_cost_, costs);
}

}  // namespace longtail
