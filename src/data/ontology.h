// A category ontology with the paper's path similarity (§5.2.4, Eq. 18).
//
// The paper measures recommendation quality on Douban by mapping books into
// dangdang.com's category tree and scoring
//     Sim(C_i, C_j) = |longest common prefix| / max(|C_i|, |C_j|).
// dangdang's tree is proprietary, so we provide (a) a generic tree container
// implementing that similarity and (b) a builder for a balanced synthetic
// tree whose top-level categories align with the synthetic generator's
// latent genres (the property the metric actually exercises).
#ifndef LONGTAIL_DATA_ONTOLOGY_H_
#define LONGTAIL_DATA_ONTOLOGY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace longtail {

/// Rooted category tree; leaves are the assignable item categories.
class CategoryOntology {
 public:
  CategoryOntology() = default;

  /// Balanced tree: root → one node per `top_categories` entry → `sub_per_top`
  /// children each → `leaf_per_sub` leaves each. Path length (excluding the
  /// root) is 3 for every leaf.
  static Result<CategoryOntology> BuildBalanced(
      const std::vector<std::string>& top_categories, int sub_per_top,
      int leaf_per_sub);

  int32_t num_leaves() const { return static_cast<int32_t>(leaf_paths_.size()); }

  /// Category-name path of a leaf, root child first,
  /// e.g. {"Computer & Internet", "Database", "Data Mining"}.
  const std::vector<std::string>& LeafPath(int32_t leaf) const {
    return leaf_paths_[leaf];
  }

  /// Eq. 18 on two leaves: common-prefix length over max path length.
  double PathSimilarity(int32_t leaf_a, int32_t leaf_b) const;

  /// "Top: Sub: Leaf" display form.
  std::string LeafPathString(int32_t leaf) const;

  /// Leaves under top-level category `top_index` (used by the generator to
  /// correlate categories with genres).
  std::vector<int32_t> LeavesUnderTop(int top_index) const;

 private:
  // leaf id → path of category names (length ≥ 1, equal lengths not
  // required by the similarity).
  std::vector<std::vector<std::string>> leaf_paths_;
  // leaf id → index of its top-level category.
  std::vector<int32_t> leaf_top_;
};

}  // namespace longtail

#endif  // LONGTAIL_DATA_ONTOLOGY_H_
