#include "data/ontology.h"

#include <algorithm>

namespace longtail {

Result<CategoryOntology> CategoryOntology::BuildBalanced(
    const std::vector<std::string>& top_categories, int sub_per_top,
    int leaf_per_sub) {
  if (top_categories.empty()) {
    return Status::InvalidArgument("ontology needs at least one top category");
  }
  if (sub_per_top < 1 || leaf_per_sub < 1) {
    return Status::InvalidArgument("fan-outs must be >= 1");
  }
  CategoryOntology ont;
  for (size_t t = 0; t < top_categories.size(); ++t) {
    for (int s = 0; s < sub_per_top; ++s) {
      const std::string sub = top_categories[t] + "/Sub" + std::to_string(s);
      for (int l = 0; l < leaf_per_sub; ++l) {
        ont.leaf_paths_.push_back(
            {top_categories[t], sub, sub + "/Leaf" + std::to_string(l)});
        ont.leaf_top_.push_back(static_cast<int32_t>(t));
      }
    }
  }
  return ont;
}

double CategoryOntology::PathSimilarity(int32_t leaf_a, int32_t leaf_b) const {
  const auto& pa = leaf_paths_[leaf_a];
  const auto& pb = leaf_paths_[leaf_b];
  const size_t max_len = std::max(pa.size(), pb.size());
  if (max_len == 0) return 0.0;
  size_t common = 0;
  const size_t limit = std::min(pa.size(), pb.size());
  while (common < limit && pa[common] == pb[common]) ++common;
  return static_cast<double>(common) / static_cast<double>(max_len);
}

std::string CategoryOntology::LeafPathString(int32_t leaf) const {
  std::string out;
  for (size_t k = 0; k < leaf_paths_[leaf].size(); ++k) {
    if (k > 0) out += ": ";
    out += leaf_paths_[leaf][k];
  }
  return out;
}

std::vector<int32_t> CategoryOntology::LeavesUnderTop(int top_index) const {
  std::vector<int32_t> leaves;
  for (int32_t l = 0; l < num_leaves(); ++l) {
    if (leaf_top_[l] == top_index) leaves.push_back(l);
  }
  return leaves;
}

}  // namespace longtail
