// Long-tail catalog statistics (§5.1.2).
//
// The paper defines the tail as "products enjoying lowest ... ratings while
// in the aggregate generating r% of the total", with r% = 20% following the
// 80/20 rule. On their data ~66% of MovieLens movies and ~73% of Douban
// books are tail items by this definition.
#ifndef LONGTAIL_DATA_LONGTAIL_STATS_H_
#define LONGTAIL_DATA_LONGTAIL_STATS_H_

#include <vector>

#include "data/dataset.h"

namespace longtail {

struct LongTailStats {
  int32_t num_items = 0;
  int64_t total_ratings = 0;
  /// Items in the tail by the r% rule.
  int32_t tail_item_count = 0;
  /// tail_item_count / num_items (the paper's "66%"/"73%").
  double tail_item_fraction = 0.0;
  /// Rating share actually covered by the tail (≤ r by construction).
  double tail_rating_share = 0.0;
  /// Gini coefficient of item popularity (concentration measure).
  double gini = 0.0;
  /// Largest / mean / smallest item popularity.
  int32_t max_popularity = 0;
  double mean_popularity = 0.0;
  int32_t min_popularity = 0;
};

/// Computes tail statistics with the r% rule (default r = 20%).
LongTailStats ComputeLongTailStats(const Dataset& data,
                                   double tail_rating_share = 0.20);

/// Per-item tail flags: true iff the item belongs to the tail under the
/// r% rule. Ties at the boundary are resolved by ascending popularity then
/// ascending item id (deterministic).
std::vector<bool> TailItemFlags(const Dataset& data,
                                double tail_rating_share = 0.20);

/// Lorenz curve of item popularity: `points` cumulative rating shares at
/// evenly spaced item quantiles (items sorted ascending by popularity).
std::vector<double> PopularityLorenzCurve(const Dataset& data, int points);

}  // namespace longtail

#endif  // LONGTAIL_DATA_LONGTAIL_STATS_H_
