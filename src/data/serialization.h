// Binary persistence for datasets and trained models.
//
// Recommenders train offline (LDA Gibbs, SVD) and serve online; these
// helpers let a pipeline persist the expensive artifacts between the two
// phases. The format is versioned and checksummed: a magic tag + version,
// little-endian scalar/array sections, and a FNV-1a checksum trailer, so
// truncated or corrupted files are rejected with a clean Status instead of
// propagating garbage into a serving process.
#ifndef LONGTAIL_DATA_SERIALIZATION_H_
#define LONGTAIL_DATA_SERIALIZATION_H_

#include <string>

#include "data/dataset.h"
#include "topics/lda.h"
#include "util/status.h"

namespace longtail {

/// Writes the full dataset (ratings + metadata) to `path`.
Status SaveDatasetBinary(const Dataset& data, const std::string& path);

/// Reads a dataset written by SaveDatasetBinary. Verifies magic, version,
/// structural invariants and the checksum.
Result<Dataset> LoadDatasetBinary(const std::string& path);

/// Writes a trained LDA model (θ and φ) to `path`.
Status SaveLdaModel(const LdaModel& model, const std::string& path);

/// Reads a model written by SaveLdaModel.
Result<LdaModel> LoadLdaModel(const std::string& path);

}  // namespace longtail

#endif  // LONGTAIL_DATA_SERIALIZATION_H_
