// Binary persistence for datasets and trained models.
//
// Two layers live here:
//
//  * The monolithic dataset / LDA-model formats (SaveDatasetBinary etc.):
//    a magic tag + version, little-endian scalar/array sections, and one
//    FNV-1a checksum trailer over the whole file.
//
//  * The chunked checkpoint container used by model checkpoints
//    (Recommender::SaveModel / LoadModel, serving/model_registry.h):
//    a magic tag followed by self-describing chunks
//
//        chunk := tag(u32) | version(u32) | payload_len(u64)
//               | payload bytes | fnv64(tag‖version‖len‖payload)
//
//    terminated by an end-marker chunk (tag 0, empty payload). Each chunk
//    carries its own checksum, so a loader can *skip* chunks whose tag it
//    does not know — forward compatibility: old binaries load new
//    checkpoints, ignoring chunk kinds added later — while any corruption
//    (bit flip, truncation, hostile length) is still rejected cleanly.
//
// Both layers share the hardened BinaryReader: every length field is
// validated against the bytes actually remaining in the file *before* any
// allocation, so a corrupted or hostile header yields a clean Status
// instead of a multi-gigabyte resize.
#ifndef LONGTAIL_DATA_SERIALIZATION_H_
#define LONGTAIL_DATA_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "topics/lda.h"
#include "util/hash.h"
#include "util/status.h"

namespace longtail {

/// Hard ceiling on any deserialized array (10^9 elements ≈ 8 GB of
/// doubles): protects against hostile/corrupt headers requesting absurd
/// allocations, which would otherwise throw length_error out of resize().
inline constexpr uint64_t kMaxSerializedArrayElements = 1000000000ULL;

/// Streaming FNV-1a over every byte fed to it.
class FnvChecksum {
 public:
  void Update(const void* data, size_t n) {
    hash_ = FnvHashBytes(data, n, hash_);
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = kFnvOffsetBasis;
};

/// Little-endian scalar/array file writer with a running FNV-1a checksum.
/// The monolithic formats end with Finish() (checksum trailer); the chunked
/// container checksums per chunk instead and ends with Flush().
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary), path_(path) {}

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  void Raw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    checksum_.Update(data, n);
  }
  template <typename T>
  void Scalar(T v) {
    Raw(&v, sizeof(T));
  }
  template <typename T>
  void Vector(const std::vector<T>& v) {
    Scalar<uint64_t>(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }
  void String(const std::string& s) {
    Scalar<uint64_t>(s.size());
    if (!s.empty()) Raw(s.data(), s.size());
  }
  /// Appends the whole-file checksum trailer and flushes.
  Status Finish() {
    const uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    return Flush();
  }
  /// Flushes without a trailer (chunked container: checksums are per chunk).
  Status Flush() {
    out_.flush();
    if (!out_) return Status::IOError("write failed: " + path_);
    return Status::OK();
  }

 private:
  std::ofstream out_;
  std::string path_;
  FnvChecksum checksum_;
};

/// Hardened little-endian file reader: length fields are validated against
/// Remaining() before any allocation.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary), path_(path) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      const auto end = in_.tellg();
      file_size_ = end >= 0 ? static_cast<uint64_t>(end) : 0;
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_); }
  const std::string& path() const { return path_; }

  /// Bytes between the read cursor and end of file. Length fields are
  /// validated against this before any allocation, so a corrupted (e.g.
  /// bit-flipped) length yields a clean error instead of a multi-gigabyte
  /// resize that the checksum would only catch after the fact.
  uint64_t Remaining() {
    const auto pos = in_.tellg();
    if (pos < 0 || static_cast<uint64_t>(pos) > file_size_) return 0;
    return file_size_ - static_cast<uint64_t>(pos);
  }

  Status Raw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_.gcount()) != n) {
      return Status::IOError("truncated file: " + path_);
    }
    checksum_.Update(data, n);
    return Status::OK();
  }
  template <typename T>
  Status Scalar(T* v) {
    return Raw(v, sizeof(T));
  }
  template <typename T>
  Status Vector(std::vector<T>* v, uint64_t max_elements) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_elements || n > kMaxSerializedArrayElements ||
        n * sizeof(T) > Remaining()) {
      return Status::IOError("implausible array length in " + path_);
    }
    v->resize(n);
    if (n > 0) return Raw(v->data(), n * sizeof(T));
    return Status::OK();
  }
  Status String(std::string* s, uint64_t max_len = 1 << 20) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_len || n > Remaining()) {
      return Status::IOError("implausible string length in " + path_);
    }
    s->resize(n);
    if (n > 0) return Raw(s->data(), n);
    return Status::OK();
  }
  /// Verifies the whole-file checksum trailer of the monolithic formats.
  Status VerifyChecksum() {
    const uint64_t expected = checksum_.value();
    uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (static_cast<size_t>(in_.gcount()) != sizeof(stored)) {
      return Status::IOError("missing checksum trailer: " + path_);
    }
    if (stored != expected) {
      return Status::IOError("checksum mismatch (corrupt file): " + path_);
    }
    return Status::OK();
  }

 private:
  std::ifstream in_;
  std::string path_;
  uint64_t file_size_ = 0;
  FnvChecksum checksum_;
};

// ---------------------------------------------------------------------------
// Chunked checkpoint container.
// ---------------------------------------------------------------------------

/// Magic prefix of checkpoint container files. The trailing digits version
/// the *container layout* only; chunk payloads carry their own versions.
inline constexpr char kCheckpointMagic[8] = {'L', 'T', 'C', 'P',
                                             '0', '0', '0', '1'};

/// Tag reserved for the container's end-of-file marker chunk.
inline constexpr uint32_t kChunkEndTag = 0;

/// In-memory payload builder for one chunk: the same little-endian
/// scalar/vector/string encoding as BinaryWriter, appended to a buffer that
/// CheckpointWriter frames and checksums.
class ChunkWriter {
 public:
  void Raw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  template <typename T>
  void Scalar(T v) {
    Raw(&v, sizeof(T));
  }
  template <typename T>
  void Vector(const std::vector<T>& v) {
    Scalar<uint64_t>(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }
  void String(const std::string& s) {
    Scalar<uint64_t>(s.size());
    if (!s.empty()) Raw(s.data(), s.size());
  }

  const std::string& payload() const { return buf_; }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Bounded cursor over one loaded chunk's payload. All reads are validated
/// against the chunk's own length; the payload was checksum-verified before
/// this object is handed out.
class ChunkReader {
 public:
  uint32_t tag() const { return tag_; }
  uint32_t version() const { return version_; }
  uint64_t Remaining() const { return payload_.size() - pos_; }

  Status Raw(void* data, size_t n) {
    if (n > Remaining()) {
      return Status::IOError("truncated chunk payload in " + path_);
    }
    std::memcpy(data, payload_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  template <typename T>
  Status Scalar(T* v) {
    return Raw(v, sizeof(T));
  }
  template <typename T>
  Status Vector(std::vector<T>* v, uint64_t max_elements) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_elements || n > kMaxSerializedArrayElements ||
        n * sizeof(T) > Remaining()) {
      return Status::IOError("implausible array length in chunk of " + path_);
    }
    v->resize(n);
    if (n > 0) return Raw(v->data(), n * sizeof(T));
    return Status::OK();
  }
  Status String(std::string* s, uint64_t max_len = 1 << 20) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_len || n > Remaining()) {
      return Status::IOError("implausible string length in chunk of " +
                             path_);
    }
    s->resize(n);
    if (n > 0) return Raw(s->data(), n);
    return Status::OK();
  }

 private:
  friend class CheckpointReader;
  uint32_t tag_ = 0;
  uint32_t version_ = 0;
  std::string payload_;
  size_t pos_ = 0;
  std::string path_;
};

/// Appends framed, checksummed chunks to a container file. Usage:
///   CheckpointWriter w(path);            // writes the magic
///   ChunkWriter c; c.Scalar(...); ...
///   w.WriteChunk(tag, version, c);       // any number of chunks
///   w.Finish();                          // end marker + flush
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const std::string& path);

  bool ok() const { return out_.ok(); }
  const std::string& path() const { return out_.path(); }

  /// Frames and appends one chunk. `tag` must not be kChunkEndTag.
  Status WriteChunk(uint32_t tag, uint32_t version, const ChunkWriter& chunk);

  /// Writes the end-marker chunk and flushes. Must be called exactly once.
  Status Finish();

 private:
  Status WriteFramed(uint32_t tag, uint32_t version,
                     const std::string& payload);

  BinaryWriter out_;
  bool finished_ = false;
};

/// Sequential chunk iterator over a container file. The magic is verified
/// at construction (see status()); each Next() validates the chunk length
/// against the bytes remaining in the file before allocating, loads the
/// payload, and verifies the per-chunk checksum.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  /// Open/magic failure, if any; Next() also returns it.
  const Status& status() const { return status_; }
  const std::string& path() const { return in_.path(); }

  /// Advances to the next chunk: true = `*chunk` holds a verified chunk,
  /// false = the end marker was reached (repeated calls keep returning
  /// false). A file that ends without an end marker is truncated → error.
  Result<bool> Next(ChunkReader* chunk);

 private:
  BinaryReader in_;
  Status status_;
  bool done_ = false;
};

// ---- shared chunk-payload helpers ----

/// Appends a DenseMatrix (rows, cols, row-major data) to a chunk payload.
void WriteDenseMatrix(const DenseMatrix& m, ChunkWriter* w);

/// Reads a matrix written by WriteDenseMatrix, validating the declared
/// shape against the stored element count before allocation.
Status ReadDenseMatrix(ChunkReader* r, DenseMatrix* m);

/// Appends a trained LDA model (θ then φ) to a chunk payload — the single
/// encoding behind kChunkLdaModel, shared by AC2 and the LDA baseline so
/// their checkpoints stay mutually byte-compatible.
void WriteLdaModelChunk(const LdaModel& model, ChunkWriter* w);

/// Reads a model written by WriteLdaModelChunk.
Result<LdaModel> ReadLdaModelChunk(ChunkReader* r);

// ---- monolithic formats (datasets, standalone LDA models) ----

/// Writes the full dataset (ratings + metadata) to `path`.
Status SaveDatasetBinary(const Dataset& data, const std::string& path);

/// Reads a dataset written by SaveDatasetBinary. Verifies magic, version,
/// structural invariants and the checksum.
Result<Dataset> LoadDatasetBinary(const std::string& path);

/// Writes a trained LDA model (θ and φ) to `path`.
Status SaveLdaModel(const LdaModel& model, const std::string& path);

/// Reads a model written by SaveLdaModel.
Result<LdaModel> LoadLdaModel(const std::string& path);

}  // namespace longtail

#endif  // LONGTAIL_DATA_SERIALIZATION_H_
