#include "data/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/hash.h"

namespace longtail {

namespace {

constexpr char kDatasetMagic[8] = {'L', 'T', 'D', 'S', '0', '0', '0', '1'};
constexpr char kLdaMagic[8] = {'L', 'T', 'L', 'M', '0', '0', '0', '1'};

// Hard ceiling on any deserialized array (10^9 elements ≈ 8 GB of doubles):
// protects against hostile/corrupt headers requesting absurd allocations,
// which would otherwise throw length_error out of resize().
constexpr uint64_t kMaxArrayElements = 1000000000ULL;

// Streaming FNV-1a over every byte written/read (excluding the trailer).
class Checksum {
 public:
  void Update(const void* data, size_t n) { hash_ = FnvHashBytes(data, n, hash_); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = kFnvOffsetBasis;
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary), path_(path) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Raw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    checksum_.Update(data, n);
  }
  template <typename T>
  void Scalar(T v) {
    Raw(&v, sizeof(T));
  }
  template <typename T>
  void Vector(const std::vector<T>& v) {
    Scalar<uint64_t>(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }
  void String(const std::string& s) {
    Scalar<uint64_t>(s.size());
    if (!s.empty()) Raw(s.data(), s.size());
  }
  Status Finish() {
    const uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    out_.flush();
    if (!out_) return Status::IOError("write failed: " + path_);
    return Status::OK();
  }

 private:
  std::ofstream out_;
  std::string path_;
  Checksum checksum_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary), path_(path) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      const auto end = in_.tellg();
      file_size_ = end >= 0 ? static_cast<uint64_t>(end) : 0;
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_); }
  const std::string& path() const { return path_; }

  /// Bytes between the read cursor and end of file. Length fields are
  /// validated against this before any allocation, so a corrupted (e.g.
  /// bit-flipped) length yields a clean error instead of a multi-gigabyte
  /// resize that the checksum would only catch after the fact.
  uint64_t Remaining() {
    const auto pos = in_.tellg();
    if (pos < 0 || static_cast<uint64_t>(pos) > file_size_) return 0;
    return file_size_ - static_cast<uint64_t>(pos);
  }

  Status Raw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_.gcount()) != n) {
      return Status::IOError("truncated file: " + path_);
    }
    checksum_.Update(data, n);
    return Status::OK();
  }
  template <typename T>
  Status Scalar(T* v) {
    return Raw(v, sizeof(T));
  }
  template <typename T>
  Status Vector(std::vector<T>* v, uint64_t max_elements) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_elements || n > kMaxArrayElements ||
        n * sizeof(T) > Remaining()) {
      return Status::IOError("implausible array length in " + path_);
    }
    v->resize(n);
    if (n > 0) return Raw(v->data(), n * sizeof(T));
    return Status::OK();
  }
  Status String(std::string* s, uint64_t max_len = 1 << 20) {
    uint64_t n = 0;
    LT_RETURN_IF_ERROR(Scalar(&n));
    if (n > max_len || n > Remaining()) {
      return Status::IOError("implausible string length in " + path_);
    }
    s->resize(n);
    if (n > 0) return Raw(s->data(), n);
    return Status::OK();
  }
  Status VerifyChecksum() {
    const uint64_t expected = checksum_.value();
    uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (static_cast<size_t>(in_.gcount()) != sizeof(stored)) {
      return Status::IOError("missing checksum trailer: " + path_);
    }
    if (stored != expected) {
      return Status::IOError("checksum mismatch (corrupt file): " + path_);
    }
    return Status::OK();
  }

 private:
  std::ifstream in_;
  std::string path_;
  uint64_t file_size_ = 0;
  Checksum checksum_;
};

}  // namespace

Status SaveDatasetBinary(const Dataset& data, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IOError("cannot open for writing: " + path);
  w.Raw(kDatasetMagic, sizeof(kDatasetMagic));
  w.Scalar<int32_t>(data.num_users());
  w.Scalar<int32_t>(data.num_items());
  const std::vector<RatingEntry> ratings = data.ToRatingList();
  w.Scalar<uint64_t>(ratings.size());
  for (const RatingEntry& r : ratings) {
    w.Scalar<int32_t>(r.user);
    w.Scalar<int32_t>(r.item);
    w.Scalar<float>(r.value);
  }
  // Metadata sections.
  w.Scalar<int32_t>(data.num_genres);
  w.Vector(data.item_genres);
  w.Vector(data.item_categories);
  w.Vector(data.user_genre_prefs);
  w.Scalar<uint64_t>(data.item_labels.size());
  for (const std::string& label : data.item_labels) w.String(label);
  return w.Finish();
}

Result<Dataset> LoadDatasetBinary(const std::string& path) {
  Reader r(path);
  if (!r.ok()) return Status::IOError("cannot open: " + path);
  char magic[8];
  LT_RETURN_IF_ERROR(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kDatasetMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a longtail dataset file: " + path);
  }
  int32_t num_users = 0;
  int32_t num_items = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_users));
  LT_RETURN_IF_ERROR(r.Scalar(&num_items));
  if (num_users < 0 || num_items < 0) {
    return Status::IOError("negative dimensions in " + path);
  }
  uint64_t num_ratings = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_ratings));
  const uint64_t max_plausible =
      static_cast<uint64_t>(num_users) * static_cast<uint64_t>(num_items);
  constexpr uint64_t kRatingRecordBytes =
      sizeof(int32_t) + sizeof(int32_t) + sizeof(float);
  if (num_ratings > max_plausible || num_ratings > kMaxArrayElements ||
      num_ratings * kRatingRecordBytes > r.Remaining()) {
    return Status::IOError("implausible rating count in " + path);
  }
  std::vector<RatingEntry> ratings;
  ratings.reserve(num_ratings);
  for (uint64_t k = 0; k < num_ratings; ++k) {
    RatingEntry e;
    LT_RETURN_IF_ERROR(r.Scalar(&e.user));
    LT_RETURN_IF_ERROR(r.Scalar(&e.item));
    LT_RETURN_IF_ERROR(r.Scalar(&e.value));
    ratings.push_back(e);
  }
  int32_t num_genres = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_genres));
  std::vector<int32_t> item_genres;
  std::vector<int32_t> item_categories;
  std::vector<double> user_genre_prefs;
  LT_RETURN_IF_ERROR(r.Vector(&item_genres, max_plausible + 1));
  LT_RETURN_IF_ERROR(r.Vector(&item_categories, max_plausible + 1));
  LT_RETURN_IF_ERROR(r.Vector(&user_genre_prefs, max_plausible + 1));
  uint64_t num_labels = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_labels));
  // Each label carries at least its 8-byte length prefix, so the count is
  // also bounded by the bytes left in the file.
  if (num_labels > static_cast<uint64_t>(num_items) ||
      num_labels * sizeof(uint64_t) > r.Remaining()) {
    return Status::IOError("implausible label count in " + path);
  }
  std::vector<std::string> labels(num_labels);
  for (auto& label : labels) LT_RETURN_IF_ERROR(r.String(&label));
  LT_RETURN_IF_ERROR(r.VerifyChecksum());

  LT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(num_users, num_items,
                                                    std::move(ratings)));
  data.num_genres = num_genres;
  data.item_genres = std::move(item_genres);
  data.item_categories = std::move(item_categories);
  data.user_genre_prefs = std::move(user_genre_prefs);
  data.item_labels = std::move(labels);
  return data;
}

Status SaveLdaModel(const LdaModel& model, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IOError("cannot open for writing: " + path);
  w.Raw(kLdaMagic, sizeof(kLdaMagic));
  w.Scalar<uint64_t>(model.theta().rows());
  w.Scalar<uint64_t>(model.phi().cols());
  w.Scalar<int32_t>(model.num_topics());
  w.Vector(model.theta().data());
  w.Vector(model.phi().data());
  return w.Finish();
}

Result<LdaModel> LoadLdaModel(const std::string& path) {
  Reader r(path);
  if (!r.ok()) return Status::IOError("cannot open: " + path);
  char magic[8];
  LT_RETURN_IF_ERROR(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kLdaMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a longtail LDA model file: " + path);
  }
  uint64_t num_users = 0;
  uint64_t num_items = 0;
  int32_t num_topics = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_users));
  LT_RETURN_IF_ERROR(r.Scalar(&num_items));
  LT_RETURN_IF_ERROR(r.Scalar(&num_topics));
  if (num_topics < 1 || num_users == 0 || num_items == 0 ||
      num_users > kMaxArrayElements || num_items > kMaxArrayElements ||
      static_cast<uint64_t>(num_topics) > 1000000ULL) {
    return Status::IOError("invalid LDA model dimensions in " + path);
  }
  const uint64_t k = static_cast<uint64_t>(num_topics);
  if (num_users * k > kMaxArrayElements || k * num_items > kMaxArrayElements) {
    return Status::IOError("implausible LDA model size in " + path);
  }
  std::vector<double> theta_data;
  std::vector<double> phi_data;
  LT_RETURN_IF_ERROR(r.Vector(&theta_data, num_users * k));
  LT_RETURN_IF_ERROR(r.Vector(&phi_data, k * num_items));
  if (theta_data.size() != num_users * k || phi_data.size() != k * num_items) {
    return Status::IOError("parameter matrix size mismatch in " + path);
  }
  LT_RETURN_IF_ERROR(r.VerifyChecksum());

  DenseMatrix theta(num_users, k);
  theta.data() = std::move(theta_data);
  DenseMatrix phi(k, num_items);
  phi.data() = std::move(phi_data);
  return LdaModel::FromParameters(std::move(theta), std::move(phi));
}

}  // namespace longtail
