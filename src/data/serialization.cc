#include "data/serialization.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace longtail {

namespace {

constexpr char kDatasetMagic[8] = {'L', 'T', 'D', 'S', '0', '0', '0', '1'};
constexpr char kLdaMagic[8] = {'L', 'T', 'L', 'M', '0', '0', '0', '1'};

/// FNV-1a over a chunk frame exactly as laid out on disk:
/// tag ‖ version ‖ payload_len ‖ payload.
uint64_t ChunkChecksum(uint32_t tag, uint32_t version,
                       const std::string& payload) {
  const uint64_t len = payload.size();
  uint64_t h = FnvHashBytes(&tag, sizeof(tag));
  h = FnvHashBytes(&version, sizeof(version), h);
  h = FnvHashBytes(&len, sizeof(len), h);
  if (!payload.empty()) h = FnvHashBytes(payload.data(), payload.size(), h);
  return h;
}

}  // namespace

// ------------------------------------------------------------- checkpoint

CheckpointWriter::CheckpointWriter(const std::string& path) : out_(path) {
  if (out_.ok()) out_.Raw(kCheckpointMagic, sizeof(kCheckpointMagic));
}

Status CheckpointWriter::WriteFramed(uint32_t tag, uint32_t version,
                                     const std::string& payload) {
  if (!out_.ok()) {
    return Status::IOError("cannot write checkpoint: " + out_.path());
  }
  out_.Scalar<uint32_t>(tag);
  out_.Scalar<uint32_t>(version);
  out_.Scalar<uint64_t>(payload.size());
  if (!payload.empty()) out_.Raw(payload.data(), payload.size());
  out_.Scalar<uint64_t>(ChunkChecksum(tag, version, payload));
  return Status::OK();
}

Status CheckpointWriter::WriteChunk(uint32_t tag, uint32_t version,
                                    const ChunkWriter& chunk) {
  if (finished_) {
    return Status::FailedPrecondition("WriteChunk after Finish: " +
                                      out_.path());
  }
  if (tag == kChunkEndTag) {
    return Status::InvalidArgument("chunk tag 0 is reserved for the end "
                                   "marker");
  }
  return WriteFramed(tag, version, chunk.payload());
}

Status CheckpointWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice: " + out_.path());
  }
  finished_ = true;
  LT_RETURN_IF_ERROR(WriteFramed(kChunkEndTag, 0, std::string()));
  return out_.Flush();
}

CheckpointReader::CheckpointReader(const std::string& path) : in_(path) {
  if (!in_.ok()) {
    status_ = Status::IOError("cannot open checkpoint: " + path);
    return;
  }
  char magic[8];
  status_ = in_.Raw(magic, sizeof(magic));
  if (status_.ok() &&
      std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    status_ = Status::IOError("not a longtail checkpoint file: " + path);
  }
}

Result<bool> CheckpointReader::Next(ChunkReader* chunk) {
  LT_RETURN_IF_ERROR(status_);
  if (done_) return false;
  uint32_t tag = 0;
  uint32_t version = 0;
  uint64_t len = 0;
  // A clean EOF here is still an error: only the end-marker chunk may
  // terminate the stream, so a missing header means truncation.
  LT_RETURN_IF_ERROR(in_.Scalar(&tag));
  LT_RETURN_IF_ERROR(in_.Scalar(&version));
  LT_RETURN_IF_ERROR(in_.Scalar(&len));
  // Validate the declared payload length (+ its 8-byte checksum) against
  // the bytes actually left in the file before allocating anything.
  const uint64_t remaining = in_.Remaining();
  if (len > remaining || remaining - len < sizeof(uint64_t)) {
    return Status::IOError("implausible chunk length in " + in_.path());
  }
  chunk->tag_ = tag;
  chunk->version_ = version;
  chunk->path_ = in_.path();
  chunk->pos_ = 0;
  chunk->payload_.resize(len);
  if (len > 0) {
    LT_RETURN_IF_ERROR(in_.Raw(chunk->payload_.data(), len));
  }
  uint64_t stored = 0;
  LT_RETURN_IF_ERROR(in_.Scalar(&stored));
  if (stored != ChunkChecksum(tag, version, chunk->payload_)) {
    return Status::IOError("chunk checksum mismatch (corrupt file): " +
                           in_.path());
  }
  if (tag == kChunkEndTag) {
    if (len != 0) {
      return Status::IOError("malformed end marker in " + in_.path());
    }
    // Unlike the monolithic formats, the container is strict about its
    // tail: bytes after the end marker mean a concatenated or partially
    // overwritten file, not a valid checkpoint.
    if (in_.Remaining() != 0) {
      return Status::IOError("trailing bytes after end marker in " +
                             in_.path());
    }
    done_ = true;
    return false;
  }
  return true;
}

void WriteDenseMatrix(const DenseMatrix& m, ChunkWriter* w) {
  w->Scalar<uint64_t>(m.rows());
  w->Scalar<uint64_t>(m.cols());
  w->Vector(m.data());
}

Status ReadDenseMatrix(ChunkReader* r, DenseMatrix* m) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  LT_RETURN_IF_ERROR(r->Scalar(&rows));
  LT_RETURN_IF_ERROR(r->Scalar(&cols));
  if (rows > kMaxSerializedArrayElements ||
      cols > kMaxSerializedArrayElements ||
      (cols > 0 && rows > kMaxSerializedArrayElements / cols)) {
    return Status::IOError("implausible matrix shape in checkpoint chunk");
  }
  // Read straight into the matrix's own storage: large factor/topic
  // tables would otherwise pay a second full-size allocation on the
  // cold-start path this format exists to speed up.
  DenseMatrix out(rows, cols);
  LT_RETURN_IF_ERROR(r->Vector(&out.data(), rows * cols));
  if (out.data().size() != rows * cols) {
    return Status::IOError("matrix element count does not match its shape");
  }
  *m = std::move(out);
  return Status::OK();
}

void WriteLdaModelChunk(const LdaModel& model, ChunkWriter* w) {
  WriteDenseMatrix(model.theta(), w);
  WriteDenseMatrix(model.phi(), w);
}

Result<LdaModel> ReadLdaModelChunk(ChunkReader* r) {
  DenseMatrix theta;
  DenseMatrix phi;
  LT_RETURN_IF_ERROR(ReadDenseMatrix(r, &theta));
  LT_RETURN_IF_ERROR(ReadDenseMatrix(r, &phi));
  return LdaModel::FromParameters(std::move(theta), std::move(phi));
}

// ------------------------------------------------------------ monolithic

Status SaveDatasetBinary(const Dataset& data, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IOError("cannot open for writing: " + path);
  w.Raw(kDatasetMagic, sizeof(kDatasetMagic));
  w.Scalar<int32_t>(data.num_users());
  w.Scalar<int32_t>(data.num_items());
  const std::vector<RatingEntry> ratings = data.ToRatingList();
  w.Scalar<uint64_t>(ratings.size());
  for (const RatingEntry& r : ratings) {
    w.Scalar<int32_t>(r.user);
    w.Scalar<int32_t>(r.item);
    w.Scalar<float>(r.value);
  }
  // Metadata sections.
  w.Scalar<int32_t>(data.num_genres);
  w.Vector(data.item_genres);
  w.Vector(data.item_categories);
  w.Vector(data.user_genre_prefs);
  w.Scalar<uint64_t>(data.item_labels.size());
  for (const std::string& label : data.item_labels) w.String(label);
  return w.Finish();
}

Result<Dataset> LoadDatasetBinary(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IOError("cannot open: " + path);
  char magic[8];
  LT_RETURN_IF_ERROR(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kDatasetMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a longtail dataset file: " + path);
  }
  int32_t num_users = 0;
  int32_t num_items = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_users));
  LT_RETURN_IF_ERROR(r.Scalar(&num_items));
  if (num_users < 0 || num_items < 0) {
    return Status::IOError("negative dimensions in " + path);
  }
  uint64_t num_ratings = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_ratings));
  const uint64_t max_plausible =
      static_cast<uint64_t>(num_users) * static_cast<uint64_t>(num_items);
  constexpr uint64_t kRatingRecordBytes =
      sizeof(int32_t) + sizeof(int32_t) + sizeof(float);
  if (num_ratings > max_plausible ||
      num_ratings > kMaxSerializedArrayElements ||
      num_ratings * kRatingRecordBytes > r.Remaining()) {
    return Status::IOError("implausible rating count in " + path);
  }
  std::vector<RatingEntry> ratings;
  ratings.reserve(num_ratings);
  for (uint64_t k = 0; k < num_ratings; ++k) {
    RatingEntry e;
    LT_RETURN_IF_ERROR(r.Scalar(&e.user));
    LT_RETURN_IF_ERROR(r.Scalar(&e.item));
    LT_RETURN_IF_ERROR(r.Scalar(&e.value));
    ratings.push_back(e);
  }
  int32_t num_genres = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_genres));
  std::vector<int32_t> item_genres;
  std::vector<int32_t> item_categories;
  std::vector<double> user_genre_prefs;
  LT_RETURN_IF_ERROR(r.Vector(&item_genres, max_plausible + 1));
  LT_RETURN_IF_ERROR(r.Vector(&item_categories, max_plausible + 1));
  LT_RETURN_IF_ERROR(r.Vector(&user_genre_prefs, max_plausible + 1));
  uint64_t num_labels = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_labels));
  // Each label carries at least its 8-byte length prefix, so the count is
  // also bounded by the bytes left in the file.
  if (num_labels > static_cast<uint64_t>(num_items) ||
      num_labels * sizeof(uint64_t) > r.Remaining()) {
    return Status::IOError("implausible label count in " + path);
  }
  std::vector<std::string> labels(num_labels);
  for (auto& label : labels) LT_RETURN_IF_ERROR(r.String(&label));
  LT_RETURN_IF_ERROR(r.VerifyChecksum());

  LT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(num_users, num_items,
                                                    std::move(ratings)));
  data.num_genres = num_genres;
  data.item_genres = std::move(item_genres);
  data.item_categories = std::move(item_categories);
  data.user_genre_prefs = std::move(user_genre_prefs);
  data.item_labels = std::move(labels);
  return data;
}

Status SaveLdaModel(const LdaModel& model, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IOError("cannot open for writing: " + path);
  w.Raw(kLdaMagic, sizeof(kLdaMagic));
  w.Scalar<uint64_t>(model.theta().rows());
  w.Scalar<uint64_t>(model.phi().cols());
  w.Scalar<int32_t>(model.num_topics());
  w.Vector(model.theta().data());
  w.Vector(model.phi().data());
  return w.Finish();
}

Result<LdaModel> LoadLdaModel(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IOError("cannot open: " + path);
  char magic[8];
  LT_RETURN_IF_ERROR(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kLdaMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a longtail LDA model file: " + path);
  }
  uint64_t num_users = 0;
  uint64_t num_items = 0;
  int32_t num_topics = 0;
  LT_RETURN_IF_ERROR(r.Scalar(&num_users));
  LT_RETURN_IF_ERROR(r.Scalar(&num_items));
  LT_RETURN_IF_ERROR(r.Scalar(&num_topics));
  if (num_topics < 1 || num_users == 0 || num_items == 0 ||
      num_users > kMaxSerializedArrayElements ||
      num_items > kMaxSerializedArrayElements ||
      static_cast<uint64_t>(num_topics) > 1000000ULL) {
    return Status::IOError("invalid LDA model dimensions in " + path);
  }
  const uint64_t k = static_cast<uint64_t>(num_topics);
  if (num_users * k > kMaxSerializedArrayElements ||
      k * num_items > kMaxSerializedArrayElements) {
    return Status::IOError("implausible LDA model size in " + path);
  }
  std::vector<double> theta_data;
  std::vector<double> phi_data;
  LT_RETURN_IF_ERROR(r.Vector(&theta_data, num_users * k));
  LT_RETURN_IF_ERROR(r.Vector(&phi_data, k * num_items));
  if (theta_data.size() != num_users * k || phi_data.size() != k * num_items) {
    return Status::IOError("parameter matrix size mismatch in " + path);
  }
  LT_RETURN_IF_ERROR(r.VerifyChecksum());

  DenseMatrix theta(num_users, k);
  theta.data() = std::move(theta_data);
  DenseMatrix phi(k, num_items);
  phi.data() = std::move(phi_data);
  return LdaModel::FromParameters(std::move(theta), std::move(phi));
}

}  // namespace longtail
