// Loaders for real MovieLens rating files, so the synthetic substitution
// can be swapped for the genuine corpus when it is available offline.
//
// Supported formats:
//  * MovieLens-1M "ratings.dat":  UserID::MovieID::Rating::Timestamp
//  * MovieLens CSV "ratings.csv": userId,movieId,rating,timestamp (header ok)
// Raw ids are remapped to contiguous 0-based ids in first-seen order.
#ifndef LONGTAIL_DATA_MOVIELENS_IO_H_
#define LONGTAIL_DATA_MOVIELENS_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

struct MovieLensLoadOptions {
  /// "::"-separated (ML-1M) when true; comma-separated CSV when false.
  bool dat_format = true;
  /// Drop users with fewer ratings than this after loading.
  int32_t min_user_ratings = 1;
};

/// Parses a ratings file into a Dataset.
Result<Dataset> LoadMovieLensRatings(const std::string& path,
                                     const MovieLensLoadOptions& options = {});

/// Writes a dataset in ML-1M ratings.dat format (timestamps written as 0).
/// Ids are written 1-based to match the original format.
Status WriteMovieLensRatings(const Dataset& data, const std::string& path);

}  // namespace longtail

#endif  // LONGTAIL_DATA_MOVIELENS_IO_H_
