#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace longtail {

namespace {

const char* kGenreNames[] = {
    "Action",    "Adventure", "Animation", "Children",  "Comedy",
    "Crime",     "Documentary", "Drama",   "Fantasy",   "FilmNoir",
    "Horror",    "Musical",   "Mystery",   "Romance",   "SciFi",
    "Thriller",  "War",       "Western",   "Biography", "History",
    "Sport",     "Music",     "Family",    "Classics"};
constexpr int kNumGenreNames = sizeof(kGenreNames) / sizeof(kGenreNames[0]);

std::string GenreName(int g) {
  if (g < kNumGenreNames) return kGenreNames[g];
  return "Genre" + std::to_string(g);
}

// Dirichlet(alpha) sample via normalized Gamma(alpha, 1) draws
// (Marsaglia–Tsang for alpha < 1 uses the boost trick).
std::vector<double> SampleDirichlet(int k, double alpha, Rng* rng) {
  std::vector<double> x(k);
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    // Gamma(alpha) for alpha possibly < 1: Gamma(alpha) =
    // Gamma(alpha+1) * U^(1/alpha).
    const double shape = alpha < 1.0 ? alpha + 1.0 : alpha;
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    double g = 0.0;
    while (true) {
      double z;
      double v;
      do {
        z = rng->NextGaussian();
        v = 1.0 + c * z;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = rng->NextDouble();
      if (u < 1.0 - 0.0331 * z * z * z * z ||
          std::log(std::max(u, 1e-300)) <
              0.5 * z * z + d * (1.0 - v + std::log(v))) {
        g = d * v;
        break;
      }
    }
    if (alpha < 1.0) {
      const double u = std::max(rng->NextDouble(), 1e-300);
      g *= std::pow(u, 1.0 / alpha);
    }
    x[i] = std::max(g, 1e-12);
    total += x[i];
  }
  for (double& v : x) v /= total;
  return x;
}

}  // namespace

SyntheticSpec SyntheticSpec::MovieLensLike(double scale) {
  LT_CHECK_GT(scale, 0.0);
  SyntheticSpec spec;
  spec.name = "movielens-like";
  spec.num_users = std::max<int32_t>(60, std::lround(6040 * scale));
  spec.num_items = std::max<int32_t>(60, std::lround(3883 * scale));
  // Density is what drives the paper's sparsity effects (§5.2.1), so the
  // mean degree is capped at ~5.5% of the catalog (ML-1M is 4.26% dense;
  // the floor keeps tiny test corpora connected).
  spec.mean_user_degree =
      std::clamp(0.045 * spec.num_items, 12.0, 166.0);
  spec.min_user_degree = 8;
  spec.max_user_degree = 737;
  spec.num_genres = 18;
  spec.zipf_exponent = 1.22;
  spec.genre_affinity = 0.72;
  spec.dirichlet_alpha = 0.25;
  spec.seed = 20120530;
  return spec;
}

SyntheticSpec SyntheticSpec::DoubanLike(double scale) {
  LT_CHECK_GT(scale, 0.0);
  SyntheticSpec spec;
  spec.name = "douban-like";
  spec.num_users = std::max<int32_t>(80, std::lround(383033 * scale));
  spec.num_items = std::max<int32_t>(60, std::lround(89908 * scale));
  // Douban is ~100× sparser than ML (0.039%); at reduced scale we keep it
  // several times sparser while preserving a workable mean degree.
  spec.mean_user_degree =
      std::clamp(0.012 * spec.num_items, 8.0, 35.0);
  spec.min_user_degree = 4;
  spec.max_user_degree = 2000;
  spec.num_genres = 22;
  spec.zipf_exponent = 1.15;  // Heavier skew: 73% tail share target.
  spec.genre_affinity = 0.78;
  spec.dirichlet_alpha = 0.2;
  spec.seed = 20120531;
  return spec;
}

Result<SyntheticData> GenerateSyntheticData(const SyntheticSpec& spec) {
  if (spec.num_users < 1 || spec.num_items < 1) {
    return Status::InvalidArgument("generator needs users and items");
  }
  if (spec.num_genres < 1) {
    return Status::InvalidArgument("generator needs at least one genre");
  }
  if (spec.min_user_degree < 1 ||
      spec.min_user_degree > spec.max_user_degree) {
    return Status::InvalidArgument("invalid user degree bounds");
  }
  if (spec.num_items < spec.min_user_degree) {
    return Status::InvalidArgument(
        "num_items must be >= min_user_degree so every user can be served");
  }
  Rng rng(spec.seed);

  // ---- Items: genre, Zipf popularity weight, ontology leaf. ----
  std::vector<std::string> genre_names(spec.num_genres);
  for (int g = 0; g < spec.num_genres; ++g) genre_names[g] = GenreName(g);
  LT_ASSIGN_OR_RETURN(
      CategoryOntology ontology,
      CategoryOntology::BuildBalanced(genre_names, spec.ontology_sub_per_genre,
                                      spec.ontology_leaf_per_sub));

  std::vector<int32_t> item_genre(spec.num_items);
  std::vector<double> item_pop_weight(spec.num_items);
  std::vector<int32_t> item_category(spec.num_items);
  // Popularity ranks are a random permutation so genre and popularity are
  // independent (as in real catalogs, every genre has hits and niches).
  std::vector<size_t> rank(spec.num_items);
  for (int32_t i = 0; i < spec.num_items; ++i) rank[i] = i;
  rng.Shuffle(&rank);
  for (int32_t i = 0; i < spec.num_items; ++i) {
    item_genre[i] = static_cast<int32_t>(rng.NextUint64(spec.num_genres));
    item_pop_weight[i] =
        1.0 / std::pow(static_cast<double>(rank[i]) + 1.0, spec.zipf_exponent);
    const auto leaves = ontology.LeavesUnderTop(item_genre[i]);
    item_category[i] =
        leaves[static_cast<size_t>(rng.NextUint64(leaves.size()))];
  }

  // Per-genre item pools + samplers.
  std::vector<std::vector<int32_t>> genre_items(spec.num_genres);
  for (int32_t i = 0; i < spec.num_items; ++i) {
    genre_items[item_genre[i]].push_back(i);
  }
  std::vector<std::unique_ptr<DiscreteSampler>> genre_sampler(spec.num_genres);
  for (int g = 0; g < spec.num_genres; ++g) {
    if (genre_items[g].empty()) continue;
    std::vector<double> w(genre_items[g].size());
    for (size_t k = 0; k < w.size(); ++k) {
      w[k] = item_pop_weight[genre_items[g][k]];
    }
    genre_sampler[g] = std::make_unique<DiscreteSampler>(w);
  }
  DiscreteSampler global_sampler(item_pop_weight);

  // ---- Users: Dirichlet preferences and log-normal budgets. ----
  const double mu =
      std::log(spec.mean_user_degree) -
      0.5 * spec.degree_log_sigma * spec.degree_log_sigma;
  std::vector<RatingEntry> ratings;
  ratings.reserve(static_cast<size_t>(spec.num_users) *
                  static_cast<size_t>(spec.mean_user_degree));
  std::vector<double> user_prefs_flat(
      static_cast<size_t>(spec.num_users) * spec.num_genres);

  std::unordered_set<int32_t> chosen;
  for (int32_t u = 0; u < spec.num_users; ++u) {
    const std::vector<double> theta =
        SampleDirichlet(spec.num_genres, spec.dirichlet_alpha, &rng);
    std::copy(theta.begin(), theta.end(),
              user_prefs_flat.begin() +
                  static_cast<size_t>(u) * spec.num_genres);
    const double theta_max = *std::max_element(theta.begin(), theta.end());
    DiscreteSampler pref_sampler(theta);

    // Breadth ∈ [0, 1]: normalized entropy of the genre preference. Broad
    // users rate more (§4.2.2's assumption), scaled by the coupling knob.
    double breadth = 0.0;
    for (double p : theta) {
      if (p > 0.0) breadth -= p * std::log(p);
    }
    breadth /= std::log(static_cast<double>(std::max(2, spec.num_genres)));
    const double budget_mu =
        mu + spec.degree_breadth_coupling * (breadth - 0.5);
    int32_t budget = static_cast<int32_t>(std::lround(
        std::exp(budget_mu + spec.degree_log_sigma * rng.NextGaussian())));
    budget = std::clamp(budget, spec.min_user_degree, spec.max_user_degree);
    budget = std::min(budget, spec.num_items);

    chosen.clear();
    int64_t attempts = 0;
    const int64_t max_attempts = 60LL * budget + 1000;
    while (static_cast<int32_t>(chosen.size()) < budget &&
           attempts < max_attempts) {
      ++attempts;
      int32_t item;
      if (rng.NextDouble() < spec.genre_affinity) {
        const int g = static_cast<int>(pref_sampler.Sample(&rng));
        if (genre_items[g].empty()) continue;
        item = genre_items[g][genre_sampler[g]->Sample(&rng)];
      } else {
        item = static_cast<int32_t>(global_sampler.Sample(&rng));
      }
      if (!chosen.insert(item).second) continue;
      const double pref = theta[item_genre[item]] / theta_max;
      const double raw =
          1.5 + 3.5 * pref + spec.rating_noise_sigma * rng.NextGaussian();
      const float value = static_cast<float>(
          std::clamp<int>(static_cast<int>(std::lround(raw)), 1, 5));
      ratings.push_back({u, item, value});
    }
    // Deterministic fill for the (rare) case rejection sampling stalled.
    for (int32_t i = 0;
         static_cast<int32_t>(chosen.size()) < budget && i < spec.num_items;
         ++i) {
      if (chosen.insert(i).second) {
        ratings.push_back({u, i, 3.0f});
      }
    }
  }

  LT_ASSIGN_OR_RETURN(
      Dataset dataset,
      Dataset::Create(spec.num_users, spec.num_items, std::move(ratings)));
  dataset.item_genres = std::move(item_genre);
  dataset.item_categories = std::move(item_category);
  dataset.user_genre_prefs = std::move(user_prefs_flat);
  dataset.num_genres = spec.num_genres;
  dataset.item_labels.resize(spec.num_items);
  for (int32_t i = 0; i < spec.num_items; ++i) {
    dataset.item_labels[i] =
        spec.name + "-item-" + std::to_string(i) + " (" +
        GenreName(dataset.item_genres[i]) + ")";
  }
  SyntheticData out;
  out.dataset = std::move(dataset);
  out.ontology = std::move(ontology);
  return out;
}

}  // namespace longtail
