// Synthetic rating-data generator calibrated to the paper's datasets
// (§5.1.2). See DESIGN.md §3 for the substitution rationale.
//
// Generative model:
//  * Every item gets a latent genre and a Zipf popularity weight.
//  * Every user draws a Dirichlet genre-preference θ_u (small concentration
//    → taste-specific users exist) and a log-normal rating budget.
//  * Ratings pick a genre from θ_u with probability `genre_affinity` (else
//    globally) and then an item by popularity within that pool; the star
//    value increases with the user's affinity to the item's genre.
// This preserves the two structures the paper's algorithms exercise: a
// heavy-tailed item popularity distribution and genre-clustered co-rating.
#ifndef LONGTAIL_DATA_GENERATOR_H_
#define LONGTAIL_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/ontology.h"
#include "util/status.h"

namespace longtail {

/// Full parameterization of the generator, with presets for the paper's two
/// corpora. `scale` shrinks user/item counts linearly and the mean user
/// degree by sqrt(scale) (a compromise documented in EXPERIMENTS.md: exact
/// density and degree cannot both be preserved when shrinking both axes).
struct SyntheticSpec {
  std::string name = "synthetic";
  int32_t num_users = 1000;
  int32_t num_items = 800;
  /// Mean ratings per user (log-normal with this mean).
  double mean_user_degree = 60.0;
  double degree_log_sigma = 0.85;
  int32_t min_user_degree = 12;
  int32_t max_user_degree = 737;  // MovieLens-1M max (§5.1.2)
  int num_genres = 18;            // MovieLens has 18 genres
  /// Zipf exponent of item popularity (larger → heavier head).
  double zipf_exponent = 0.9;
  /// Probability a rating is drawn from the user's genre preference rather
  /// than global popularity.
  double genre_affinity = 0.75;
  /// Dirichlet concentration of user genre preferences (small → specific).
  double dirichlet_alpha = 0.25;
  /// Couples rating budget to taste breadth: the log-degree mean is shifted
  /// by coupling · (H(θ_u)/log K − ½). The paper's Eq. 10 assumption —
  /// "the broader a user's tastes ..., the more items he/she rates" — is a
  /// real-data regularity the generator must reproduce for item-based
  /// entropy (AC1) to carry signal. 0 disables the coupling (ablation).
  double degree_breadth_coupling = 1.6;
  /// Rating model: value = clamp(round(1.5 + 3.5·pref + noise·σ), 1, 5).
  double rating_noise_sigma = 0.7;
  uint64_t seed = 20120530;  // arXiv date of the paper.

  // Ontology shape (leaves correlate with genres; §5.2.4 substitution).
  int ontology_sub_per_genre = 3;
  int ontology_leaf_per_sub = 4;

  /// MovieLens-1M-like preset: 6040·s users, 3883·s items, 18 genres,
  /// mean degree 166·√s (≥ 20), heavier co-rating (denser matrix).
  static SyntheticSpec MovieLensLike(double scale);
  /// Douban-books-like preset: 383033·s users, 89908·s items, sparser and
  /// more skewed (mean degree 35·√s with a floor of 12, stronger Zipf).
  static SyntheticSpec DoubanLike(double scale);
};

/// A generated corpus: dataset (with genre/category/preference metadata
/// populated) plus the ontology its item_categories refer to.
struct SyntheticData {
  Dataset dataset;
  CategoryOntology ontology;
};

/// Runs the generative model. Deterministic given spec.seed.
Result<SyntheticData> GenerateSyntheticData(const SyntheticSpec& spec);

}  // namespace longtail

#endif  // LONGTAIL_DATA_GENERATOR_H_
