#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace longtail {

Result<Dataset> Dataset::Create(int32_t num_users, int32_t num_items,
                                std::vector<RatingEntry> ratings) {
  if (num_users < 0 || num_items < 0) {
    return Status::InvalidArgument("dataset dimensions must be non-negative");
  }
  for (const RatingEntry& r : ratings) {
    if (r.user < 0 || r.user >= num_users) {
      return Status::OutOfRange("rating has user id " + std::to_string(r.user) +
                                " outside [0, " + std::to_string(num_users) +
                                ")");
    }
    if (r.item < 0 || r.item >= num_items) {
      return Status::OutOfRange("rating has item id " + std::to_string(r.item) +
                                " outside [0, " + std::to_string(num_items) +
                                ")");
    }
    if (!(r.value > 0.0f)) {
      return Status::InvalidArgument(
          "rating values must be positive (got " + std::to_string(r.value) +
          "); the user-item graph requires positive edge weights");
    }
  }
  // Stable sort so the *last* duplicate wins below.
  std::stable_sort(ratings.begin(), ratings.end(),
                   [](const RatingEntry& a, const RatingEntry& b) {
                     return a.user != b.user ? a.user < b.user
                                             : a.item < b.item;
                   });
  Dataset d;
  d.num_users_ = num_users;
  d.num_items_ = num_items;
  d.user_ptr_.assign(num_users + 1, 0);
  d.rating_items_.reserve(ratings.size());
  d.rating_values_.reserve(ratings.size());
  for (size_t i = 0; i < ratings.size();) {
    const UserId u = ratings[i].user;
    const ItemId it = ratings[i].item;
    float value = ratings[i].value;
    while (i < ratings.size() && ratings[i].user == u &&
           ratings[i].item == it) {
      value = ratings[i].value;  // Last duplicate wins.
      ++i;
    }
    d.rating_items_.push_back(it);
    d.rating_values_.push_back(value);
    d.user_ptr_[u + 1] = static_cast<int64_t>(d.rating_items_.size());
  }
  for (int32_t u = 0; u < num_users; ++u) {
    d.user_ptr_[u + 1] = std::max(d.user_ptr_[u + 1], d.user_ptr_[u]);
  }

  // Build the item orientation by counting sort.
  d.item_ptr_.assign(num_items + 1, 0);
  for (ItemId it : d.rating_items_) ++d.item_ptr_[it + 1];
  for (int32_t i = 0; i < num_items; ++i) d.item_ptr_[i + 1] += d.item_ptr_[i];
  d.rated_by_users_.resize(d.rating_items_.size());
  d.rated_by_values_.resize(d.rating_items_.size());
  std::vector<int64_t> next(d.item_ptr_.begin(), d.item_ptr_.end() - 1);
  for (int32_t u = 0; u < num_users; ++u) {
    for (int64_t k = d.user_ptr_[u]; k < d.user_ptr_[u + 1]; ++k) {
      const ItemId it = d.rating_items_[k];
      const int64_t pos = next[it]++;
      d.rated_by_users_[pos] = u;
      d.rated_by_values_[pos] = d.rating_values_[k];
    }
  }
  return d;
}

double Dataset::Density() const {
  const double cells =
      static_cast<double>(num_users_) * static_cast<double>(num_items_);
  return cells > 0 ? static_cast<double>(num_ratings()) / cells : 0.0;
}

bool Dataset::HasRating(UserId user, ItemId item) const {
  const auto items = UserItems(user);
  return std::binary_search(items.begin(), items.end(), item);
}

float Dataset::GetRating(UserId user, ItemId item) const {
  const auto items = UserItems(user);
  const auto it = std::lower_bound(items.begin(), items.end(), item);
  if (it == items.end() || *it != item) return 0.0f;
  return UserValues(user)[static_cast<size_t>(it - items.begin())];
}

std::vector<RatingEntry> Dataset::ToRatingList() const {
  std::vector<RatingEntry> out;
  out.reserve(static_cast<size_t>(num_ratings()));
  for (UserId u = 0; u < num_users_; ++u) {
    const auto items = UserItems(u);
    const auto values = UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      out.push_back({u, items[k], values[k]});
    }
  }
  return out;
}

}  // namespace longtail
