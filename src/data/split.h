// Train/test splitting for the paper's Recall@N protocol (§5.2.1):
// "We randomly select 4000 long tail ratings with 5-stars as the testing
// set and the remaining ratings as training set."
#ifndef LONGTAIL_DATA_SPLIT_H_
#define LONGTAIL_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

/// One held-out (user, long-tail item, rating) test case.
struct TestCase {
  UserId user;
  ItemId item;
  float value;
};

struct LongTailSplitOptions {
  /// Held-out ratings (paper: 4000). Clamped to availability.
  int num_test_cases = 4000;
  /// Only ratings at least this high are eligible (paper: 5 stars).
  float min_rating = 5.0f;
  /// r% rule defining the tail (paper: 20%).
  double tail_rating_share = 0.20;
  /// Users must retain at least this many train ratings after removal, so
  /// graph methods still have an absorbing set.
  int32_t min_remaining_user_degree = 2;
  uint64_t seed = 4000;
};

struct TrainTestSplit {
  Dataset train;
  std::vector<TestCase> test;
};

/// Splits `full` into a training dataset and long-tail 5-star test cases.
/// Metadata (labels/genres/categories/preferences) is copied into `train`.
/// At most one test rating is held out per user, which both matches the
/// protocol's spirit and keeps user degrees intact.
Result<TrainTestSplit> MakeLongTailSplit(const Dataset& full,
                                         const LongTailSplitOptions& options);

/// Samples `count` distinct users with at least `min_degree` ratings
/// (§5.2.2: "We randomly sample a set of 2000 users ... as testing users").
std::vector<UserId> SampleTestUsers(const Dataset& data, int count,
                                    int32_t min_degree, uint64_t seed);

}  // namespace longtail

#endif  // LONGTAIL_DATA_SPLIT_H_
