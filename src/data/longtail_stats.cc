#include "data/longtail_stats.h"

#include <algorithm>
#include <numeric>

#include "util/stats.h"

namespace longtail {

namespace {
// Item ids sorted by (popularity asc, id asc).
std::vector<ItemId> ItemsByPopularityAscending(const Dataset& data) {
  std::vector<ItemId> order(data.num_items());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    const int32_t pa = data.ItemPopularity(a);
    const int32_t pb = data.ItemPopularity(b);
    return pa != pb ? pa < pb : a < b;
  });
  return order;
}
}  // namespace

std::vector<bool> TailItemFlags(const Dataset& data,
                                double tail_rating_share) {
  std::vector<bool> tail(data.num_items(), false);
  const int64_t total = data.num_ratings();
  const double budget = tail_rating_share * static_cast<double>(total);
  const std::vector<ItemId> order = ItemsByPopularityAscending(data);
  double used = 0.0;
  for (ItemId i : order) {
    const double pop = data.ItemPopularity(i);
    if (used + pop > budget) break;
    used += pop;
    tail[i] = true;
  }
  return tail;
}

LongTailStats ComputeLongTailStats(const Dataset& data,
                                   double tail_rating_share) {
  LongTailStats stats;
  stats.num_items = data.num_items();
  stats.total_ratings = data.num_ratings();
  const std::vector<bool> tail = TailItemFlags(data, tail_rating_share);
  int64_t tail_ratings = 0;
  std::vector<double> pops;
  pops.reserve(data.num_items());
  int32_t max_pop = 0;
  int32_t min_pop = data.num_items() > 0 ? data.ItemPopularity(0) : 0;
  for (ItemId i = 0; i < data.num_items(); ++i) {
    const int32_t pop = data.ItemPopularity(i);
    pops.push_back(pop);
    max_pop = std::max(max_pop, pop);
    min_pop = std::min(min_pop, pop);
    if (tail[i]) {
      ++stats.tail_item_count;
      tail_ratings += pop;
    }
  }
  stats.tail_item_fraction =
      stats.num_items > 0
          ? static_cast<double>(stats.tail_item_count) / stats.num_items
          : 0.0;
  stats.tail_rating_share =
      stats.total_ratings > 0
          ? static_cast<double>(tail_ratings) / stats.total_ratings
          : 0.0;
  stats.gini = pops.empty() ? 0.0 : GiniCoefficient(pops);
  stats.max_popularity = max_pop;
  stats.min_popularity = min_pop;
  stats.mean_popularity =
      stats.num_items > 0
          ? static_cast<double>(stats.total_ratings) / stats.num_items
          : 0.0;
  return stats;
}

std::vector<double> PopularityLorenzCurve(const Dataset& data, int points) {
  const std::vector<ItemId> order = ItemsByPopularityAscending(data);
  std::vector<double> cum(order.size() + 1, 0.0);
  for (size_t k = 0; k < order.size(); ++k) {
    cum[k + 1] = cum[k] + data.ItemPopularity(order[k]);
  }
  const double total = cum.back() > 0 ? cum.back() : 1.0;
  std::vector<double> curve(points);
  for (int p = 0; p < points; ++p) {
    const double frac = static_cast<double>(p + 1) / points;
    const size_t idx = static_cast<size_t>(frac * order.size());
    curve[p] = cum[std::min(idx, order.size())] / total;
  }
  return curve;
}

}  // namespace longtail
