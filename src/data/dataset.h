// The in-memory rating dataset: the single source of truth every algorithm
// consumes. Construction validates ids and builds both orientations of the
// rating matrix (user→items and item→users) in CSR form.
#ifndef LONGTAIL_DATA_DATASET_H_
#define LONGTAIL_DATA_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace longtail {

/// Immutable rating dataset with CSR indexes in both orientations.
///
/// Optional metadata (labels, ground-truth genres, ontology categories) is
/// carried for synthetic datasets; algorithms never read it, only
/// evaluation/reporting code does.
class Dataset {
 public:
  Dataset() = default;

  /// Validates ids, deduplicates (user,item) pairs keeping the last value,
  /// and builds indexes. Ratings must have 0 <= user < num_users,
  /// 0 <= item < num_items, value > 0.
  static Result<Dataset> Create(int32_t num_users, int32_t num_items,
                                std::vector<RatingEntry> ratings);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int64_t num_ratings() const {
    return static_cast<int64_t>(rating_items_.size());
  }

  /// Fraction of the user×item matrix that is observed.
  double Density() const;

  /// Items rated by `user`, ascending item id.
  std::span<const ItemId> UserItems(UserId user) const {
    return {rating_items_.data() + user_ptr_[user],
            static_cast<size_t>(user_ptr_[user + 1] - user_ptr_[user])};
  }
  /// Rating values aligned with UserItems(user).
  std::span<const float> UserValues(UserId user) const {
    return {rating_values_.data() + user_ptr_[user],
            static_cast<size_t>(user_ptr_[user + 1] - user_ptr_[user])};
  }
  int32_t UserDegree(UserId user) const {
    return static_cast<int32_t>(user_ptr_[user + 1] - user_ptr_[user]);
  }

  /// Users who rated `item`, ascending user id.
  std::span<const UserId> ItemUsers(ItemId item) const {
    return {rated_by_users_.data() + item_ptr_[item],
            static_cast<size_t>(item_ptr_[item + 1] - item_ptr_[item])};
  }
  /// Rating values aligned with ItemUsers(item).
  std::span<const float> ItemValues(ItemId item) const {
    return {rated_by_values_.data() + item_ptr_[item],
            static_cast<size_t>(item_ptr_[item + 1] - item_ptr_[item])};
  }

  /// Number of ratings an item received — the paper's "popularity" measure
  /// (§5.1.3 "We define the popularity of recommended item as its frequency
  /// of rating").
  int32_t ItemPopularity(ItemId item) const {
    return static_cast<int32_t>(item_ptr_[item + 1] - item_ptr_[item]);
  }

  /// True if (user, item) is observed.
  bool HasRating(UserId user, ItemId item) const;

  /// Rating value or 0 if absent.
  float GetRating(UserId user, ItemId item) const;

  /// Returns all ratings as a flat list (user-major order).
  std::vector<RatingEntry> ToRatingList() const;

  // ---- Optional metadata (may be empty) ----

  /// Display names, e.g. "Sleeping Beauty (1959)"; size num_items or empty.
  std::vector<std::string> item_labels;
  /// Ground-truth latent genre per item (synthetic data); size num_items
  /// or empty. Used to validate LDA topics (Table 1) and the user study.
  std::vector<int32_t> item_genres;
  /// Ontology leaf category per item; size num_items or empty (§5.2.4).
  std::vector<int32_t> item_categories;
  /// Ground-truth user topic preference (synthetic data); row-major
  /// num_users × num_genres, or empty.
  std::vector<double> user_genre_prefs;
  int32_t num_genres = 0;

 private:
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  // user → (item, value), CSR.
  std::vector<int64_t> user_ptr_{0};
  std::vector<ItemId> rating_items_;
  std::vector<float> rating_values_;
  // item → (user, value), CSR.
  std::vector<int64_t> item_ptr_{0};
  std::vector<UserId> rated_by_users_;
  std::vector<float> rated_by_values_;
};

}  // namespace longtail

#endif  // LONGTAIL_DATA_DATASET_H_
