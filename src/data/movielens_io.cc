#include "data/movielens_io.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace longtail {

Result<Dataset> LoadMovieLensRatings(const std::string& path,
                                     const MovieLensLoadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open ratings file: " + path);
  }
  std::unordered_map<int64_t, int32_t> user_map;
  std::unordered_map<int64_t, int32_t> item_map;
  std::vector<RatingEntry> ratings;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields =
        options.dat_format ? SplitBySeparator(trimmed, "::")
                           : Split(trimmed, ',');
    if (!options.dat_format && line_no == 1 &&
        StartsWith(fields[0], "userId")) {
      continue;  // CSV header.
    }
    if (fields.size() < 3) {
      return Status::IOError("malformed line " + std::to_string(line_no) +
                             " in " + path + ": " + trimmed);
    }
    char* end = nullptr;
    const int64_t raw_user = std::strtoll(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str()) {
      return Status::IOError("bad user id at line " + std::to_string(line_no));
    }
    const int64_t raw_item = std::strtoll(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str()) {
      return Status::IOError("bad item id at line " + std::to_string(line_no));
    }
    const double value = std::strtod(fields[2].c_str(), &end);
    if (end == fields[2].c_str() || value <= 0.0) {
      return Status::IOError("bad rating at line " + std::to_string(line_no));
    }
    const auto [uit, unew] =
        user_map.try_emplace(raw_user, static_cast<int32_t>(user_map.size()));
    const auto [iit, inew] =
        item_map.try_emplace(raw_item, static_cast<int32_t>(item_map.size()));
    ratings.push_back({uit->second, iit->second, static_cast<float>(value)});
  }
  if (ratings.empty()) {
    return Status::IOError("no ratings parsed from " + path);
  }

  if (options.min_user_ratings > 1) {
    std::vector<int32_t> counts(user_map.size(), 0);
    for (const RatingEntry& r : ratings) ++counts[r.user];
    // Remap surviving users contiguously.
    std::vector<int32_t> remap(user_map.size(), -1);
    int32_t next_id = 0;
    for (size_t u = 0; u < counts.size(); ++u) {
      if (counts[u] >= options.min_user_ratings) remap[u] = next_id++;
    }
    std::vector<RatingEntry> kept;
    kept.reserve(ratings.size());
    for (const RatingEntry& r : ratings) {
      if (remap[r.user] >= 0) {
        kept.push_back({remap[r.user], r.item, r.value});
      }
    }
    ratings = std::move(kept);
    return Dataset::Create(next_id, static_cast<int32_t>(item_map.size()),
                           std::move(ratings));
  }
  return Dataset::Create(static_cast<int32_t>(user_map.size()),
                         static_cast<int32_t>(item_map.size()),
                         std::move(ratings));
}

Status WriteMovieLensRatings(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (UserId u = 0; u < data.num_users(); ++u) {
    const auto items = data.UserItems(u);
    const auto values = data.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      out << (u + 1) << "::" << (items[k] + 1) << "::" << values[k] << "::0\n";
    }
  }
  if (!out.good()) {
    return Status::IOError("write failed for: " + path);
  }
  return Status::OK();
}

}  // namespace longtail
