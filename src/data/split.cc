#include "data/split.h"

#include <algorithm>
#include <unordered_set>

#include "data/longtail_stats.h"
#include "util/random.h"

namespace longtail {

Result<TrainTestSplit> MakeLongTailSplit(const Dataset& full,
                                         const LongTailSplitOptions& options) {
  if (options.num_test_cases < 1) {
    return Status::InvalidArgument("num_test_cases must be >= 1");
  }
  const std::vector<bool> tail = TailItemFlags(full, options.tail_rating_share);

  // Candidate pool: high ratings on tail items by users with enough other
  // ratings.
  std::vector<TestCase> pool;
  for (UserId u = 0; u < full.num_users(); ++u) {
    if (full.UserDegree(u) < options.min_remaining_user_degree + 1) continue;
    const auto items = full.UserItems(u);
    const auto values = full.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      if (values[k] >= options.min_rating && tail[items[k]]) {
        pool.push_back({u, items[k], values[k]});
      }
    }
  }
  if (pool.empty()) {
    return Status::FailedPrecondition(
        "no eligible long-tail test ratings; lower min_rating or raise the "
        "tail share");
  }

  Rng rng(options.seed);
  rng.Shuffle(&pool);
  // Keep at most one held-out rating per user, up to num_test_cases.
  std::vector<TestCase> test;
  std::unordered_set<UserId> used_users;
  for (const TestCase& c : pool) {
    if (static_cast<int>(test.size()) >= options.num_test_cases) break;
    if (!used_users.insert(c.user).second) continue;
    test.push_back(c);
  }

  // Remove the held-out ratings from the training copy.
  std::unordered_set<int64_t> removed;
  removed.reserve(test.size() * 2);
  auto key = [&](UserId u, ItemId i) {
    return static_cast<int64_t>(u) * full.num_items() + i;
  };
  for (const TestCase& c : test) removed.insert(key(c.user, c.item));
  std::vector<RatingEntry> train_ratings;
  train_ratings.reserve(static_cast<size_t>(full.num_ratings()));
  for (const RatingEntry& r : full.ToRatingList()) {
    if (removed.count(key(r.user, r.item))) continue;
    train_ratings.push_back(r);
  }
  LT_ASSIGN_OR_RETURN(Dataset train,
                      Dataset::Create(full.num_users(), full.num_items(),
                                      std::move(train_ratings)));
  train.item_labels = full.item_labels;
  train.item_genres = full.item_genres;
  train.item_categories = full.item_categories;
  train.user_genre_prefs = full.user_genre_prefs;
  train.num_genres = full.num_genres;
  TrainTestSplit split;
  split.train = std::move(train);
  split.test = std::move(test);
  return split;
}

std::vector<UserId> SampleTestUsers(const Dataset& data, int count,
                                    int32_t min_degree, uint64_t seed) {
  std::vector<UserId> eligible;
  for (UserId u = 0; u < data.num_users(); ++u) {
    if (data.UserDegree(u) >= min_degree) eligible.push_back(u);
  }
  Rng rng(seed);
  rng.Shuffle(&eligible);
  if (static_cast<int>(eligible.size()) > count) eligible.resize(count);
  std::sort(eligible.begin(), eligible.end());
  return eligible;
}

}  // namespace longtail
