#include "topics/lda.h"

#include <algorithm>
#include <cmath>

#include "core/recommender.h"
#include "util/logging.h"
#include "util/random.h"

namespace longtail {

Result<LdaModel> LdaModel::Train(const Dataset& data,
                                 const LdaOptions& options) {
  if (options.num_topics < 1) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (data.num_ratings() == 0) {
    return Status::InvalidArgument("cannot train LDA on an empty dataset");
  }
  if (options.beta <= 0.0) {
    return Status::InvalidArgument("beta must be positive");
  }
  const int k = options.num_topics;
  const double alpha =
      options.alpha > 0.0 ? options.alpha : 50.0 / static_cast<double>(k);
  const double beta = options.beta;
  const int32_t num_users = data.num_users();
  const int32_t num_items = data.num_items();

  // Expand ratings into tokens: item repeated round(w(u,i)) times
  // (Algorithm 2's topic set T_ij of size w(i,j)).
  std::vector<int32_t> token_item;
  std::vector<int64_t> user_token_ptr(num_users + 1, 0);
  {
    int64_t total = 0;
    for (UserId u = 0; u < num_users; ++u) {
      const auto values = data.UserValues(u);
      for (float v : values) {
        total += options.rating_as_frequency
                     ? std::max<int64_t>(1, std::llround(v))
                     : 1;
      }
      user_token_ptr[u + 1] = total;
    }
    token_item.resize(total);
    int64_t pos = 0;
    for (UserId u = 0; u < num_users; ++u) {
      const auto items = data.UserItems(u);
      const auto values = data.UserValues(u);
      for (size_t j = 0; j < items.size(); ++j) {
        const int64_t mult = options.rating_as_frequency
                                 ? std::max<int64_t>(1, std::llround(values[j]))
                                 : 1;
        for (int64_t t = 0; t < mult; ++t) token_item[pos++] = items[j];
      }
    }
  }
  const int64_t num_tokens = static_cast<int64_t>(token_item.size());

  // Count arrays (paper's N1..N4): item-topic, user-topic, topic totals,
  // user totals.
  std::vector<int32_t> n_iz(static_cast<size_t>(num_items) * k, 0);
  std::vector<int32_t> n_uz(static_cast<size_t>(num_users) * k, 0);
  std::vector<int64_t> n_z(k, 0);
  std::vector<int8_t> unused;  // (n_u is implied by user_token_ptr)
  std::vector<int32_t> assignment(num_tokens);

  Rng rng(options.seed);
  for (UserId u = 0; u < num_users; ++u) {
    for (int64_t t = user_token_ptr[u]; t < user_token_ptr[u + 1]; ++t) {
      const int32_t z = static_cast<int32_t>(rng.NextUint64(k));
      assignment[t] = z;
      ++n_iz[static_cast<size_t>(token_item[t]) * k + z];
      ++n_uz[static_cast<size_t>(u) * k + z];
      ++n_z[z];
    }
  }

  // Collapsed Gibbs sweeps (Eq. 12). The per-user denominator
  // (n_u + K α) is constant within a token and drops out of sampling.
  std::vector<double> topic_weight(k);
  const double item_smoothing = num_items * beta;
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (UserId u = 0; u < num_users; ++u) {
      int32_t* user_counts = &n_uz[static_cast<size_t>(u) * k];
      for (int64_t t = user_token_ptr[u]; t < user_token_ptr[u + 1]; ++t) {
        const int32_t item = token_item[t];
        int32_t* item_counts = &n_iz[static_cast<size_t>(item) * k];
        const int32_t old_z = assignment[t];
        --item_counts[old_z];
        --user_counts[old_z];
        --n_z[old_z];
        double total = 0.0;
        for (int z = 0; z < k; ++z) {
          const double w = (item_counts[z] + beta) /
                           (static_cast<double>(n_z[z]) + item_smoothing) *
                           (user_counts[z] + alpha);
          topic_weight[z] = w;
          total += w;
        }
        double r = rng.NextDouble() * total;
        int32_t new_z = k - 1;
        for (int z = 0; z < k; ++z) {
          r -= topic_weight[z];
          if (r <= 0.0) {
            new_z = z;
            break;
          }
        }
        assignment[t] = new_z;
        ++item_counts[new_z];
        ++user_counts[new_z];
        ++n_z[new_z];
      }
    }
  }

  // Point estimates (Eq. 13–14).
  LdaModel model;
  model.num_topics_ = k;
  model.theta_ = DenseMatrix(num_users, k);
  model.phi_ = DenseMatrix(k, num_items);
  for (UserId u = 0; u < num_users; ++u) {
    const double n_u =
        static_cast<double>(user_token_ptr[u + 1] - user_token_ptr[u]);
    const double denom = n_u + k * alpha;
    for (int z = 0; z < k; ++z) {
      model.theta_(u, z) =
          (n_uz[static_cast<size_t>(u) * k + z] + alpha) / denom;
    }
  }
  for (int z = 0; z < k; ++z) {
    const double denom = static_cast<double>(n_z[z]) + item_smoothing;
    for (ItemId i = 0; i < num_items; ++i) {
      model.phi_(z, i) = (n_iz[static_cast<size_t>(i) * k + z] + beta) / denom;
    }
  }
  return model;
}

Result<LdaModel> LdaModel::FromParameters(DenseMatrix theta, DenseMatrix phi) {
  if (theta.cols() == 0 || theta.cols() != phi.rows()) {
    return Status::InvalidArgument(
        "theta columns must equal phi rows (the topic count K >= 1)");
  }
  auto check_rows = [](const DenseMatrix& m, const char* name) -> Status {
    for (size_t r = 0; r < m.rows(); ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < m.cols(); ++c) {
        if (m(r, c) < 0.0) {
          return Status::InvalidArgument(std::string(name) +
                                         " has a negative probability");
        }
        sum += m(r, c);
      }
      if (sum < 0.99 || sum > 1.01) {
        return Status::InvalidArgument(std::string(name) + " row " +
                                       std::to_string(r) +
                                       " does not sum to 1");
      }
    }
    return Status::OK();
  };
  LT_RETURN_IF_ERROR(check_rows(theta, "theta"));
  LT_RETURN_IF_ERROR(check_rows(phi, "phi"));
  LdaModel model;
  model.num_topics_ = static_cast<int>(theta.cols());
  model.theta_ = std::move(theta);
  model.phi_ = std::move(phi);
  return model;
}

double LdaModel::Score(UserId user, ItemId item) const {
  const auto theta_row = theta_.Row(user);
  double s = 0.0;
  for (int z = 0; z < num_topics_; ++z) s += theta_row[z] * phi_(z, item);
  return s;
}

std::vector<std::vector<ScoredItem>> LdaModel::TopItemsPerTopic(int n) const {
  std::vector<std::vector<ScoredItem>> out(num_topics_);
  for (int z = 0; z < num_topics_; ++z) {
    std::vector<ScoredItem> all;
    all.reserve(phi_.cols());
    for (size_t i = 0; i < phi_.cols(); ++i) {
      all.push_back({static_cast<ItemId>(i), phi_(z, i)});
    }
    out[z] = TopKScoredItems(std::move(all), n);
  }
  return out;
}

double LdaModel::TokenLogLikelihood(const Dataset& data) const {
  double ll = 0.0;
  double tokens = 0.0;
  for (UserId u = 0; u < data.num_users(); ++u) {
    const auto items = data.UserItems(u);
    const auto values = data.UserValues(u);
    for (size_t j = 0; j < items.size(); ++j) {
      const double mult =
          std::max(1.0, std::round(static_cast<double>(values[j])));
      const double p = std::max(1e-300, Score(u, items[j]));
      ll += mult * std::log(p);
      tokens += mult;
    }
  }
  return tokens > 0 ? ll / tokens : 0.0;
}

}  // namespace longtail
