// LDA over user-item rating data with collapsed Gibbs sampling
// (§4.2.3, Figure 3, Algorithm 2).
//
// Each user is a "document"; each rated item is a "word" whose multiplicity
// is the rating value w(u,i) ("w(u,i) is viewed as the frequency of the
// item's appearance in the item set S_u rated by u"). Per-topic item
// distributions φ and per-user topic distributions θ come from the standard
// collapsed-Gibbs count estimators (Eq. 12–14).
#ifndef LONGTAIL_TOPICS_LDA_H_
#define LONGTAIL_TOPICS_LDA_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "data/dataset.h"
#include "linalg/dense.h"
#include "util/status.h"

namespace longtail {

struct LdaOptions {
  /// K, the number of latent topics.
  int num_topics = 20;
  /// Dirichlet prior on θ; <= 0 selects the paper default 50/K.
  double alpha = -1.0;
  /// Dirichlet prior on φ (paper default 0.1).
  double beta = 0.1;
  /// Gibbs sweeps over all tokens.
  int iterations = 100;
  uint64_t seed = 7;
  /// Token multiplicity = round(rating) (paper) vs 1 per rating (ablation).
  bool rating_as_frequency = true;
};

/// A trained LDA model: θ (num_users × K) and φ (K × num_items).
class LdaModel {
 public:
  /// Runs collapsed Gibbs sampling. Fails on empty datasets or K < 1.
  static Result<LdaModel> Train(const Dataset& data, const LdaOptions& options);

  /// Reconstructs a model from parameter matrices (deserialization / tests).
  /// θ must be num_users × K with rows summing to ~1; φ must be
  /// K × num_items with rows summing to ~1.
  static Result<LdaModel> FromParameters(DenseMatrix theta, DenseMatrix phi);

  int num_topics() const { return num_topics_; }
  /// Per-user topic distribution; rows sum to 1.
  const DenseMatrix& theta() const { return theta_; }
  /// Per-topic item distribution; rows sum to 1.
  const DenseMatrix& phi() const { return phi_; }

  /// Predictive relevance: score(u, i) = Σ_z θ_uz φ_zi.
  double Score(UserId user, ItemId item) const;

  /// Top-n most probable items for every topic (Table 1).
  std::vector<std::vector<ScoredItem>> TopItemsPerTopic(int n) const;

  /// Per-token held-in log likelihood Σ log p(item|u) / #tokens; increases
  /// (noisily) over Gibbs iterations — used by convergence tests.
  double TokenLogLikelihood(const Dataset& data) const;

 private:
  int num_topics_ = 0;
  DenseMatrix theta_;
  DenseMatrix phi_;
};

}  // namespace longtail

#endif  // LONGTAIL_TOPICS_LDA_H_
