// Deterministic pseudo-random number generation.
//
// Rng wraps xoshiro256** seeded via SplitMix64. Every stochastic component in
// longtail takes an explicit seed so experiments are reproducible bit-for-bit
// across runs (given the same thread count for parallel sections).
#ifndef LONGTAIL_UTIL_RANDOM_H_
#define LONGTAIL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace longtail {

/// SplitMix64 step: used for seeding and cheap hashing.
uint64_t SplitMix64(uint64_t* state);

/// Fast, high-quality PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Linear scan; for tight loops prefer DiscreteSampler below.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Zipf-like sample over ranks [0, n): P(k) proportional to 1/(k+1)^s.
  /// Uses rejection-inversion; O(1) expected time.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct values from [0, n) (k <= n), order unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Alias-method sampler for repeated draws from one discrete distribution.
/// Build is O(n); each Sample is O(1).
class DiscreteSampler {
 public:
  /// `weights` are unnormalized and non-negative; at least one must be > 0.
  explicit DiscreteSampler(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace longtail

#endif  // LONGTAIL_UTIL_RANDOM_H_
