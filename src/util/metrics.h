// Process-wide metrics: counters, gauges and fixed-bucket histograms with a
// Prometheus text exposition (format 0.0.4) via MetricsRegistry::ExportText().
//
// Hot-path cost model: Counter::Increment, Gauge::Set/Add and
// Histogram::Observe are lock-free (relaxed atomics / CAS loops); only
// instrument *registration* and ExportText() take the registry mutex.
// Components therefore register once at construction and hold raw instrument
// pointers, which stay valid for the registry's lifetime (instruments are
// never deleted, matching prometheus-cpp semantics).
//
// Two registration styles:
//   * Owned instruments (RegisterCounter/RegisterGauge/RegisterHistogram):
//     the registry owns the storage; callers increment through the returned
//     pointer. Get-or-create: registering the same (name, labels) twice
//     returns the same instrument, so independent components can share one.
//   * Callback instruments (RegisterCallbackCounter/RegisterCallbackGauge):
//     the value is read at export time from a caller-supplied closure — the
//     component keeps its own atomics as the source of truth (the
//     ServingEngine does this so EngineStats snapshot ordering is unchanged)
//     and the registry merely scrapes them. Because the closure may capture
//     `this` of a shorter-lived component, every callback is tagged with an
//     `owner` token and MUST be dropped via ReleaseCallbacks(owner) before
//     the component dies. Callbacks run under the registry mutex during
//     ExportText() and must not call back into the registry.
#ifndef LONGTAIL_UTIL_METRICS_H_
#define LONGTAIL_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace longtail {

/// Atomically raises `target` to at least `value` (a lost-update-free
/// fetch-max: plain `if (v > load) store(v)` drops concurrent maxima).
/// Returns the previous value. Relaxed ordering — callers that need the max
/// to order against other data must fence themselves; stats counters do not.
inline uint64_t AtomicFetchMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t prev = target.load(std::memory_order_relaxed);
  while (value > prev && !target.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
    // compare_exchange_weak reloads `prev` on failure (including spurious
    // failures); the loop exits once the stored value is >= `value`.
  }
  return prev;
}

/// Label set attached to one time series. std::map keeps label order
/// deterministic so exposition output is stable and (name, labels) lookup
/// keys are canonical.
using MetricLabels = std::map<std::string, std::string>;

/// Monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Settable point-in-time value. Lock-free (CAS loop: atomic<double> has no
/// fetch_add on this toolchain's lock-free path).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  void Decrement() { Add(-1.0); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration and
/// immutable; Observe() is lock-free (one relaxed fetch_add plus a CAS-loop
/// double add for the sum). `_count` is derived from the bucket slots at
/// export time, so `_count` always equals the `+Inf` cumulative bucket even
/// under concurrent observation.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; an implicit +Inf bucket is added.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Upper bounds excluding +Inf.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-slot (non-cumulative) counts; slot bounds_.size() is the +Inf slot.
  std::vector<uint64_t> SlotCounts() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Count() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Bucket-bound builders mirroring the Prometheus client helpers.
std::vector<double> LinearBuckets(double start, double width, int count);
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// Registry: named metric families, each with one child per label set.
/// Thread-safe. Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*, label
/// names [a-zA-Z_][a-zA-Z0-9_]*; violations and type conflicts (same name
/// registered as two different types) crash via LT_CHECK — metric names are
/// compile-time-ish constants, not user input.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           const MetricLabels& labels = {});
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       const MetricLabels& labels = {});
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const MetricLabels& labels = {});

  /// Export-time-evaluated series. `owner` tags the callback for
  /// ReleaseCallbacks; it is an identity token (usually the component's
  /// `this`), never dereferenced. Re-registering an existing
  /// (name, labels) replaces the callback.
  void RegisterCallbackCounter(const std::string& name,
                               const std::string& help,
                               const MetricLabels& labels,
                               std::function<uint64_t()> fn,
                               const void* owner);
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             const MetricLabels& labels,
                             std::function<double()> fn, const void* owner);

  /// Drops every callback registered with `owner`. Must be called before the
  /// owning component is destroyed; owned instruments are unaffected.
  void ReleaseCallbacks(const void* owner);

  /// Prometheus text exposition format 0.0.4: families sorted by name,
  /// children sorted by serialized labels, `# HELP` / `# TYPE` headers,
  /// histogram `_bucket{le=...}` series cumulative and capped by `+Inf`,
  /// with `_sum` and `_count`. Callback instruments are sampled inside this
  /// call, under the registry mutex.
  std::string ExportText() const;

 private:
  struct Child;
  struct Family;

  enum class MetricType { kCounter, kGauge, kHistogram };

  Family* GetOrCreateFamily(const std::string& name, const std::string& help,
                            MetricType type);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Family>> families_;
};

}  // namespace longtail

#endif  // LONGTAIL_UTIL_METRICS_H_
