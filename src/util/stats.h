// Streaming summary statistics and percentile helpers for reports.
#ifndef LONGTAIL_UTIL_STATS_H_
#define LONGTAIL_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace longtail {

/// Welford online mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (p in [0,100]) by linear interpolation.
/// Copies and sorts internally; fine for report-sized vectors.
double Percentile(std::vector<double> values, double p);

/// Gini coefficient of a non-negative value vector (0 = equal, →1 = skewed).
/// Used to characterize item-popularity concentration.
double GiniCoefficient(std::vector<double> values);

}  // namespace longtail

#endif  // LONGTAIL_UTIL_STATS_H_
