// Fixed-size thread pool with a ParallelFor convenience used by the
// evaluation harness (per-user recommendation is embarrassingly parallel).
#ifndef LONGTAIL_UTIL_THREAD_POOL_H_
#define LONGTAIL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace longtail {

/// A basic work-queue thread pool. Tasks must not throw.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks may run in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) on the pool's workers, pulling dynamic
  /// chunks so uneven per-index costs stay balanced. Blocks until every
  /// iteration completes. fn must be thread-safe and must not throw. Do not
  /// interleave with concurrent Submit/Wait callers (the completion wait is
  /// pool-wide).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n), splitting contiguous chunks across
/// `num_threads` worker threads (0 = hardware concurrency). Blocks until all
/// iterations complete. fn must be thread-safe.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace longtail

#endif  // LONGTAIL_UTIL_THREAD_POOL_H_
