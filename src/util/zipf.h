// Seed-deterministic Zipf(s) sampler over ranks [0, n).
//
// Serving traffic against a recommender is heavily skewed: a small head of
// active users produces most queries while the long tail of users appears
// rarely — the same power-law shape the paper measures on the *item* side.
// The load harness (bench_load) models arrivals with a Zipf distribution,
// the standard choice for key popularity in storage/serving benchmarks
// (YCSB uses exponent 0.99).
//
// Determinism contract: Sample() consumes exactly one rng() draw and maps
// it through a precomputed CDF with arithmetic only — no
// std::*_distribution, whose sequences are implementation-defined. Two
// samplers with equal (n, exponent) fed by equal-seeded generators produce
// identical rank streams on any platform, which is what makes load-harness
// runs and the bench JSON reproducible run-to-run.
#ifndef LONGTAIL_UTIL_ZIPF_H_
#define LONGTAIL_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace longtail {

/// Zipf over ranks 0..n-1: P(rank k) ∝ 1 / (k+1)^s. Rank 0 is the hottest.
/// Build cost O(n) time and memory; Sample is O(log n) (CDF bisection).
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `exponent` (s) must be >= 0. s = 0 degenerates to
  /// uniform; larger s concentrates mass in the head.
  ZipfDistribution(size_t n, double exponent);

  /// Draws one rank, consuming exactly one rng() value.
  size_t Sample(std::mt19937_64& rng) const;

  /// Probability of `rank` (0-based).
  double Mass(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  /// cdf_[k] = P(rank <= k); cdf_.back() == 1.0 exactly.
  std::vector<double> cdf_;
  double exponent_ = 0.0;
};

/// The canonical uint64 → [0, 1) double mapping (53 mantissa bits), shared
/// so every sampler in the harness draws uniforms the same way.
inline double UniformDouble(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

}  // namespace longtail

#endif  // LONGTAIL_UTIL_ZIPF_H_
