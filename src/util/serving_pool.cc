#include "util/serving_pool.h"

#include <algorithm>

#include "util/metrics.h"

namespace longtail {

namespace {

/// The pool owning the current thread, set for the lifetime of a worker
/// thread; nullptr on non-pool threads. Per-pool (not a plain flag) so a
/// worker of one pool can still fan out on a different pool.
thread_local const ServingPool* tls_worker_pool = nullptr;

}  // namespace

ServingPool::ServingPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingPool::~ServingPool() {
  BindMetrics(nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ServingPool::BindMetrics(MetricsRegistry* registry) {
  if (metrics_ != nullptr) metrics_->ReleaseCallbacks(this);
  metrics_ = registry;
  if (registry == nullptr) return;
  registry->RegisterCallbackCounter(
      "longtail_pool_parallel_for_total",
      "ParallelFor invocations on this pool.", {},
      [this] { return parallel_for_calls_.load(std::memory_order_relaxed); },
      this);
  registry->RegisterCallbackCounter(
      "longtail_pool_helper_dispatches_total",
      "Helper tasks handed to pool workers.", {},
      [this] { return helper_dispatches_.load(std::memory_order_relaxed); },
      this);
  registry->RegisterCallbackGauge(
      "longtail_pool_active_participants",
      "Threads currently draining a job (callers + helpers).", {},
      [this] {
        return static_cast<double>(
            active_participants_.load(std::memory_order_relaxed));
      },
      this);
  registry->RegisterCallbackGauge(
      "longtail_pool_threads", "Worker threads in this pool.", {},
      [this] { return static_cast<double>(threads_.size()); }, this);
}

void ServingPool::DrainJobCounted(Job* job) {
  active_participants_.fetch_add(1, std::memory_order_relaxed);
  DrainJob(job);
  active_participants_.fetch_sub(1, std::memory_order_relaxed);
}

ServingPool& ServingPool::Global() {
  // Deliberately leaked: the pool (and each worker's pinned thread_local
  // workspaces) must outlive every static object that might query during
  // program teardown, and the pointer stays reachable so leak checkers
  // do not report it.
  static ServingPool* pool = new ServingPool();
  return *pool;
}

bool ServingPool::InWorker() { return tls_worker_pool != nullptr; }

void ServingPool::DrainJob(Job* job) {
  while (true) {
    const size_t begin =
        job->next.fetch_add(job->grain, std::memory_order_relaxed);
    if (begin >= job->n) return;
    const size_t end = std::min(job->n, begin + job->grain);
    for (size_t i = begin; i < end; ++i) (*job->fn)(i);
  }
}

void ServingPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      job = queue_.front();
      queue_.pop_front();
    }
    DrainJobCounted(job);
    // fetch_sub under the job mutex so the caller cannot observe
    // pending == 0, return, and destroy the job while this worker still
    // holds a reference to it.
    {
      std::lock_guard<std::mutex> lock(job->mu);
      if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->done_cv.notify_one();
      }
    }
  }
}

void ServingPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                              size_t parallelism, size_t grain) {
  if (n == 0) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  size_t workers = parallelism == 0 ? threads_.size() : parallelism;
  workers = std::min(workers, n);
  // Helpers beyond the caller come from the pool; a call re-entrant on
  // the *same* pool keeps everything on the current worker (its siblings
  // may be blocked in their own ParallelFor waits, so queued helpers might
  // never be scheduled). A worker of another pool is an ordinary caller.
  const size_t helpers =
      tls_worker_pool == this
          ? 0
          : std::min(workers > 0 ? workers - 1 : 0, threads_.size());
  if (grain == 0) {
    const size_t active = helpers + 1;
    grain = std::clamp<size_t>(n / (active * 8), 1, 1024);
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = grain;
  if (helpers == 0) {
    DrainJobCounted(&job);
    return;
  }
  helper_dispatches_.fetch_add(helpers, std::memory_order_relaxed);
  job.pending.store(helpers, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (size_t t = 0; t < helpers; ++t) queue_.push_back(&job);
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  // The caller is the first worker: progress is guaranteed even when every
  // pool thread is busy with other callers' jobs.
  DrainJobCounted(&job);
  // The job is drained; helper entries still sitting in the queue would
  // only be popped and discarded. Dequeue them here so this batch's
  // completion never waits behind other batches' work.
  {
    std::unique_lock<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (*it == &job) {
        it = queue_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    if (removed > 0) {
      job.pending.fetch_sub(removed, std::memory_order_acq_rel);
    }
  }
  std::unique_lock<std::mutex> lock(job.mu);
  job.done_cv.wait(lock, [&job] {
    return job.pending.load(std::memory_order_acquire) == 0;
  });
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  ServingPool::Global().ParallelFor(n, fn, num_threads);
}

}  // namespace longtail
