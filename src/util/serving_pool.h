// Process-lifetime serving thread pool shared by every batch query.
//
// The first batch engine spun up a fresh thread pool per QueryBatch call:
// thread creation/teardown on every batch and cold per-worker walk
// workspaces. ServingPool replaces it with one long-lived pool (Global()),
// so worker threads — and the thread_local WalkWorkspace each graph query
// pins to its worker — survive across batches. In the steady state a batch
// costs no thread spawns and no workspace growth: the global-sized lookup
// tables and CSR buffers are sized once per worker and reused forever.
//
// Scheduling model: ParallelFor enqueues helper tasks that claim index
// ranges from a shared atomic cursor, and the *calling thread participates
// as a worker itself*. The caller therefore always makes progress even when
// every pool thread is busy serving other batches, so any number of
// concurrent callers can share one pool without deadlock. Re-entrant calls
// (a pool task calling ParallelFor) run inline on the calling worker for
// the same reason.
#ifndef LONGTAIL_UTIL_SERVING_POOL_H_
#define LONGTAIL_UTIL_SERVING_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace longtail {

class MetricsRegistry;

/// A long-lived work-sharing pool. Construction spawns the workers once;
/// every ParallelFor afterwards reuses them. Tasks must not throw.
class ServingPool {
 public:
  /// `num_threads == 0` means hardware concurrency (at least 1).
  explicit ServingPool(size_t num_threads = 0);
  ~ServingPool();

  ServingPool(const ServingPool&) = delete;
  ServingPool& operator=(const ServingPool&) = delete;

  /// The process-lifetime pool every batch shares by default. Created on
  /// first use with hardware concurrency and intentionally never destroyed
  /// (its workers and their pinned workspaces live as long as the process).
  static ServingPool& Global();

  /// Runs fn(i) for i in [0, n) and blocks until every iteration completes.
  /// At most `parallelism` threads participate, *including the caller*
  /// (0 = pool width, 1 = fully inline on the calling thread). `grain` is
  /// the number of consecutive indices claimed per cursor grab (0 = auto;
  /// pass 1 when per-index cost is heavy or skewed, e.g. subgraph walks).
  /// fn must be thread-safe and must not throw. Safe to call from multiple
  /// threads at once and re-entrantly from inside a task (runs inline).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t parallelism = 0, size_t grain = 0);

  size_t num_threads() const { return threads_.size(); }

  /// True while the calling thread is one of this process's pool workers
  /// (used to detect re-entrant ParallelFor calls).
  static bool InWorker();

  /// Exports the pool's activity into `registry` as callback series
  /// (longtail_pool_*: ParallelFor calls, helper-task dispatches, active
  /// participant gauge, thread count), read from pool atomics at scrape
  /// time. The registry must outlive the pool or BindMetrics(nullptr) must
  /// be called first; the destructor releases the callbacks itself. Note
  /// Global() is never destroyed, so binding it to a shorter-lived registry
  /// requires the explicit unbind.
  void BindMetrics(MetricsRegistry* registry);

  /// Cumulative ParallelFor invocations (including fully-inline ones).
  uint64_t parallel_for_calls() const {
    return parallel_for_calls_.load(std::memory_order_relaxed);
  }
  /// Cumulative helper tasks handed to pool workers.
  uint64_t helper_dispatches() const {
    return helper_dispatches_.load(std::memory_order_relaxed);
  }
  /// Threads currently draining a job (callers + helpers).
  size_t active_participants() const {
    return active_participants_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-call control block; lives on the caller's stack for the duration
  /// of its ParallelFor (the caller only returns once `pending` helpers
  /// have all finished, so queued pointers never dangle).
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    size_t grain = 1;
    std::atomic<size_t> next{0};
    std::atomic<size_t> pending{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };

  static void DrainJob(Job* job);
  void WorkerLoop();

  /// Counts one thread's participation in one job around a DrainJob call.
  void DrainJobCounted(Job* job);

  std::vector<std::thread> threads_;
  /// Deque rather than queue: a caller that drained its job dequeues its
  /// remaining helper entries instead of waiting for busy workers to pop
  /// and discard them.
  std::deque<Job*> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  bool shutdown_ = false;

  // Activity stats (relaxed atomics; scraped via BindMetrics).
  std::atomic<uint64_t> parallel_for_calls_{0};
  std::atomic<uint64_t> helper_dispatches_{0};
  std::atomic<size_t> active_participants_{0};
  MetricsRegistry* metrics_ = nullptr;
};

/// Runs fn(i) for i in [0, n) on the global serving pool with up to
/// `num_threads` participants (0 = hardware concurrency). Blocks until all
/// iterations complete. fn must be thread-safe.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace longtail

#endif  // LONGTAIL_UTIL_SERVING_POOL_H_
