// Status / Result error model.
//
// Fallible public APIs in longtail return Status (or Result<T> when a value
// is produced). Exceptions are never thrown across library boundaries; this
// mirrors the Arrow/RocksDB convention for database C++.
#ifndef LONGTAIL_UTIL_STATUS_H_
#define LONGTAIL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace longtail {

/// Error categories for Status. kOk is the success sentinel.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
  /// A bounded resource (queue depth, admission budget) is full; retry
  /// later or shed load. Used by the serving layer's admission control.
  kResourceExhausted,
  /// The request's deadline passed before (or while) it could be served.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error. On success holds T; on failure holds a non-OK Status.
/// Accessing the value of an errored Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return computed_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

/// Propagates a non-OK Status to the caller.
#define LT_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::longtail::Status _lt_st = (expr);           \
    if (!_lt_st.ok()) return _lt_st;              \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs` (a declaration or assignable lvalue).
#define LT_ASSIGN_OR_RETURN(lhs, expr)            \
  LT_ASSIGN_OR_RETURN_IMPL_(                      \
      LT_STATUS_CONCAT_(_lt_res, __LINE__), lhs, expr)

#define LT_STATUS_CONCAT_INNER_(a, b) a##b
#define LT_STATUS_CONCAT_(a, b) LT_STATUS_CONCAT_INNER_(a, b)
#define LT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace longtail

#endif  // LONGTAIL_UTIL_STATUS_H_
