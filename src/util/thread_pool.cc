#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace longtail {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(threads_.size(), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking keeps threads busy when per-item cost is skewed
  // (e.g. per-user subgraphs of very different sizes).
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, n / (workers * 8));
  for (size_t t = 0; t < workers; ++t) {
    Submit([&next, &fn, n, chunk] {
      while (true) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(n, fn);
}

}  // namespace longtail
