#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace longtail {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitBySeparator(std::string_view s,
                                          std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (v < 0) out += '-';
  return std::string(out.rbegin(), out.rend());
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace longtail
