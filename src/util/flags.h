// A tiny command-line flag parser for benches and examples.
//
//   FlagParser flags;
//   int scale = 10;
//   flags.AddInt("scale", &scale, "dataset scale divisor");
//   LT_CHECK_OK(flags.Parse(argc, argv));
//
// Accepts --name=value, --name value, and bare --bool_flag.
#ifndef LONGTAIL_UTIL_FLAGS_H_
#define LONGTAIL_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace longtail {

/// Registers typed flags against caller-owned storage, then parses argv.
class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv; unknown flags produce InvalidArgument. `--help` prints
  /// usage and returns a non-OK status so callers can exit.
  Status Parse(int argc, char** argv);

  /// Human-readable usage text.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kInt, kDouble, kBool, kString };
  struct FlagInfo {
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
};

}  // namespace longtail

#endif  // LONGTAIL_UTIL_FLAGS_H_
