// Small string helpers shared by loaders and report printers.
#ifndef LONGTAIL_UTIL_STRING_UTIL_H_
#define LONGTAIL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace longtail {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on a multi-character separator (e.g. MovieLens "::").
std::vector<std::string> SplitBySeparator(std::string_view s,
                                          std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-precision float formatting ("0.425").
std::string FormatDouble(double v, int precision);

/// Human-friendly count ("13,506,215").
std::string FormatWithCommas(int64_t v);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace longtail

#endif  // LONGTAIL_UTIL_STRING_UTIL_H_
