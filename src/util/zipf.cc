#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace longtail {

ZipfDistribution::ZipfDistribution(size_t n, double exponent)
    : exponent_(exponent) {
  LT_CHECK(n >= 1) << "ZipfDistribution needs at least one rank";
  LT_CHECK(exponent >= 0.0) << "Zipf exponent must be non-negative";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  // Bisection must never run off the end on u -> 1.0.
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(std::mt19937_64& rng) const {
  const double u = UniformDouble(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Mass(size_t rank) const {
  LT_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace longtail
