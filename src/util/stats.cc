#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace longtail {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  LT_CHECK(!values.empty());
  LT_CHECK_GE(p, 0.0);
  LT_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double GiniCoefficient(std::vector<double> values) {
  LT_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  const size_t n = values.size();
  for (size_t i = 0; i < n; ++i) {
    cum_weighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  const double nd = static_cast<double>(n);
  return (2.0 * cum_weighted) / (nd * total) - (nd + 1.0) / nd;
}

}  // namespace longtail
