#include "util/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace longtail {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  // Like metric names but without ':' (reserved for recording rules).
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Escaping per exposition format 0.0.4: HELP text escapes backslash and
// newline; label values additionally escape double quotes.
void AppendEscaped(std::string* out, const std::string& text,
                   bool escape_quotes) {
  for (char c : text) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '"':
        if (escape_quotes) {
          *out += "\\\"";
        } else {
          *out += c;
        }
        break;
      default:
        *out += c;
    }
  }
}

// Prometheus-style value rendering: integral values print without a decimal
// point, everything else as shortest round-trip decimal.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<int64_t>(value));
    LT_CHECK(ec == std::errc());
    return std::string(buf, ptr);
  }
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  LT_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

std::string FormatValue(uint64_t value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  LT_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

// Serializes a label set as {a="x",b="y"} (empty string for no labels).
// Doubles as the canonical child key, so lookup and output order agree.
std::string SerializeLabels(const MetricLabels& labels,
                            const std::string* extra_name = nullptr,
                            const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_name == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(&out, v, /*escape_quotes=*/true);
    out += "\"";
  }
  if (extra_name != nullptr) {
    if (!first) out += ",";
    out += *extra_name;
    out += "=\"";
    AppendEscaped(&out, *extra_value, /*escape_quotes=*/true);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    LT_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
  slots_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bound >= value; values above every bound land in the +Inf slot.
  const size_t slot =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  slots_[slot].fetch_add(1, std::memory_order_relaxed);
  double prev = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(prev, prev + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::SlotCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = slots_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += slots_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  LT_CHECK_GT(count, 0);
  LT_CHECK_GT(width, 0.0);
  std::vector<double> bounds(count);
  for (int i = 0; i < count; ++i) bounds[i] = start + width * i;
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  LT_CHECK_GT(count, 0);
  LT_CHECK_GT(start, 0.0);
  LT_CHECK_GT(factor, 1.0);
  std::vector<double> bounds(count);
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds[i] = bound;
    bound *= factor;
  }
  return bounds;
}

struct MetricsRegistry::Child {
  MetricLabels labels;
  // Exactly one of the following is active, per the family's type.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<uint64_t()> counter_fn;
  std::function<double()> gauge_fn;
  const void* callback_owner = nullptr;
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricType type;
  // Keyed by serialized labels: canonical identity and stable export order.
  std::map<std::string, std::unique_ptr<Child>> children;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family* MetricsRegistry::GetOrCreateFamily(
    const std::string& name, const std::string& help, MetricType type) {
  LT_CHECK(ValidMetricName(name)) << "invalid metric name: " << name;
  auto it = families_.find(name);
  if (it == families_.end()) {
    auto family = std::make_unique<Family>();
    family->name = name;
    family->help = help;
    family->type = type;
    it = families_.emplace(name, std::move(family)).first;
  } else {
    LT_CHECK(it->second->type == type)
        << "metric " << name << " re-registered with a different type";
  }
  return it->second.get();
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const MetricLabels& labels) {
  for (const auto& [k, v] : labels) {
    LT_CHECK(ValidLabelName(k)) << "invalid label name: " << k;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, MetricType::kCounter);
  const std::string key = SerializeLabels(labels);
  auto it = family->children.find(key);
  if (it == family->children.end()) {
    auto child = std::make_unique<Child>();
    child->labels = labels;
    child->counter = std::make_unique<Counter>();
    it = family->children.emplace(key, std::move(child)).first;
  }
  LT_CHECK(it->second->counter != nullptr)
      << "metric " << name << key << " is callback-backed, not owned";
  return it->second->counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels) {
  for (const auto& [k, v] : labels) {
    LT_CHECK(ValidLabelName(k)) << "invalid label name: " << k;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, MetricType::kGauge);
  const std::string key = SerializeLabels(labels);
  auto it = family->children.find(key);
  if (it == family->children.end()) {
    auto child = std::make_unique<Child>();
    child->labels = labels;
    child->gauge = std::make_unique<Gauge>();
    it = family->children.emplace(key, std::move(child)).first;
  }
  LT_CHECK(it->second->gauge != nullptr)
      << "metric " << name << key << " is callback-backed, not owned";
  return it->second->gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<double> bounds,
                                              const MetricLabels& labels) {
  for (const auto& [k, v] : labels) {
    LT_CHECK(ValidLabelName(k)) << "invalid label name: " << k;
    LT_CHECK(k != "le") << "histogram labels must not include 'le'";
  }
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, MetricType::kHistogram);
  const std::string key = SerializeLabels(labels);
  auto it = family->children.find(key);
  if (it == family->children.end()) {
    auto child = std::make_unique<Child>();
    child->labels = labels;
    child->histogram = std::make_unique<Histogram>(std::move(bounds));
    it = family->children.emplace(key, std::move(child)).first;
  }
  return it->second->histogram.get();
}

void MetricsRegistry::RegisterCallbackCounter(const std::string& name,
                                              const std::string& help,
                                              const MetricLabels& labels,
                                              std::function<uint64_t()> fn,
                                              const void* owner) {
  for (const auto& [k, v] : labels) {
    LT_CHECK(ValidLabelName(k)) << "invalid label name: " << k;
  }
  LT_CHECK(fn != nullptr);
  LT_CHECK(owner != nullptr) << "callback metrics require an owner token";
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, MetricType::kCounter);
  const std::string key = SerializeLabels(labels);
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->counter_fn = std::move(fn);
  child->callback_owner = owner;
  family->children[key] = std::move(child);
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            const MetricLabels& labels,
                                            std::function<double()> fn,
                                            const void* owner) {
  for (const auto& [k, v] : labels) {
    LT_CHECK(ValidLabelName(k)) << "invalid label name: " << k;
  }
  LT_CHECK(fn != nullptr);
  LT_CHECK(owner != nullptr) << "callback metrics require an owner token";
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, MetricType::kGauge);
  const std::string key = SerializeLabels(labels);
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->gauge_fn = std::move(fn);
  child->callback_owner = owner;
  family->children[key] = std::move(child);
}

void MetricsRegistry::ReleaseCallbacks(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto fit = families_.begin(); fit != families_.end();) {
    auto& children = fit->second->children;
    for (auto cit = children.begin(); cit != children.end();) {
      if (cit->second->callback_owner == owner) {
        cit = children.erase(cit);
      } else {
        ++cit;
      }
    }
    // An emptied callback-only family would export a headers-only stanza;
    // drop it so the family can be re-registered (e.g. by a new engine).
    if (children.empty()) {
      fit = families_.erase(fit);
    } else {
      ++fit;
    }
  }
}

std::string MetricsRegistry::ExportText() const {
  static const std::string kLe = "le";
  static const std::string kInf = "+Inf";
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " ";
    AppendEscaped(&out, family->help, /*escape_quotes=*/false);
    out += "\n# TYPE " + name + " ";
    switch (family->type) {
      case MetricType::kCounter:
        out += "counter";
        break;
      case MetricType::kGauge:
        out += "gauge";
        break;
      case MetricType::kHistogram:
        out += "histogram";
        break;
    }
    out += "\n";
    for (const auto& [key, child] : family->children) {
      switch (family->type) {
        case MetricType::kCounter: {
          const uint64_t value = child->counter_fn ? child->counter_fn()
                                                   : child->counter->Value();
          out += name + key + " " + FormatValue(value) + "\n";
          break;
        }
        case MetricType::kGauge: {
          const double value =
              child->gauge_fn ? child->gauge_fn() : child->gauge->Value();
          out += name + key + " " + FormatValue(value) + "\n";
          break;
        }
        case MetricType::kHistogram: {
          const Histogram& h = *child->histogram;
          const std::vector<uint64_t> slots = h.SlotCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += slots[i];
            const std::string le = FormatValue(h.bounds()[i]);
            out += name + "_bucket" +
                   SerializeLabels(child->labels, &kLe, &le) + " " +
                   FormatValue(cumulative) + "\n";
          }
          cumulative += slots[h.bounds().size()];
          out += name + "_bucket" + SerializeLabels(child->labels, &kLe, &kInf) +
                 " " + FormatValue(cumulative) + "\n";
          out += name + "_sum" + key + " " + FormatValue(h.Sum()) + "\n";
          out += name + "_count" + key + " " + FormatValue(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace longtail
