// Minimal leveled logging and assertion macros.
//
// LT_LOG(INFO) << "...";  levels: DEBUG, INFO, WARN, ERROR, FATAL (aborts).
// LT_CHECK(cond) / LT_CHECK_{EQ,NE,LT,LE,GT,GE}(a, b) abort with a message on
// violation — used for internal invariants, never for user input validation
// (user input errors return Status).
#ifndef LONGTAIL_UTIL_LOGGING_H_
#define LONGTAIL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace longtail {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kFatal };

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets a ternary discard a stream chain: `cond ? (void)0 : Voidify() & s`.
// operator& binds looser than operator<<, so the whole chain evaluates first.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace longtail

#define LT_LOG_DEBUG ::longtail::LogLevel::kDebug
#define LT_LOG_INFO ::longtail::LogLevel::kInfo
#define LT_LOG_WARN ::longtail::LogLevel::kWarn
#define LT_LOG_ERROR ::longtail::LogLevel::kError
#define LT_LOG_FATAL ::longtail::LogLevel::kFatal

#define LT_LOG(level)                                                   \
  ::longtail::internal::LogMessage(LT_LOG_##level, __FILE__, __LINE__) \
      .stream()

#define LT_CHECK(cond)                                           \
  (cond) ? (void)0                                               \
         : ::longtail::internal::Voidify() &                     \
               ::longtail::internal::LogMessage(                 \
                   ::longtail::LogLevel::kFatal, __FILE__, __LINE__) \
                   .stream()                                     \
               << "Check failed: " #cond " "

#define LT_CHECK_OP_(name, op, a, b)                                        \
  LT_CHECK((a)op(b)) << "(" #a " " #op " " #b ") with lhs=" << (a)          \
                     << " rhs=" << (b) << " "

#define LT_CHECK_EQ(a, b) LT_CHECK_OP_(EQ, ==, a, b)
#define LT_CHECK_NE(a, b) LT_CHECK_OP_(NE, !=, a, b)
#define LT_CHECK_LT(a, b) LT_CHECK_OP_(LT, <, a, b)
#define LT_CHECK_LE(a, b) LT_CHECK_OP_(LE, <=, a, b)
#define LT_CHECK_GT(a, b) LT_CHECK_OP_(GT, >, a, b)
#define LT_CHECK_GE(a, b) LT_CHECK_OP_(GE, >=, a, b)

#define LT_CHECK_OK(expr)                                 \
  do {                                                    \
    ::longtail::Status _lt_chk = (expr);                  \
    LT_CHECK(_lt_chk.ok()) << _lt_chk.ToString();         \
  } while (0)

#endif  // LONGTAIL_UTIL_LOGGING_H_
