// Wall-clock timing helpers for benchmarks and the evaluation harness.
#ifndef LONGTAIL_UTIL_TIMER_H_
#define LONGTAIL_UTIL_TIMER_H_

#include <chrono>

namespace longtail {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace longtail

#endif  // LONGTAIL_UTIL_TIMER_H_
