// Shared non-cryptographic hashing primitives: FNV-1a over bytes (also
// the checksum used by the binary serialization format) and a SplitMix64
// finalizer for when the hash feeds bucket/shard selection.
#ifndef LONGTAIL_UTIL_HASH_H_
#define LONGTAIL_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace longtail {

inline constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over a byte range, resumable via the running hash value. Each
/// byte's update is a bijection of the state, so any single-byte change
/// provably changes the result (what the serialization checksum relies
/// on).
inline uint64_t FnvHashBytes(const void* data, size_t n,
                             uint64_t hash = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// SplitMix64 finalizer: FNV-1a alone leaves little entropy in the high
/// bits; mix before using the hash for sharding or bucket selection.
inline uint64_t MixHash64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace longtail

#endif  // LONGTAIL_UTIL_HASH_H_
