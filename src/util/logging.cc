#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/status.h"

namespace longtail {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level.load() || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace longtail
