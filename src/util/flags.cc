#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace longtail {

namespace {
std::string BoolRepr(bool b) { return b ? "true" : "false"; }
}  // namespace

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        const std::string& help) {
  flags_[name] = {Type::kInt64, target, help, std::to_string(*target)};
}

void FlagParser::AddInt(const std::string& name, int* target,
                        const std::string& help) {
  flags_[name] = {Type::kInt, target, help, std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_[name] = {Type::kDouble, target, help, std::to_string(*target)};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_[name] = {Type::kBool, target, help, BoolRepr(*target)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_[name] = {Type::kString, target, help, *target};
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name + "\n" + Usage());
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kInt64: {
      char* end = nullptr;
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got: " + value);
      }
      *static_cast<int64_t*>(info.target) = v;
      break;
    }
    case Type::kInt: {
      char* end = nullptr;
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got: " + value);
      }
      *static_cast<int*>(info.target) = static_cast<int>(v);
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got: " + value);
      }
      *static_cast<double*>(info.target) = v;
      break;
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(info.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got: " + value);
      }
      break;
    }
    case Type::kString:
      *static_cast<std::string*>(info.target) = value;
      break;
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout, "%s", Usage().c_str());
      return Status(StatusCode::kFailedPrecondition, "help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      LT_RETURN_IF_ERROR(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool &&
        (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
      *static_cast<bool*>(it->second.target) = true;  // Bare boolean flag.
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " is missing a value");
    }
    LT_RETURN_IF_ERROR(SetValue(arg, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, info] : flags_) {
    out += "  --" + name + "  " + info.help +
           " (default: " + info.default_repr + ")\n";
  }
  return out;
}

}  // namespace longtail
