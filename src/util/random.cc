#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace longtail {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  LT_CHECK_GT(n, 0u);
  // Lemire's unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  LT_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  LT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  LT_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  LT_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Rejection-inversion sampling (W. Hormann & G. Derflinger).
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double u = h_n + NextDouble() * (h_x1 - h_n);
    // Inverse of h_integral.
    double x;
    if (std::abs(1.0 - s) < 1e-12) {
      x = std::exp(u);
    } else {
      x = std::exp(std::log1p(u * (1.0 - s)) / (1.0 - s));
    }
    const double k = std::floor(x + 0.5);
    if (k < 1 || k > nd) continue;
    if (k - x <= h_x1 || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<size_t>(k) - 1;
    }
  }
  return 0;  // Unreachable in practice.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LT_CHECK_LE(k, n);
  if (k == 0) return {};
  // Floyd's algorithm: O(k) expected with a hash-free dense check when k is
  // a large fraction of n, otherwise selection via partial shuffle.
  if (k * 2 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + NextUint64(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::vector<size_t> out;
  out.reserve(k);
  std::vector<bool> seen;  // Lazy: only allocate when collisions matter.
  seen.assign(n, false);
  while (out.size() < k) {
    size_t v = NextUint64(n);
    if (!seen[v]) {
      seen[v] = true;
      out.push_back(v);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  LT_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    LT_CHECK_GE(w, 0.0);
    total += w;
  }
  LT_CHECK_GT(total, 0.0);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  const size_t i = rng->NextUint64(prob_.size());
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace longtail
