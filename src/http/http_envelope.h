// Status → HTTP mapping and the JSON error envelope: the one place where
// the library's typed error model (util/status.h) meets the wire.
//
// Every non-OK outcome the HTTP front emits — admission rejection, expired
// deadline, unknown model, malformed request, shutdown — uses the same
// envelope shape, so clients branch on one schema (the file_server ADR 0002
// contract: internal Result/Status propagation, consistent HTTP JSON
// envelopes):
//
//   HTTP/1.1 429 Too Many Requests
//   {"error":{"code":"ResourceExhausted","http_status":429,
//             "message":"model 'AC2' queue is full"}}
//
// `code` is the stable StatusCodeToString name, NOT the numeric HTTP
// status, so retry logic written against the in-process API translates
// 1:1. The full mapping table lives in docs/HTTP_API.md and is pinned by
// tests/http_envelope_test.cc.
#ifndef LONGTAIL_HTTP_HTTP_ENVELOPE_H_
#define LONGTAIL_HTTP_HTTP_ENVELOPE_H_

#include <string>

#include "http/http_parser.h"
#include "util/status.h"

namespace longtail {

/// The HTTP status code a Status maps to. kOk → 200; the serving-relevant
/// codes: ResourceExhausted → 429, DeadlineExceeded → 504, NotFound → 404,
/// InvalidArgument/OutOfRange → 400, FailedPrecondition → 503 (not ready /
/// shutting down), Unimplemented → 501, Internal/IOError → 500.
int StatusToHttp(StatusCode code);

/// The envelope body for a non-OK status (see the header comment). The
/// caller picks the HTTP status; pass StatusToHttp(status.code()) unless a
/// parser-level code (413/414/431/505) overrides it.
std::string ErrorEnvelopeJson(const Status& status, int http_status);

/// A ready-to-serialize envelope response with StatusToHttp's code.
HttpResponse ErrorResponse(const Status& status);

/// Same, with an explicit HTTP status (parser rejections carry their own
/// codes; the envelope's `code` field still reflects `status`).
HttpResponse ErrorResponseWithHttpStatus(int http_status,
                                         const Status& status);

}  // namespace longtail

#endif  // LONGTAIL_HTTP_HTTP_ENVELOPE_H_
