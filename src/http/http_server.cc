#include "http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "http/http_envelope.h"
#include "util/metrics.h"

namespace longtail {

namespace {

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string PeerString(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

HttpServer::HttpServer(HttpDispatchFn dispatch, HttpServerOptions options)
    : dispatch_(std::move(dispatch)), options_(options) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  options_.max_pending_connections =
      std::max<size_t>(1, options_.max_pending_connections);
  options_.poll_interval_ms = std::max(1, options_.poll_interval_ms);
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire) || accept_thread_.joinable() ||
      stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "HttpServer already started (or already stopped; one Start per "
        "instance)");
  }
  if (dispatch_ == nullptr) {
    return Status::InvalidArgument("HttpServer needs a dispatch function");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad IPv4 bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(std::string("bind ") + options_.bind_address + ":" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  if (options_.metrics != nullptr) {
    connections_total_ = options_.metrics->RegisterCounter(
        "longtail_http_connections_total",
        "TCP connections accepted by the HTTP front.");
    connections_rejected_ = options_.metrics->RegisterCounter(
        "longtail_http_connections_rejected_total",
        "Connections shed at admission (worker queue full or draining).");
    parse_errors_ = options_.metrics->RegisterCounter(
        "longtail_http_parse_errors_total",
        "Requests rejected by the HTTP parser (malformed or over-limit).");
    connections_active_ = options_.metrics->RegisterGauge(
        "longtail_http_connections_active",
        "Connections currently being served by a worker.");
  }

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  // Idempotent: the first caller wins; later calls see no joinable threads.
  stopped_.store(true, std::memory_order_release);
  if (!accept_thread_.joinable() && workers_.empty()) return;
  draining_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connections accepted but never claimed by a worker: answer a typed
  // envelope instead of silently resetting them.
  std::deque<std::pair<int, std::string>> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    orphans.swap(pending_);
  }
  for (auto& [fd, peer] : orphans) {
    RejectConnection(fd);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  // The listener stays blocking but is only accept()ed after poll reports
  // readability, so the loop observes draining_ every poll slice and Stop
  // never waits on a wedged accept.
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd entry{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, options_.poll_interval_ms);
    if (draining_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &peer_len, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (connections_total_ != nullptr) connections_total_->Increment();
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!draining_.load(std::memory_order_acquire) &&
          pending_.size() < options_.max_pending_connections) {
        pending_.emplace_back(fd, PeerString(peer));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      RejectConnection(fd);
    }
  }
}

void HttpServer::RejectConnection(int fd) {
  if (connections_rejected_ != nullptr) connections_rejected_->Increment();
  const Status status =
      draining_.load(std::memory_order_acquire)
          ? Status::FailedPrecondition("server is shutting down")
          : Status::ResourceExhausted(
                "connection queue is full; retry with backoff");
  HttpResponse response = ErrorResponse(status);
  SendAll(fd, SerializeHttpResponse(response, /*keep_alive=*/false));
  ::close(fd);
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    std::string peer;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return draining_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) {
        // Only reachable when draining (the predicate held).
        return;
      }
      fd = pending_.front().first;
      peer = std::move(pending_.front().second);
      pending_.pop_front();
    }
    if (connections_active_ != nullptr) connections_active_->Increment();
    ServeConnection(fd, peer);
    if (connections_active_ != nullptr) connections_active_->Decrement();
  }
}

void HttpServer::ServeConnection(int fd, const std::string& peer) {
  HttpRequestParser parser(options_.parser_limits);
  std::string leftover;  // pipelined bytes beyond the current request
  char buf[8192];
  size_t served = 0;
  bool close_connection = false;

  while (!close_connection) {
    parser.Reset();
    auto result = HttpRequestParser::ParseResult::kNeedMore;
    if (!leftover.empty()) {
      size_t used = 0;
      result = parser.Consume(leftover, &used);
      leftover.erase(0, used);
    }
    uint64_t last_byte_ms = NowMillis();
    while (result == HttpRequestParser::ParseResult::kNeedMore) {
      if (draining_.load(std::memory_order_acquire) && !parser.mid_message()) {
        // Idle (or between pipelined requests) at shutdown: close without
        // inventing a response nobody asked for.
        close_connection = true;
        break;
      }
      const uint64_t budget_ms = parser.mid_message()
                                     ? options_.read_timeout_ms
                                     : options_.idle_timeout_ms;
      if (NowMillis() - last_byte_ms > budget_ms) {
        close_connection = true;  // stalled peer / idle keep-alive expiry
        break;
      }
      pollfd entry{fd, POLLIN, 0};
      const int ready = ::poll(&entry, 1, options_.poll_interval_ms);
      if (ready < 0) {
        close_connection = true;
        break;
      }
      if (ready == 0) continue;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        close_connection = true;  // peer closed or reset
        break;
      }
      last_byte_ms = NowMillis();
      size_t used = 0;
      result = parser.Consume(std::string_view(buf, static_cast<size_t>(n)),
                              &used);
      if (result == HttpRequestParser::ParseResult::kComplete &&
          used < static_cast<size_t>(n)) {
        leftover.append(buf + used, static_cast<size_t>(n) - used);
      }
    }

    if (result == HttpRequestParser::ParseResult::kError) {
      if (parse_errors_ != nullptr) parse_errors_->Increment();
      const HttpResponse response = ErrorResponseWithHttpStatus(
          parser.error_http_status(), parser.error());
      SendAll(fd, SerializeHttpResponse(response, /*keep_alive=*/false));
      break;
    }
    if (result != HttpRequestParser::ParseResult::kComplete) break;

    const HttpRequest request = parser.TakeRequest();
    ++served;
    const RequestContext context{request, peer,
                                 draining_.load(std::memory_order_acquire)};
    const HttpResponse response = dispatch_(context);
    const bool keep_alive =
        request.keep_alive && !response.close &&
        !draining_.load(std::memory_order_acquire) &&
        served < options_.max_requests_per_connection;
    if (!SendAll(fd, SerializeHttpResponse(response, keep_alive))) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

bool HttpServer::SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; the connection closes either way
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace longtail
