// Route table + request context: the dispatch layer between the transport
// (http/http_server.h) and the application handlers (http/serving_http.h).
//
// The split mirrors the file_server exemplar's router/request-context
// separation: the server owns sockets and framing, the router owns "which
// handler", and handlers receive a RequestContext — the parsed request plus
// connection-scoped facts (peer, draining flag) — so application code never
// touches a file descriptor. Unknown paths answer a 404 envelope; known
// paths with the wrong method answer 405 with an Allow header listing what
// the path does support.
#ifndef LONGTAIL_HTTP_ROUTER_H_
#define LONGTAIL_HTTP_ROUTER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "http/http_parser.h"

namespace longtail {

/// What a handler sees: the parsed request plus connection-scoped context.
struct RequestContext {
  const HttpRequest& request;
  /// "ip:port" of the peer (diagnostics only).
  std::string peer;
  /// True once graceful shutdown began: in-flight handlers should answer a
  /// typed 503 envelope instead of starting new engine work.
  bool draining = false;
};

using HttpHandler = std::function<HttpResponse(const RequestContext&)>;

/// Exact-path route table (the serving API has a fixed endpoint set; no
/// parameterized segments needed). Query strings are stripped before
/// matching. Immutable after setup — Handle() all routes before the server
/// starts dispatching; Dispatch is then safe from concurrent connection
/// workers.
class Router {
 public:
  /// Registers `handler` for (method, path). Re-registering the same pair
  /// replaces the handler.
  void Handle(std::string method, std::string path, HttpHandler handler);

  /// Routes one request: the handler's response, a 404 envelope for an
  /// unknown path, or a 405 envelope (with Allow) for a known path with an
  /// unsupported method.
  HttpResponse Dispatch(const RequestContext& context) const;

  /// Sorted "METHOD path" pairs (diagnostics / the root listing).
  std::vector<std::string> RouteNames() const;

 private:
  // path -> method -> handler.
  std::map<std::string, std::map<std::string, HttpHandler>> routes_;
};

}  // namespace longtail

#endif  // LONGTAIL_HTTP_ROUTER_H_
