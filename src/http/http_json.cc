#include "http/http_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace longtail {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

Result<int64_t> JsonValue::AsInt64(int64_t lo, int64_t hi) const {
  if (kind_ != Kind::kNumber) {
    return Status::InvalidArgument("expected a number");
  }
  const double v = number_;
  if (std::nearbyint(v) != v || std::isnan(v)) {
    return Status::InvalidArgument("expected an integer, got a fraction");
  }
  // 2^53 bounds the integers a double holds exactly; the schema ranges
  // passed in are far smaller, but the guard keeps the cast defined.
  if (v < -9007199254740992.0 || v > 9007199254740992.0) {
    return Status::InvalidArgument("integer out of exact double range");
  }
  const int64_t i = static_cast<int64_t>(v);
  if (i < lo || i > hi) {
    return Status::InvalidArgument(
        "integer " + std::to_string(i) + " outside [" + std::to_string(lo) +
        ", " + std::to_string(hi) + "]");
  }
  return i;
}

namespace {

/// Strict single-pass parser over the document bytes. Methods return false
/// after setting `error_`; the public entry wraps that into a Status.
class JsonParser {
 public:
  JsonParser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    if (!ParseValue(&root, 0)) {
      return Status::InvalidArgument("JSON parse error at byte " +
                                     std::to_string(pos_) + ": " + error_);
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          "JSON parse error at byte " + std::to_string(pos_) +
          ": trailing content after document");
    }
    return root;
  }

 private:
  bool Fail(const char* why) {
    error_ = why;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Expect(char c, const char* why) {
    if (AtEnd() || text_[pos_] != c) return Fail(why);
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of document");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::String(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return false;
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return false;
        *out = JsonValue::Bool(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return false;
        *out = JsonValue::Null();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Expect(':', "expected ':' after object key")) return false;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool HexDigit(char c, uint32_t* out) {
    if (c >= '0' && c <= '9') {
      *out = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *out = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      *out = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
    return true;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      uint32_t digit = 0;
      if (!HexDigit(text_[pos_ + i], &digit)) {
        return Fail("invalid \\u escape digit");
      }
      value = value << 4 | digit;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("bare control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]* — leading zeros are invalid JSON.
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("invalid number fraction");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("invalid number exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // The validated slice is NUL-free ASCII, so strtod on a copied buffer
    // parses exactly the slice (correctly-rounded on glibc, which makes
    // shortest-form output round-trip bit-identically).
    const std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) return Fail("invalid number");
    *out = JsonValue::Number(value);
    return true;
  }

  std::string_view text_;
  const int max_depth_;
  size_t pos_ = 0;
  const char* error_ = "";
};

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);  // UTF-8 bytes pass through unmodified
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(double v, std::string* out) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no non-finite numbers; the serving schemas never produce
    // them (kUnreachableScore is finite), so this is pure defense.
    *out += "null";
    return;
  }
  if (std::nearbyint(v) == v && v >= -9007199254740992.0 &&
      v <= 9007199254740992.0) {
    *out += std::to_string(static_cast<int64_t>(v));
    return;
  }
  // Shortest round-trip form: parsing it back yields the identical double.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, ptr);
  (void)ec;  // to_chars cannot fail on a 32-byte buffer for doubles
}

void WriteValue(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += value.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      WriteNumber(value.number_value(), out);
      break;
    case JsonValue::Kind::kString:
      WriteString(value.string_value(), out);
      break;
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        WriteString(key, out);
        out->push_back(':');
        WriteValue(member, out);
      }
      out->push_back('}');
      break;
    }
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteValue(item, out);
      }
      out->push_back(']');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, int max_depth) {
  return JsonParser(text, max_depth).Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace longtail
