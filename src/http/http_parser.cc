#include "http/http_parser.h"

#include <algorithm>

namespace longtail {

namespace {

/// RFC 9110 token characters (header field names, methods).
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Case-insensitive membership of `needle` in a comma-separated header
/// value ("Connection: keep-alive, TE").
bool HeaderListContains(std::string_view value, std::string_view needle) {
  const std::string lower = ToLower(value);
  size_t pos = 0;
  while (pos <= lower.size()) {
    size_t comma = lower.find(',', pos);
    if (comma == std::string::npos) comma = lower.size();
    if (TrimOws(std::string_view(lower).substr(pos, comma - pos)) == needle) {
      return true;
    }
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::path() const {
  const std::string_view t(target);
  const size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

void HttpRequestParser::Reset() {
  state_ = State::kRequestLine;
  started_ = false;
  line_buf_.clear();
  header_bytes_ = 0;
  content_length_ = 0;
  request_ = HttpRequest{};
  error_ = Status::OK();
  error_http_status_ = 0;
}

HttpRequestParser::ParseResult HttpRequestParser::Fail(int http_status,
                                                       Status status) {
  state_ = State::kError;
  error_ = std::move(status);
  error_http_status_ = http_status;
  return ParseResult::kError;
}

HttpRequestParser::ParseResult HttpRequestParser::Consume(
    std::string_view data, size_t* consumed) {
  *consumed = 0;
  if (state_ == State::kComplete) return ParseResult::kComplete;
  if (state_ == State::kError) return ParseResult::kError;

  while (*consumed < data.size()) {
    if (state_ == State::kBody) {
      const uint64_t need = content_length_ - request_.body.size();
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(need, data.size() - *consumed));
      request_.body.append(data.data() + *consumed, take);
      *consumed += take;
      if (request_.body.size() == content_length_) {
        state_ = State::kComplete;
        return ParseResult::kComplete;
      }
      return ParseResult::kNeedMore;
    }

    // Line-oriented states: accumulate until LF, with the cap enforced on
    // the partial line so an endless unterminated line cannot buffer past
    // the limit.
    const size_t nl = data.find('\n', *consumed);
    const size_t chunk_end = nl == std::string_view::npos ? data.size() : nl;
    const size_t chunk_len = chunk_end - *consumed;
    if (state_ == State::kRequestLine) {
      if (line_buf_.size() + chunk_len > limits_.max_request_line_bytes) {
        return Fail(414, Status::InvalidArgument(
                             "request line exceeds " +
                             std::to_string(limits_.max_request_line_bytes) +
                             " bytes"));
      }
    } else {
      header_bytes_ += chunk_len;
      if (header_bytes_ > limits_.max_header_bytes) {
        return Fail(431, Status::InvalidArgument(
                             "header section exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes"));
      }
    }
    line_buf_.append(data.data() + *consumed, chunk_len);
    *consumed = chunk_end;
    if (nl == std::string_view::npos) return ParseResult::kNeedMore;
    ++*consumed;  // the LF itself
    if (state_ == State::kHeaders) ++header_bytes_;

    // Strict CRLF framing: the accumulated line must end with CR.
    if (line_buf_.empty() || line_buf_.back() != '\r') {
      return Fail(400, Status::InvalidArgument(
                           "header line not terminated by CRLF"));
    }
    line_buf_.pop_back();
    std::string line = std::move(line_buf_);
    line_buf_.clear();
    const ParseResult result = ConsumeLine(line);
    if (result != ParseResult::kNeedMore) return result;
  }
  return ParseResult::kNeedMore;
}

HttpRequestParser::ParseResult HttpRequestParser::ConsumeLine(
    std::string_view line) {
  if (state_ == State::kRequestLine) {
    if (line.empty() && !started_) {
      // RFC 9112 §2.2: ignore empty line(s) before the request line
      // (robustness against sloppy pipelined clients).
      return ParseResult::kNeedMore;
    }
    return ParseRequestLine(line);
  }
  if (line.empty()) return FinishHeaders();
  return ParseHeaderLine(line);
}

HttpRequestParser::ParseResult HttpRequestParser::ParseRequestLine(
    std::string_view line) {
  started_ = true;
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, Status::InvalidArgument(
                         "request line is not 'METHOD target HTTP/x.y'"));
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    return Fail(400, Status::InvalidArgument("invalid request method"));
  }
  if (target.empty() || target[0] != '/') {
    return Fail(400, Status::InvalidArgument(
                         "request target must be origin-form (start '/')"));
  }
  for (const char c : target) {
    if (c <= 0x20 || c == 0x7F) {
      return Fail(400, Status::InvalidArgument(
                           "control byte in request target"));
    }
  }
  if (version.rfind("HTTP/", 0) != 0) {
    return Fail(400, Status::InvalidArgument("malformed HTTP version"));
  }
  if (version == "HTTP/1.1") {
    request_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    request_.minor_version = 0;
  } else {
    return Fail(505, Status::Unimplemented("only HTTP/1.0 and HTTP/1.1 are "
                                           "supported"));
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  state_ = State::kHeaders;
  return ParseResult::kNeedMore;
}

HttpRequestParser::ParseResult HttpRequestParser::ParseHeaderLine(
    std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: a continuation would silently change the
    // previous field's value; reject per RFC 9112 §5.2.
    return Fail(400, Status::InvalidArgument("obsolete header folding"));
  }
  if (request_.headers.size() >= limits_.max_headers) {
    return Fail(431, Status::InvalidArgument(
                         "more than " + std::to_string(limits_.max_headers) +
                         " headers"));
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return Fail(400, Status::InvalidArgument("header line without ':'"));
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Also catches "name : value" — whitespace before the colon smuggles
    // header mismatches through proxies and is forbidden.
    return Fail(400, Status::InvalidArgument("invalid header field name"));
  }
  const std::string_view value = TrimOws(line.substr(colon + 1));
  for (const char c : value) {
    if ((static_cast<unsigned char>(c) < 0x20 && c != '\t') || c == 0x7F) {
      return Fail(400,
                  Status::InvalidArgument("control byte in header value"));
    }
  }
  request_.headers.emplace_back(ToLower(name), std::string(value));
  return ParseResult::kNeedMore;
}

HttpRequestParser::ParseResult HttpRequestParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // The serving API's request bodies are tiny JSON documents; chunked
    // framing is deliberately out of scope, and silently ignoring the
    // header would desynchronize the connection.
    return Fail(501, Status::Unimplemented(
                         "Transfer-Encoding is not supported; send "
                         "Content-Length-framed bodies"));
  }
  bool have_length = false;
  uint64_t length = 0;
  for (const auto& [name, value] : request_.headers) {
    if (name != "content-length") continue;
    // Strict digit-only parse with an explicit overflow guard: "+5",
    // "0x10", "5 5", "" and 40-digit values are all hostile framing.
    if (value.empty()) {
      return Fail(400, Status::InvalidArgument("empty Content-Length"));
    }
    uint64_t parsed = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') {
        return Fail(400, Status::InvalidArgument(
                             "non-digit Content-Length '" + value + "'"));
      }
      if (parsed > (UINT64_MAX - 9) / 10) {
        return Fail(400, Status::InvalidArgument(
                             "Content-Length overflows 64 bits"));
      }
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    if (have_length && parsed != length) {
      return Fail(400, Status::InvalidArgument(
                           "conflicting Content-Length headers"));
    }
    have_length = true;
    length = parsed;
  }
  if (have_length && length > limits_.max_body_bytes) {
    return Fail(413, Status::InvalidArgument(
                         "declared body of " + std::to_string(length) +
                         " bytes exceeds the " +
                         std::to_string(limits_.max_body_bytes) +
                         "-byte limit"));
  }
  content_length_ = have_length ? length : 0;

  request_.keep_alive = request_.minor_version >= 1;
  if (const std::string* connection = request_.FindHeader("connection")) {
    if (HeaderListContains(*connection, "close")) {
      request_.keep_alive = false;
    } else if (HeaderListContains(*connection, "keep-alive")) {
      request_.keep_alive = true;
    }
  }

  if (content_length_ == 0) {
    state_ = State::kComplete;
    return ParseResult::kComplete;
  }
  request_.body.reserve(static_cast<size_t>(content_length_));
  state_ = State::kBody;
  return ParseResult::kNeedMore;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 414:
      return "URI Too Long";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpReasonPhrase(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += keep_alive && !response.close ? "Connection: keep-alive\r\n"
                                       : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace longtail
