#include "http/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace longtail {

namespace {

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(
    std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    Close();
    return status;
  }
  buffer_.clear();
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    uint64_t timeout_ms) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: longtail\r\n";
  if (!body.empty() || method != "GET") {
    wire += "Content-Type: " + content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  LT_RETURN_IF_ERROR(SendRaw(wire));
  return ReadResponse(timeout_ms);
}

Status HttpClient::FillBuffer(uint64_t deadline_ms) {
  while (true) {
    const uint64_t now = NowMillis();
    if (now >= deadline_ms) return Status::DeadlineExceeded("read timed out");
    pollfd entry{fd_, POLLIN, 0};
    const int ready =
        ::poll(&entry, 1, static_cast<int>(deadline_ms - now));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) return Status::DeadlineExceeded("read timed out");
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed by server");
    buffer_.append(buf, static_cast<size_t>(n));
    return Status::OK();
  }
}

Result<HttpClientResponse> HttpClient::ReadResponse(uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint64_t deadline_ms = NowMillis() + timeout_ms;

  // Head: everything through the blank line.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    LT_RETURN_IF_ERROR(FillBuffer(deadline_ms));
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  HttpClientResponse response;
  size_t line_start = 0;
  size_t line_end = head.find("\r\n");
  const std::string status_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
    return Status::IOError("malformed status line '" + status_line + "'");
  }
  response.status = std::atoi(status_line.c_str() + 9);
  if (response.status < 100 || response.status > 599) {
    return Status::IOError("malformed status code in '" + status_line + "'");
  }
  response.keep_alive = status_line.compare(0, 8, "HTTP/1.1") == 0;

  size_t content_length = 0;
  while (line_end != std::string::npos) {
    line_start = line_end + 2;
    line_end = head.find("\r\n", line_start);
    const std::string line = head.substr(
        line_start, (line_end == std::string::npos ? head.size() : line_end) -
                        line_start);
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(std::string_view(line).substr(0, colon));
    std::string value(Trim(std::string_view(line).substr(colon + 1)));
    if (name == "content-length") {
      content_length = static_cast<size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (name == "connection") {
      const std::string lower = ToLower(value);
      if (lower.find("close") != std::string::npos) {
        response.keep_alive = false;
      } else if (lower.find("keep-alive") != std::string::npos) {
        response.keep_alive = true;
      }
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  while (buffer_.size() < content_length) {
    LT_RETURN_IF_ERROR(FillBuffer(deadline_ms));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return response;
}

}  // namespace longtail
