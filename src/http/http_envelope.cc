#include "http/http_envelope.h"

#include "http/http_json.h"

namespace longtail {

int StatusToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 503;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kInternal:
    case StatusCode::kIOError:
      return 500;
  }
  return 500;
}

std::string ErrorEnvelopeJson(const Status& status, int http_status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeToString(status.code())));
  error.Set("http_status", JsonValue::Number(http_status));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue root = JsonValue::Object();
  root.Set("error", std::move(error));
  return WriteJson(root);
}

HttpResponse ErrorResponse(const Status& status) {
  return ErrorResponseWithHttpStatus(StatusToHttp(status.code()), status);
}

HttpResponse ErrorResponseWithHttpStatus(int http_status,
                                         const Status& status) {
  HttpResponse response;
  response.status = http_status;
  response.body = ErrorEnvelopeJson(status, http_status);
  return response;
}

}  // namespace longtail
