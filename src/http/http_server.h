// Embedded blocking HTTP/1.1 server: the transport layer of the serving
// front. No third-party dependencies — POSIX sockets, a poll-sliced accept
// loop, and a small fixed pool of connection worker threads.
//
// Division of labor: this class owns listening, connection admission,
// framing (http/http_parser.h) and write-back; everything above the parsed
// request — routing, JSON, engine calls — lives behind the dispatch
// callable (usually Router::Dispatch wrapped with the front's
// instrumentation, see http/serving_http.h). Connection workers are
// deliberately *dedicated threads*, not ServingPool workers: a connection
// spends its life blocked in poll/recv, and parking IO waits on the
// caller-participating walk pool would starve CPU work. The CPU-heavy part
// of every request — the walk batch — still executes on the shared
// ServingPool, because handlers go through ServingEngine::Submit.
//
// Admission control mirrors the engine's: accepted connections that no
// worker has claimed wait in a bounded queue; past the bound the server
// answers a canned 429 ResourceExhausted envelope and closes immediately
// (fail-fast, exactly like RequestQueue), instead of letting the accept
// backlog grow unboundedly. During drain the same reject path answers 503.
//
// Graceful shutdown (Stop, also run by the destructor):
//   1. draining() flips true — handlers observe it via
//      RequestContext::draining and fail new work with typed envelopes;
//   2. the accept loop exits (poll slice, never blocked in accept);
//   3. queued-but-unclaimed connections get the 503 envelope;
//   4. workers finish the request currently in flight — reads are bounded
//      by read_timeout_ms and handler time is bounded by the engine
//      deadline — answer with Connection: close, and exit.
// Stop therefore never hangs (tests/http_readiness_test.cc hammers this
// mid-flight, 5 rounds).
#ifndef LONGTAIL_HTTP_HTTP_SERVER_H_
#define LONGTAIL_HTTP_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "http/http_parser.h"
#include "http/router.h"
#include "util/status.h"

namespace longtail {

class MetricsRegistry;
class Counter;
class Gauge;

struct HttpServerOptions {
  /// IPv4 address to bind; the default serves loopback only (the
  /// deployable story is a router tier in front, not a public listener).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, readable via port()
  /// after Start (what every test and the CI smoke use).
  uint16_t port = 0;
  /// Connection worker threads (each drives one connection at a time).
  size_t num_workers = 4;
  /// Accepted connections waiting for a worker beyond which new arrivals
  /// are answered 429 and closed (connection-level admission control).
  size_t max_pending_connections = 64;
  /// Framing bounds enforced by the request parser.
  HttpParserLimits parser_limits;
  /// Poll slice for accept/read waits; only bounds shutdown latency.
  int poll_interval_ms = 50;
  /// Close a keep-alive connection after this long with no next request.
  uint64_t idle_timeout_ms = 5000;
  /// Close a connection whose peer stalls mid-request this long.
  uint64_t read_timeout_ms = 5000;
  /// Keep-alive bound: answer Connection: close after this many requests.
  size_t max_requests_per_connection = 1024;
  /// Optional transport-level series (longtail_http_connections_*,
  /// longtail_http_parse_errors_total). The registry must outlive the
  /// server. Request-level series belong to the dispatch layer.
  MetricsRegistry* metrics = nullptr;
};

/// The dispatch callable: parsed request in, response out. Must be
/// thread-safe (invoked from every connection worker concurrently).
using HttpDispatchFn = std::function<HttpResponse(const RequestContext&)>;

class HttpServer {
 public:
  HttpServer(HttpDispatchFn dispatch, HttpServerOptions options = {});
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the accept loop + workers. Fails with
  /// InvalidArgument (bad bind address) or IOError (socket/bind failures —
  /// e.g. the port is taken). At most one successful Start per instance.
  Status Start();

  /// Graceful shutdown; see the class comment. Idempotent, thread-safe,
  /// bounded — in-flight requests finish (or fail with typed envelopes)
  /// and every socket is closed before it returns.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// The bound port (the kernel's choice when options.port was 0). Valid
  /// after a successful Start.
  uint16_t port() const { return port_; }

  const HttpServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Runs one connection to completion (keep-alive loop). Closes `fd`.
  void ServeConnection(int fd, const std::string& peer);
  /// Best-effort write of a full serialized response.
  static bool SendAll(int fd, std::string_view bytes);
  /// Typed envelope (429 full / 503 draining) + close for shed connections.
  void RejectConnection(int fd);

  HttpDispatchFn dispatch_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Latched by Stop: a stopped server never restarts (one Start per
  /// instance keeps the thread lifecycle single-shot and auditable).
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// (fd, peer) pairs accepted but not yet claimed by a worker.
  std::deque<std::pair<int, std::string>> pending_;

  // Transport metrics (null when options.metrics is null).
  Counter* connections_total_ = nullptr;
  Counter* connections_rejected_ = nullptr;
  Counter* parse_errors_ = nullptr;
  Gauge* connections_active_ = nullptr;
};

}  // namespace longtail

#endif  // LONGTAIL_HTTP_HTTP_SERVER_H_
