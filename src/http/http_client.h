// Minimal blocking HTTP/1.1 client for tests, the CI smoke and bench_load's
// loopback discipline. Deliberately tiny: IPv4 connect, one request at a
// time, keep-alive with leftover buffering (so pipelining tests can push
// raw bytes with SendRaw and read responses back one by one). Not a general
// client — no TLS, no chunked bodies, no redirects.
#ifndef LONGTAIL_HTTP_HTTP_CLIENT_H_
#define LONGTAIL_HTTP_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace longtail {

struct HttpClientResponse {
  int status = 0;
  /// Header names lowercased, order preserved.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* FindHeader(std::string_view lower_name) const;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to an IPv4 address ("127.0.0.1") and port.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Serializes and sends one request, then reads one response. `body` may
  /// be empty (Content-Length: 0 is still sent for non-GET methods).
  Result<HttpClientResponse> Request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      uint64_t timeout_ms = 10000);

  /// Sends raw bytes verbatim (hostile-input and pipelining tests).
  Status SendRaw(std::string_view bytes);

  /// Reads exactly one response off the wire. Bytes beyond it (pipelined
  /// responses) stay buffered for the next call.
  Result<HttpClientResponse> ReadResponse(uint64_t timeout_ms = 10000);

 private:
  /// Blocks until more bytes arrive or deadline; appends to buffer_.
  Status FillBuffer(uint64_t deadline_ms);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace longtail

#endif  // LONGTAIL_HTTP_HTTP_CLIENT_H_
