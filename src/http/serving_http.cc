#include "http/serving_http.h"

#include <chrono>
#include <utility>
#include <vector>

#include "http/http_envelope.h"

namespace longtail {

namespace {

constexpr int32_t kUserIdMax = INT32_MAX;

}  // namespace

ServingHttpFront::ServingHttpFront(ServingEngine* engine,
                                   ServingHttpFrontOptions options)
    : engine_(engine),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : engine->metrics()),
      ready_(options.ready_at_start) {
  router_.Handle("POST", "/v1/recommend", [this](const RequestContext& ctx) {
    return HandleRecommend(ctx);
  });
  router_.Handle("POST", "/v1/score", [this](const RequestContext& ctx) {
    return HandleScore(ctx);
  });
  router_.Handle("GET", "/healthz", [this](const RequestContext& ctx) {
    return HandleHealthz(ctx);
  });
  router_.Handle("GET", "/readyz", [this](const RequestContext& ctx) {
    return HandleReadyz(ctx);
  });
  router_.Handle("GET", "/metrics", [this](const RequestContext& ctx) {
    return HandleMetrics(ctx);
  });
  router_.Handle("GET", "/", [this](const RequestContext& ctx) {
    return HandleRoot(ctx);
  });

  responses_2xx_ = metrics_->RegisterCounter(
      "longtail_http_responses_total", "HTTP responses by status class.",
      {{"class", "2xx"}});
  responses_4xx_ = metrics_->RegisterCounter(
      "longtail_http_responses_total", "HTTP responses by status class.",
      {{"class", "4xx"}});
  responses_5xx_ = metrics_->RegisterCounter(
      "longtail_http_responses_total", "HTTP responses by status class.",
      {{"class", "5xx"}});
  request_duration_ = metrics_->RegisterHistogram(
      "longtail_http_request_duration_seconds",
      "Wall time spent in routing + handler per request.",
      ExponentialBuckets(0.0001, 4.0, 10));
}

HttpResponse ServingHttpFront::Dispatch(const RequestContext& context) {
  const auto start = std::chrono::steady_clock::now();

  // Route label: "METHOD path" for known paths, "unmatched" otherwise —
  // bounded cardinality even under hostile path scans.
  std::string route = "unmatched";
  const std::string path(context.request.path());
  for (const std::string& name : router_.RouteNames()) {
    if (name == context.request.method + " " + path) {
      route = name;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(route_counter_mu_);
    Counter*& counter = route_counters_[route];
    if (counter == nullptr) {
      counter = metrics_->RegisterCounter("longtail_http_requests_total",
                                          "HTTP requests by route.",
                                          {{"route", route}});
    }
    counter->Increment();
  }

  const HttpResponse response = router_.Dispatch(context);

  if (response.status < 300) {
    responses_2xx_->Increment();
  } else if (response.status < 500) {
    responses_4xx_->Increment();
  } else {
    responses_5xx_->Increment();
  }
  request_duration_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return response;
}

bool ServingHttpFront::ParseCommon(const RequestContext& context,
                                   const JsonValue& body, ParsedCommon* out,
                                   HttpResponse* error) {
  if (context.draining) {
    *error = ErrorResponse(
        Status::FailedPrecondition("server is draining; retry elsewhere"));
    return false;
  }
  if (!ready()) {
    *error = ErrorResponse(Status::FailedPrecondition(
        "server is not ready (models still loading)"));
    return false;
  }
  if (!body.is_object()) {
    *error = ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
    return false;
  }
  const JsonValue* model = body.Find("model");
  if (model == nullptr || !model->is_string() ||
      model->string_value().empty()) {
    *error = ErrorResponse(
        Status::InvalidArgument("'model' (non-empty string) is required"));
    return false;
  }
  out->model = model->string_value();
  const JsonValue* user = body.Find("user");
  if (user == nullptr) {
    *error =
        ErrorResponse(Status::InvalidArgument("'user' (integer) is required"));
    return false;
  }
  Result<int64_t> user_id = user->AsInt64(0, kUserIdMax);
  if (!user_id.ok()) {
    *error = ErrorResponse(Status::InvalidArgument(
        "'user': " + user_id.status().message()));
    return false;
  }
  out->user = static_cast<UserId>(user_id.value());

  uint64_t deadline_ms = options_.default_deadline_ms;
  if (const JsonValue* deadline = body.Find("deadline_ms");
      deadline != nullptr) {
    Result<int64_t> parsed =
        deadline->AsInt64(0, static_cast<int64_t>(1) << 52);
    if (!parsed.ok()) {
      *error = ErrorResponse(Status::InvalidArgument(
          "'deadline_ms': " + parsed.status().message()));
      return false;
    }
    deadline_ms = static_cast<uint64_t>(parsed.value());
    if (deadline_ms > options_.max_deadline_ms) {
      deadline_ms = options_.max_deadline_ms;
    }
  }
  // A zero budget is expired by definition: answer 504 without occupying
  // the queue, mirroring the engine's strict `now > deadline` semantics.
  // (Submitting with deadline_tick == NowTicks() would *usually* expire at
  // the next dispatch tick, but at engine tick 0 the sum collides with the
  // deadline_tick == 0 "no deadline" sentinel — the front decides instead,
  // deterministically at any tick.)
  if (deadline_ms == 0) {
    *error = ErrorResponse(Status::DeadlineExceeded(
        "deadline_ms is 0: the request's budget is already spent"));
    return false;
  }
  // Relative budget -> absolute engine tick (SteadyTickClock: 1 tick =
  // 1 ms).
  out->deadline_tick = engine_->NowTicks() + deadline_ms;
  return true;
}

UserQueryResult ServingHttpFront::SubmitAndWait(const std::string& model,
                                                const ServeRequest& request) {
  std::future<UserQueryResult> future = engine_->Submit(model, request);
  // Rejections (queue full, unknown model, dead on arrival, shutdown)
  // resolve immediately — surface them without blocking, which is what
  // makes the 429 fail fast instead of waiting out the deadline.
  if (future.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    return future.get();
  }
  if (!engine_->dispatcher_running()) {
    // Dispatcher-less engine (deterministic tests): pump to completion
    // ourselves, mirroring what blocking Query does.
    engine_->PumpUntilIdle();
  }
  return future.get();
}

HttpResponse ServingHttpFront::HandleRecommend(const RequestContext& context) {
  Result<JsonValue> body = ParseJson(context.request.body);
  if (!body.ok()) {
    return ErrorResponse(Status::InvalidArgument(
        "invalid JSON body: " + body.status().message()));
  }
  ParsedCommon common;
  HttpResponse error;
  if (!ParseCommon(context, body.value(), &common, &error)) return error;

  const JsonValue* top_k = body.value().Find("top_k");
  if (top_k == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("'top_k' (integer >= 1) is required"));
  }
  Result<int64_t> k = top_k->AsInt64(1, options_.max_top_k);
  if (!k.ok()) {
    return ErrorResponse(
        Status::InvalidArgument("'top_k': " + k.status().message()));
  }

  ServeRequest request;
  request.user = common.user;
  request.top_k = static_cast<int>(k.value());
  request.deadline_tick = common.deadline_tick;
  const UserQueryResult result = SubmitAndWait(common.model, request);
  if (!result.status.ok()) return ErrorResponse(result.status);

  JsonValue items = JsonValue::Array();
  for (const ScoredItem& scored : result.top_k) {
    JsonValue entry = JsonValue::Object();
    entry.Set("item", JsonValue::Number(scored.item));
    entry.Set("score", JsonValue::Number(scored.score));
    items.Append(std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("model", JsonValue::String(common.model));
  root.Set("user", JsonValue::Number(common.user));
  root.Set("items", std::move(items));

  HttpResponse response;
  response.body = WriteJson(root);
  return response;
}

HttpResponse ServingHttpFront::HandleScore(const RequestContext& context) {
  Result<JsonValue> body = ParseJson(context.request.body);
  if (!body.ok()) {
    return ErrorResponse(Status::InvalidArgument(
        "invalid JSON body: " + body.status().message()));
  }
  ParsedCommon common;
  HttpResponse error;
  if (!ParseCommon(context, body.value(), &common, &error)) return error;

  const JsonValue* items = body.value().Find("items");
  if (items == nullptr || !items->is_array() || items->items().empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "'items' (non-empty array of item ids) is required"));
  }
  if (items->items().size() > options_.max_score_items) {
    return ErrorResponse(Status::InvalidArgument(
        "'items' has " + std::to_string(items->items().size()) +
        " entries; max is " + std::to_string(options_.max_score_items)));
  }
  // Handler-local storage for the score span. SubmitAndWait always blocks
  // until the future resolves, so this vector outlives the request — the
  // ServeRequest::score_items lifetime contract.
  std::vector<ItemId> item_ids;
  item_ids.reserve(items->items().size());
  for (const JsonValue& item : items->items()) {
    Result<int64_t> id = item.AsInt64(0, kUserIdMax);
    if (!id.ok()) {
      return ErrorResponse(Status::InvalidArgument(
          "'items' entries must be integer ids: " + id.status().message()));
    }
    item_ids.push_back(static_cast<ItemId>(id.value()));
  }

  ServeRequest request;
  request.user = common.user;
  request.score_items = item_ids;
  request.deadline_tick = common.deadline_tick;
  const UserQueryResult result = SubmitAndWait(common.model, request);
  if (!result.status.ok()) return ErrorResponse(result.status);

  JsonValue scores = JsonValue::Array();
  for (const double score : result.scores) {
    scores.Append(JsonValue::Number(score));
  }
  JsonValue root = JsonValue::Object();
  root.Set("model", JsonValue::String(common.model));
  root.Set("user", JsonValue::Number(common.user));
  root.Set("scores", std::move(scores));

  HttpResponse response;
  response.body = WriteJson(root);
  return response;
}

HttpResponse ServingHttpFront::HandleHealthz(const RequestContext& context) {
  (void)context;
  HttpResponse response;
  response.body = WriteJson(
      JsonValue::Object().Set("status", JsonValue::String("ok")));
  return response;
}

HttpResponse ServingHttpFront::HandleReadyz(const RequestContext& context) {
  if (context.draining) {
    return ErrorResponse(
        Status::FailedPrecondition("server is draining"));
  }
  if (!ready()) {
    return ErrorResponse(Status::FailedPrecondition(
        "server is not ready (models still loading)"));
  }
  JsonValue models = JsonValue::Array();
  for (const std::string& name : engine_->ModelNames()) {
    models.Append(JsonValue::String(name));
  }
  JsonValue root = JsonValue::Object();
  root.Set("status", JsonValue::String("ready"));
  root.Set("models", std::move(models));
  HttpResponse response;
  response.body = WriteJson(root);
  return response;
}

HttpResponse ServingHttpFront::HandleMetrics(const RequestContext& context) {
  (void)context;
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = metrics_->ExportText();
  return response;
}

HttpResponse ServingHttpFront::HandleRoot(const RequestContext& context) {
  (void)context;
  JsonValue routes = JsonValue::Array();
  for (const std::string& name : router_.RouteNames()) {
    routes.Append(JsonValue::String(name));
  }
  JsonValue root = JsonValue::Object();
  root.Set("service", JsonValue::String("longtail-serving"));
  root.Set("routes", std::move(routes));
  HttpResponse response;
  response.body = WriteJson(root);
  return response;
}

}  // namespace longtail
