// ServingHttpFront: the application layer of the HTTP serving front — maps
// the JSON API onto ServingEngine and owns the request-level metrics.
//
// Endpoints (full schemas in docs/HTTP_API.md):
//   POST /v1/recommend  {model, user, top_k, deadline_ms?} -> ranked items
//   POST /v1/score      {model, user, items[], deadline_ms?} -> scores
//   GET  /healthz       liveness: 200 whenever the process can answer
//   GET  /readyz        readiness: 503 until MarkReady() (checkpoint fleet
//                       loaded) and again while draining; else 200
//   GET  /metrics       Prometheus text 0.0.4 from the engine's registry
//   GET  /              route listing (diagnostics)
//
// Error contract: every failure is the JSON envelope
//   {"error": {"code": "<StatusCode name>", "http_status": N,
//              "message": "..."}}
// with the HTTP status from StatusToHttp — so ResourceExhausted (engine
// admission control) surfaces as 429 and DeadlineExceeded as 504, byte-for-
// byte the same taxonomy callers of the C++ API see.
//
// Deadlines: `deadline_ms` is a relative budget converted to an absolute
// engine tick at parse time (SteadyTickClock: 1 tick = 1 ms). Absent ->
// options.default_deadline_ms; 0 -> an already-expired budget, answered
// DeadlineExceeded -> 504 before the queue is touched (deterministic at
// any tick — useful for drills and pinned tests); negative -> 400; larger
// than options.max_deadline_ms -> clamped.
//
// Dispatch() wraps the router with instrumentation: per-route request
// counters, status-class response counters and a latency histogram
// (longtail_http_* series, validated in the integration test).
#ifndef LONGTAIL_HTTP_SERVING_HTTP_H_
#define LONGTAIL_HTTP_SERVING_HTTP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "http/http_json.h"
#include "http/router.h"
#include "serving/serving_engine.h"

namespace longtail {

struct ServingHttpFrontOptions {
  /// Deadline applied when a request carries no deadline_ms.
  uint64_t default_deadline_ms = 30000;
  /// Upper clamp for caller-supplied deadline_ms.
  uint64_t max_deadline_ms = 120000;
  /// Upper bound for top_k (InvalidArgument past it).
  int max_top_k = 1000;
  /// Upper bound on the items array of /v1/score.
  size_t max_score_items = 4096;
  /// Start in the ready state (true only in tests; production flips
  /// readiness with MarkReady once the checkpoint fleet is loaded).
  bool ready_at_start = false;
  /// Registry for the longtail_http_* request series and the /metrics
  /// scrape body; nullptr = engine->metrics() (the usual wiring, so one
  /// scrape covers engine + transport + request series).
  MetricsRegistry* metrics = nullptr;
};

class ServingHttpFront {
 public:
  /// `engine` must outlive the front.
  explicit ServingHttpFront(ServingEngine* engine,
                            ServingHttpFrontOptions options = {});

  ServingHttpFront(const ServingHttpFront&) = delete;
  ServingHttpFront& operator=(const ServingHttpFront&) = delete;

  /// The instrumented dispatch entry — hand this to HttpServer:
  ///   HttpServer server([&front](const RequestContext& ctx) {
  ///     return front.Dispatch(ctx); }, options);
  HttpResponse Dispatch(const RequestContext& context);

  /// Flips /readyz to 200. Call after LoadCheckpointDirIntoEngine (or
  /// whatever model registration the deployment does) has finished.
  void MarkReady() { ready_.store(true, std::memory_order_release); }
  void MarkUnready() { ready_.store(false, std::memory_order_release); }
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  const ServingHttpFrontOptions& options() const { return options_; }
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  HttpResponse HandleRecommend(const RequestContext& context);
  HttpResponse HandleScore(const RequestContext& context);
  HttpResponse HandleHealthz(const RequestContext& context);
  HttpResponse HandleReadyz(const RequestContext& context);
  HttpResponse HandleMetrics(const RequestContext& context);
  HttpResponse HandleRoot(const RequestContext& context);

  /// Parses the shared fields (model/user/deadline_ms), checks readiness /
  /// draining, and resolves the deadline tick. On failure fills *error
  /// with the ready error response and returns false.
  struct ParsedCommon {
    std::string model;
    UserId user = 0;
    uint64_t deadline_tick = 0;
  };
  bool ParseCommon(const RequestContext& context, const JsonValue& body,
                   ParsedCommon* out, HttpResponse* error);

  /// Submit + wait: immediately-ready futures (rejections) return without
  /// blocking; otherwise waits for the batch, self-pumping when the engine
  /// runs without a dispatcher thread.
  UserQueryResult SubmitAndWait(const std::string& model,
                                const ServeRequest& request);

  ServingEngine* engine_;
  ServingHttpFrontOptions options_;
  MetricsRegistry* metrics_;
  Router router_;
  std::atomic<bool> ready_{false};

  std::mutex route_counter_mu_;
  /// route label ("POST /v1/recommend", or "unmatched") -> counter.
  std::map<std::string, Counter*> route_counters_;
  Counter* responses_2xx_;
  Counter* responses_4xx_;
  Counter* responses_5xx_;
  Histogram* request_duration_;
};

}  // namespace longtail

#endif  // LONGTAIL_HTTP_SERVING_HTTP_H_
