// Strict incremental HTTP/1.1 request parser + response serializer: the
// message layer of the embedded serving front (http/http_server.h).
//
// The parser consumes bytes exactly as a socket delivers them — in any
// fragmentation, including one byte at a time — and advances a small state
// machine (request line → headers → body). Its contract, pinned by
// tests/http_parser_fuzz_test.cc under ASan+UBSan:
//
//  * It NEVER over-reads: Consume reports exactly how many input bytes
//    belong to the current request, so pipelined bytes after a complete
//    message are left for the next Reset/Consume cycle.
//  * It never crashes on hostile input — every malformed, oversized or
//    unsupported message is rejected with a typed Status plus the HTTP
//    status code the server should answer with (400, 413, 414, 431, 501,
//    505), after which the parser is sticky-errored until Reset.
//  * Bounds are enforced *while* reading, before buffering: the request
//    line, cumulative header bytes, header count and declared body size
//    each have a hard cap, so a hostile peer cannot make the server
//    allocate more than the configured limits.
//  * Content-Length handling is exact: strict digit-only parse with an
//    overflow guard, duplicate headers must agree, Transfer-Encoding is
//    rejected as unimplemented (the serving API never chunks requests),
//    and the body completes after exactly the declared byte count.
#ifndef LONGTAIL_HTTP_HTTP_PARSER_H_
#define LONGTAIL_HTTP_HTTP_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace longtail {

/// One parsed request. Header names are lowercased at parse time (HTTP
/// field names are case-insensitive); values keep their bytes minus
/// surrounding whitespace.
struct HttpRequest {
  std::string method;   // e.g. "GET", "POST" — token-validated, not limited
  std::string target;   // origin-form, e.g. "/v1/recommend?verbose=1"
  int minor_version = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Derived from the version + Connection header at parse completion.
  bool keep_alive = true;

  /// First header with this (lowercase) name; nullptr when absent.
  const std::string* FindHeader(std::string_view lower_name) const;
  /// `target` with any ?query suffix removed (the router matches paths).
  std::string_view path() const;
};

/// Hard input bounds, enforced incrementally. Defaults fit the serving
/// API's small JSON bodies with generous slack.
struct HttpParserLimits {
  size_t max_request_line_bytes = 8 * 1024;  // exceeded → 414
  size_t max_header_bytes = 16 * 1024;       // all header lines → 431
  size_t max_headers = 64;                   // exceeded → 431
  size_t max_body_bytes = 1 * 1024 * 1024;   // declared length → 413
};

class HttpRequestParser {
 public:
  enum class ParseResult {
    kNeedMore,  // consumed everything offered; message incomplete
    kComplete,  // request() is ready; *consumed may be < data.size()
    kError,     // error()/error_http_status() describe the rejection
  };

  explicit HttpRequestParser(HttpParserLimits limits = {});

  /// Feeds bytes. `*consumed` is always set to how many of `data`'s bytes
  /// were claimed by this request (complete requests claim only their own
  /// bytes; errors claim everything offered, since the connection is dead).
  /// After kComplete or kError further input is not consumed until Reset.
  ParseResult Consume(std::string_view data, size_t* consumed);

  /// Valid after kComplete.
  const HttpRequest& request() const { return request_; }
  HttpRequest TakeRequest() { return std::move(request_); }

  /// Valid after kError.
  const Status& error() const { return error_; }
  int error_http_status() const { return error_http_status_; }

  /// True once the request line has started arriving (used by the server
  /// to distinguish an idle keep-alive connection from one mid-request at
  /// shutdown).
  bool mid_message() const { return started_ && !done(); }
  bool done() const {
    return state_ == State::kComplete || state_ == State::kError;
  }

  /// Ready for the next request on the same connection (keep-alive /
  /// pipelining). Limits are retained.
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  ParseResult Fail(int http_status, Status status);
  /// Processes one complete header-section line (CRLF stripped).
  ParseResult ConsumeLine(std::string_view line);
  ParseResult ParseRequestLine(std::string_view line);
  ParseResult ParseHeaderLine(std::string_view line);
  /// Header section finished: validate framing headers, decide body plan.
  ParseResult FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  bool started_ = false;
  std::string line_buf_;      // current partial line (request line / header)
  size_t header_bytes_ = 0;   // cumulative header-section bytes
  uint64_t content_length_ = 0;
  HttpRequest request_;
  Status error_;
  int error_http_status_ = 0;
};

/// A response the server serializes. `extra_headers` must not include
/// Content-Length, Content-Type or Connection — the serializer owns framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  /// Force Connection: close regardless of the request's keep-alive.
  bool close = false;
};

/// Standard reason phrase for the status codes the front emits ("OK",
/// "Too Many Requests", ...); "Unknown" for anything else.
const char* HttpReasonPhrase(int status);

/// Serializes status line + framing headers + body. `keep_alive` is the
/// connection's decision (request keep-alive && !response.close && server
/// not draining); the emitted Connection header matches what the server
/// will actually do.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

}  // namespace longtail

#endif  // LONGTAIL_HTTP_HTTP_PARSER_H_
