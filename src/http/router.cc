#include "http/router.h"

#include "http/http_envelope.h"

namespace longtail {

void Router::Handle(std::string method, std::string path,
                    HttpHandler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

HttpResponse Router::Dispatch(const RequestContext& context) const {
  const std::string path(context.request.path());
  const auto by_path = routes_.find(path);
  if (by_path == routes_.end()) {
    return ErrorResponse(
        Status::NotFound("no route for '" + path + "'"));
  }
  const auto by_method = by_path->second.find(context.request.method);
  if (by_method == by_path->second.end()) {
    std::string allow;
    for (const auto& [method, handler] : by_path->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    HttpResponse response = ErrorResponseWithHttpStatus(
        405, Status::InvalidArgument("method " + context.request.method +
                                     " not allowed for '" + path +
                                     "' (allowed: " + allow + ")"));
    response.extra_headers.emplace_back("Allow", std::move(allow));
    return response;
  }
  return by_method->second(context);
}

std::vector<std::string> Router::RouteNames() const {
  std::vector<std::string> names;
  for (const auto& [path, methods] : routes_) {
    for (const auto& [method, handler] : methods) {
      names.push_back(method + " " + path);
    }
  }
  return names;
}

}  // namespace longtail
