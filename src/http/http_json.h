// Hand-rolled JSON reader/writer for the HTTP front's small request and
// response schemas (http/serving_http.h, docs/HTTP_API.md).
//
// Scope is deliberately narrow — this is not a general JSON library. It
// exists so the embedded server (http/http_server.h) has zero third-party
// dependencies while still speaking strict, round-trippable JSON:
//
//  * The reader rejects everything outside RFC 8259: trailing content,
//    unterminated strings, bare control characters, lone surrogates,
//    malformed numbers, and documents nested past a fixed depth cap (no
//    recursion-driven stack overflow on hostile input — parse errors come
//    back as a typed Status, never a crash).
//  * The writer emits doubles with std::to_chars (shortest round-trip
//    form), so a score serialized into a response body parses back to the
//    bit-identical double — the property the HTTP-vs-QueryBatch parity
//    test pins (tests/http_server_integration_test.cc).
//
// JsonValue is a small ordered-map/vector variant; object key order is
// preserved so serialized output is deterministic.
#ifndef LONGTAIL_HTTP_HTTP_JSON_H_
#define LONGTAIL_HTTP_HTTP_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace longtail {

/// A parsed JSON document node. Objects keep insertion order (serialization
/// is deterministic and tests can compare strings); lookups are linear,
/// which is right for the front's handful-of-keys schemas.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Number(double value) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue String(std::string value) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; calling the wrong one on a node is a programming
  /// error (callers check kind() or use the As* helpers below).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Builder mutators (used by response construction).
  JsonValue& Set(std::string key, JsonValue value);  // object; returns *this
  JsonValue& Append(JsonValue value);                // array; returns *this

  /// The number as an integer in [lo, hi]; fails when this node is not a
  /// number, not integral, or out of range. The request schemas are all
  /// small integers (user id, top_k, deadline_ms), so range checking lives
  /// here once.
  Result<int64_t> AsInt64(int64_t lo, int64_t hi) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Strict RFC 8259 parse of a complete document. `max_depth` bounds
/// object/array nesting (hostile deep nesting fails cleanly instead of
/// recursing the stack away). Trailing non-whitespace after the document is
/// an error.
Result<JsonValue> ParseJson(std::string_view text, int max_depth = 32);

/// Serializes a JsonValue. Strings are escaped per RFC 8259 (control
/// characters as \u00XX); numbers use shortest-round-trip formatting —
/// integral doubles within the exact-int53 range print without exponent or
/// fraction. Non-finite numbers (never produced by the serving schemas)
/// serialize as null.
std::string WriteJson(const JsonValue& value);

}  // namespace longtail

#endif  // LONGTAIL_HTTP_HTTP_JSON_H_
