// The unified walk kernel: one tuned inner loop for every truncated
// random-walk sweep in the system.
//
// Before this subsystem existed, five call sites — the truncated DP behind
// HT/AT/AC1/AC2 (markov.cc via graph_recommender_base.cc) and the PPR/Katz
// power iterations (baselines/pagerank.cc, baselines/katz.cc) — each kept a
// bespoke loop over BipartiteGraph adjacency, re-deriving transition
// probabilities (a weighted-degree load plus a divide per row) and
// re-branching on absorbing/isolated nodes every iteration. WalkKernel
// retires those loops, and is itself split along the immutable/mutable
// seam:
//
//  * WalkPlan is the *immutable, shareable* half: the normalized transition
//    CSR (or the on-the-fly-normalization binding that skips materializing
//    it), the execution-plan selection from the probed cache geometry, and
//    the optional WalkLayout permutation. A plan is built once per graph —
//    at SubgraphCache admission for cached subgraphs, at Fit/LoadModel for
//    the PPR/Katz global graphs — and shared by shared_ptr across any
//    number of concurrently sweeping workers. After Build it is never
//    mutated, so N pool threads can sweep one plan at once.
//  * WalkKernel is the *per-worker scratch* half: the branch-free
//    coefficient vectors CompileAbsorbingSweep fills per query, the
//    permuted-space value buffers, and the runtime ISA binding. One kernel
//    lives in each WalkWorkspace and inside each PPR/Katz recommender;
//    kernels either build their own private plan (BuildTransitions — the
//    cold path, capacity reused across queries) or adopt a shared one
//    (AdoptPlan — the warm path, zero per-query O(E)/O(V) setup).
//
//  * CompileAbsorbingSweep folds per-query absorbing flags, isolated
//    nodes, and per-node costs into three dense coefficient vectors so the
//    sweep's inner loop is branch-free:
//        next[v] = add[v] + scale[v]·⟨prob_row(v), value⟩ + self[v]·value[v]
//    (absorbing: add=scale=self=0 pins the value at exactly 0; isolated
//    transient: scale=0, self=1 accumulates cost forever; ordinary rows:
//    scale=1, self=0).
//  * SweepTruncated / Apply run the sweep as a blocked, 4-way-unrolled
//    gather over the transition CSR. The gather is *runtime-dispatched*:
//    one portable binary carries both a scalar flavour and an AVX2 flavour
//    (hardware vgatherdpd, compiled in its own -mavx2 translation unit),
//    and a one-time CPUID probe at kernel construction picks the table —
//    no recompilation per host. The two flavours are bit-identical (same
//    per-lane accumulation order and reduction tree, FP contraction off in
//    the AVX2 TU), enforced by tests/walk_kernel_test.cc. See
//    docs/KERNELS.md for the layout, the blocking/unroll parameters and
//    how to re-tune them.
//
// Numerical contract: results agree with the retained reference loop
// (AbsorbingValueTruncatedReference in markov.h) to relative tolerance
// ~1e-13 per iteration — pre-normalization changes (Σ w·v)/d into
// Σ (w/d)·v and the unroll changes the summation tree, so bit-identity
// with the *old* loop is impossible; what the system guarantees instead is
// that every production path (single-user, batch at any thread count,
// cache-hit on a shared plan, checkpoint-restored) runs the same kernel
// and is therefore bit-identical across those paths. A plan makes the
// same decisions Build-by-kernel would for the same (graph, layout)
// inputs, so adopted and privately built plans sweep identically.
// tests/walk_kernel_test.cc and tests/warm_plan_test.cc enforce this.
#ifndef LONGTAIL_GRAPH_WALK_KERNEL_H_
#define LONGTAIL_GRAPH_WALK_KERNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/walk_layout.h"

namespace longtail {

namespace internal {
struct WalkKernelIsa;
}  // namespace internal

/// How a plan derives the contiguous transition-value array from the
/// graph's edge weights. (Namespace-scope so WalkPlan can use it; WalkKernel
/// re-exports it as WalkKernel::Normalization for call-site continuity.)
enum class WalkNormalization {
  /// prob[k] = w[k] / weighted_degree(row): row-stochastic. The DP
  /// gather ⟨prob_row(v), value⟩ is then exactly Σ_j p_vj·value[j] of
  /// Eq. 1 — what the truncated absorbing-value sweeps consume.
  kRowStochastic,
  /// prob[k] = w[k] / weighted_degree(col[k]): column-stochastic. On a
  /// symmetric graph, gathering row v yields (Pᵀx)[v] — the push step of
  /// the PPR power iteration expressed as a pull, which vectorizes.
  kColumnStochastic,
  /// prob[k] = w[k] unchanged: raw adjacency gathers (Katz's β-damped
  /// path counting).
  kRaw,
};

/// The execution plan WalkPlan::Build picks per graph shape (one-time
/// cost probe against the machine's measured cache geometry; see
/// docs/KERNELS.md for the thresholds):
///  * kSimple — flat reference-style loop, no row tiling. Wins while
///    one value vector (the window row gathers read from) still fits in
///    L2, where tile bookkeeping is pure overhead. Row-stochastic only.
///  * kBlocked — L1-tiled row pass with next-tile prefetch, identity
///    node order; wins once the value vector exceeds L2.
/// Both identity-order plans normalize row-stochastic transitions on the
/// fly from the raw weights — the O(entries) transition materialization
/// is skipped entirely, with the same per-entry rounding sequence (w·(1/d)
/// then ·x), so results are bit-identical to a materialized sweep. Other
/// normalizations (PPR/Katz) materialize once and amortize over many
/// Apply calls.
///  * kBlockedReordered — kBlocked over a WalkLayout-permuted CSR
///    (adopted from the SubgraphCache or built here); seeds are injected
///    and values read back through the permutation, outputs bit-identical
///    in original id space.
/// kAuto is only a ForcePlanForTesting value: restore the cost probe.
enum class WalkSweepMode { kAuto, kSimple, kBlocked, kBlockedReordered };

/// The immutable half of the walk kernel: one graph's normalized transition
/// CSR (or on-the-fly binding), the sweep-plan selection, and the optional
/// layout permutation. Built exactly once per graph and shared by
/// shared_ptr — a SubgraphCache payload carries the plan for its subgraph,
/// PPR/Katz carry one for their fitted global graph. Immutable after
/// Build(), so any number of WalkKernels (one per worker, each with private
/// scratch) may sweep one plan concurrently.
///
/// Lifetime: the plan points into the graph's CSR arrays (and the layout's,
/// when adopted) but owns neither — the graph and layout must outlive every
/// use of the plan. Cache payloads satisfy this structurally: graph, layout
/// and plan all live in one shared, immutable Subgraph payload.
class WalkPlan {
 public:
  WalkPlan() = default;
  WalkPlan(const WalkPlan&) = delete;
  WalkPlan& operator=(const WalkPlan&) = delete;

  /// Compiles `g` into transition bindings and picks the sweep plan.
  /// Identical decision procedure to the kernel's own BuildTransitions:
  /// passing the same (graph, norm, layout) here and there yields plans
  /// that sweep bit-identically. `forced` pins the plan for tests/benches
  /// (kAuto = cost probe). Reuses this object's buffer capacity, so a
  /// kernel-owned plan rebuilt per cold query performs no steady-state
  /// allocation. Rows with weighted degree <= 0 get all-zero transition
  /// values (compiled as isolated by CompileAbsorbingSweep).
  void Build(const BipartiteGraph& g, WalkNormalization norm,
             std::shared_ptr<const WalkLayout> layout = nullptr,
             WalkSweepMode forced = WalkSweepMode::kAuto);

  /// True once Build has run.
  bool built() const { return graph_ != nullptr; }
  /// The graph the plan was built from (nullptr before Build).
  const BipartiteGraph* graph() const { return graph_; }
  WalkNormalization normalization() const { return norm_; }
  int32_t num_nodes() const { return num_nodes_; }
  /// "simple", "blocked" or "blocked_reordered"; bench/introspection only.
  const char* sweep_strategy() const;
  /// True when the plan sweeps a permuted CSR (adopted or privately built).
  bool reordered() const { return perm_ != nullptr; }
  /// Rows per L1 tile of the blocked row pass (0 in simple mode).
  int32_t row_tile() const { return row_tile_; }
  /// Heap bytes this plan owns beyond the graph/layout it points into
  /// (materialized transition values + any privately built layout). The
  /// SubgraphCache adds this to its resident-byte accounting.
  size_t OwnedBytes() const;

 private:
  friend class WalkKernel;

  const BipartiteGraph* graph_ = nullptr;
  WalkNormalization norm_ = WalkNormalization::kRowStochastic;
  int32_t num_nodes_ = 0;
  /// True when the plan normalizes rows on the fly from w_/wdeg_ instead
  /// of a materialized transition array (kRowStochastic, identity order —
  /// both the simple and the blocked plan).
  bool norm_fly_ = false;
  /// Rows per L1 tile of the blocked row pass (0 = flat simple loop).
  int32_t row_tile_ = 0;
  /// The CSR the sweeps walk: the graph's own arrays (identity order) or a
  /// WalkLayout's permuted arrays.
  const int64_t* ptr_ = nullptr;
  const NodeId* col_ = nullptr;
  /// Materialized transition values parallel to col_ (null when norm_fly_):
  /// layout row_prob, prob_.data(), or the graph's raw weights.
  const double* prob_data_ = nullptr;
  /// Raw weights + weighted degrees for the normalizing row passes.
  const double* w_ = nullptr;
  const double* wdeg_ = nullptr;
  /// Original local id → sweep-space row (null ⇔ identity layout).
  /// CompileAbsorbingSweep scatters coefficients through it; sweeps gather
  /// outputs back through it.
  const int32_t* perm_ = nullptr;
  /// Keeps an adopted layout alive for the lifetime of the plan.
  std::shared_ptr<const WalkLayout> layout_;
  /// Privately built layout (large one-shot builds); capacity reused.
  WalkLayout own_layout_;
  /// Normalized transition values in sweep order, parallel to col_ (unused
  /// when the layout supplies row_prob or the plan normalizes on the fly).
  std::vector<double> prob_;
};

/// The mutable, per-worker half: per-query sweep coefficients, value
/// buffers, and the runtime ISA binding, executing against a bound
/// WalkPlan. One kernel lives in each WalkWorkspace and inside each
/// PPR/Katz recommender. Buffers are sized lazily and keep their capacity,
/// so steady-state reuse performs no heap allocation. Not thread-safe: one
/// kernel per worker — but many kernels may share one adopted plan.
class WalkKernel {
 public:
  using Normalization = WalkNormalization;
  using SweepMode = WalkSweepMode;

  /// Hard ceiling on the fused multi-query sweep width (mirrors the ISA
  /// tables' per-row stack scratch; see walk_kernel_isa.h). Callers chunk
  /// larger groups.
  static constexpr int32_t kMaxFusedWidth = 32;

  /// Binds the kernel to the best row-gather implementation the running
  /// CPU supports (one CPUID probe per process, cached; see
  /// walk_kernel_isa.h). The binary is portable — an AVX2 host runs the
  /// vgatherdpd flavour, any other host the scalar flavour, with
  /// bit-identical results.
  WalkKernel();
  WalkKernel(const WalkKernel&) = delete;
  WalkKernel& operator=(const WalkKernel&) = delete;

  /// Name of the row-gather flavour this kernel dispatches to ("avx2" or
  /// "generic").
  const char* isa_name() const;
  /// True when this build carries the AVX2 translation unit *and* the
  /// running CPU/OS support AVX2 — i.e. when new kernels bind to "avx2".
  static bool RuntimeAvx2Available();
  /// Test-only: rebinds this kernel to the portable scalar flavour so
  /// parity tests can compare both paths within one process.
  void ForceGenericIsaForTesting();

  /// Cold path: (re)builds this kernel's private plan for `g` and binds to
  /// it. O(edges); call once per extracted subgraph / fitted graph, then
  /// reuse across any number of sweeps. The plan keeps a pointer to `g`
  /// and reads its CSR arrays during sweeps, so `g` must outlive the
  /// kernel's use and must not be rebuilt in between.
  ///
  /// `layout` is an optional pre-built permutation of `g` (typically the
  /// one riding on a SubgraphCache payload): passing it makes the kernel
  /// sweep the permuted CSR without re-permuting. When absent, auto plans
  /// stay in identity order (a one-shot query cannot amortize the
  /// permutation build; only ForcePlanForTesting(kBlockedReordered)
  /// self-builds one). Either way every public input/output stays in
  /// original local id space, bit-identical to the identity layout.
  void BuildTransitions(const BipartiteGraph& g, Normalization norm,
                        std::shared_ptr<const WalkLayout> layout = nullptr);

  /// Warm path: binds to a shared, already-built plan — zero O(E) or O(V)
  /// work, just two pointer stores. The plan (and the graph/layout it
  /// points into) must stay alive while bound; SubgraphCache payloads
  /// guarantee this by carrying graph, layout and plan together. Any
  /// number of kernels may adopt one plan and sweep concurrently.
  void AdoptPlan(std::shared_ptr<const WalkPlan> plan);

  /// True once BuildTransitions or AdoptPlan has bound a plan; sweeps
  /// LT_CHECK this.
  bool has_transitions() const { return plan_ != nullptr; }
  /// The bound plan (nullptr before any build/adopt).
  const WalkPlan* plan() const { return plan_; }
  /// The graph the bound plan was built from (nullptr before any build).
  const BipartiteGraph* graph() const {
    return plan_ != nullptr ? plan_->graph_ : nullptr;
  }
  Normalization normalization() const {
    return plan_ != nullptr ? plan_->norm_ : Normalization::kRowStochastic;
  }

  /// The bound plan's strategy ("simple", "blocked" or "blocked_reordered");
  /// bench/introspection only.
  const char* sweep_strategy() const;
  /// True when the bound plan sweeps a permuted CSR (adopted or private).
  bool reordered() const { return plan_ != nullptr && plan_->reordered(); }
  /// Rows per L1 tile of the blocked row pass (0 in simple mode).
  int32_t row_tile() const { return plan_ != nullptr ? plan_->row_tile_ : 0; }
  /// Test/bench hook: pin the plan for subsequent BuildTransitions calls
  /// (kAuto restores the cost probe). kSimple requires kRowStochastic;
  /// kBlockedReordered builds a private layout when none is passed. Has no
  /// effect on AdoptPlan — adopted plans were decided at build time.
  void ForcePlanForTesting(SweepMode mode) { forced_plan_ = mode; }

  /// Plan constants on this machine (bench/introspection): the
  /// value-vector ceiling under which the cost probe picks the simple
  /// plan, and the rows-per-L1-tile the blocked plans sweep with. Derived
  /// from the measured cache geometry (walk_layout.h) once per process.
  static size_t SimplePlanMaxValueBytes();
  static int32_t BlockedPlanRowTile();

  /// Compiles one query's absorbing flags and per-node immediate costs
  /// into the branch-free coefficient vectors. Requires kRowStochastic
  /// transitions for the current graph. `absorbing` and `node_cost` are
  /// local (subgraph) node-indexed, sizes == graph()->num_nodes();
  /// `node_cost[v]` is the cost paid per step leaving v (1.0 for absorbing
  /// *time*, the Eq. 9 entropy costs for absorbing *cost*). Absorbing
  /// nodes are pinned at exactly 0 regardless of cost. O(nodes). Writes
  /// only this kernel's scratch — safe to run concurrently with other
  /// kernels compiled against the same shared plan.
  void CompileAbsorbingSweep(const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost);

  /// Runs `iterations` truncated-DP sweeps (Algorithm 1 step 4) from
  /// V_0 ≡ 0 using the compiled coefficients; the result lands in
  /// `*value` (resized to num_nodes) and `*scratch` holds the double
  /// buffer. Semantics match AbsorbingValueTruncatedReference: absorbing
  /// nodes stay exactly 0, isolated transient nodes grow by their cost
  /// each sweep, everything else contracts toward the absorbing fixed
  /// point. `iterations <= 0` leaves `*value` all zero.
  void SweepTruncated(int iterations, std::vector<double>* value,
                      std::vector<double>* scratch) const;

  /// Ranking flavour of SweepTruncated, exploiting bipartiteness: user
  /// rows gather only item values and vice versa, and the recommenders
  /// rank *items* only, so the final item values depend on a single
  /// alternating chain item_τ ← user_{τ-1} ← item_{τ-2} ← … ← V_0 ≡ 0.
  /// This sweep updates exactly one side per step — half the edge work of
  /// the full DP, in place in `*value` with no double buffer. On return,
  /// item rows of `*value` (local ids >= num_users) are BIT-IDENTICAL to
  /// SweepTruncated's; user rows hold their last intermediate update
  /// (iteration τ-1) and must not be consumed. Requires a genuinely
  /// bipartite graph (every edge user↔item, which BipartiteGraph
  /// construction guarantees) and compiled kRowStochastic coefficients.
  void SweepTruncatedItemValues(int iterations,
                                std::vector<double>* value) const;

  /// Fused multi-query compile: `absorbing[q]` is query q's absorbing flag
  /// vector (each sized num_nodes, exactly as CompileAbsorbingSweep takes);
  /// `node_cost` is shared by every lane — queries fused into one batch
  /// come from the same recommender over the same subgraph, whose per-node
  /// costs do not depend on the query. Fills K-strided coefficient blocks
  /// (lane q of node v at index v·K + q, scattered through the permutation
  /// on reordered plans) so one row pass serves all K queries. K =
  /// absorbing.size() must be in [1, kMaxFusedWidth]. Lane q's compiled
  /// semantics are exactly CompileAbsorbingSweep(absorbing[q], node_cost)'s.
  void CompileAbsorbingSweepBatch(const std::vector<std::vector<bool>>& absorbing,
                                  const std::vector<double>& node_cost);

  /// Fused multi-query ranking sweep over the coefficients compiled by
  /// CompileAbsorbingSweepBatch: one CSR pass per truncated-walk iteration
  /// advances all K interleaved value lanes — each edge's column load
  /// feeds K lanes (K=8 doubles is exactly one cache line per gathered
  /// node), amortizing the memory stream that bandwidth-binds the
  /// single-query sweep past L2. On return `*value_block` holds num_nodes·K
  /// doubles, lane q strided at value_block[v·K + q]; item rows of lane q
  /// are BIT-IDENTICAL to SweepTruncatedItemValues run sequentially for
  /// query q (user rows hold the same last intermediate as the sequential
  /// sweep and must not be consumed). Increments the process-global fused
  /// sweep counters (GetWalkKernelFusedStats).
  void SweepTruncatedItemValuesBatch(int iterations,
                                     std::vector<double>* value_block) const;

  /// Width of the last CompileAbsorbingSweepBatch (0 before any).
  int32_t fused_width() const { return batch_width_; }

  /// The fusion width cap for a graph of `num_nodes` local nodes: 16 while
  /// a 16-lane value block still fits the probed L2 (small cached
  /// subgraphs — wider fusion is free when the whole block stays
  /// cache-resident), else 8 — eight interleaved double lanes per node are
  /// exactly one 64-byte line, so every gathered line is fully used and
  /// the CSR stream is amortized 8 ways, which is where the bandwidth win
  /// saturates in the past-L2 regime (see docs/KERNELS.md and the
  /// fused-width bench ladder).
  static int32_t FusedWidthCap(int32_t num_nodes);

  /// One power-iteration step over the transition CSR:
  ///     y[v] = alpha·⟨prob_row(v), x⟩ + beta·restart[v]
  /// (`restart == nullptr` drops the second term). With kColumnStochastic
  /// transitions this is y = alpha·Pᵀx + beta·r — the PPR update; with
  /// kRaw it is y = alpha·A·x — the Katz frontier push. `x` and `y` must
  /// have num_nodes elements and must not alias.
  ///
  /// Sparse inputs stay cheap: when the rows with x != 0 carry less than
  /// half the graph's adjacency entries (the early Katz frontier, the
  /// first PPR iterations), the step runs as a push over those rows only
  /// — on a symmetric graph the push along row u with weight w/d(u)
  /// produces the same terms as the column-stochastic pull — instead of
  /// gathering all edges. The two execution paths agree to the kernel's
  /// ~1e-13 parity tolerance (not bit-identically), and the choice is a
  /// deterministic function of x, so repeated runs are reproducible.
  /// kRowStochastic transitions always take the dense pull (no Apply
  /// caller uses them).
  void Apply(double alpha, const double* x, double beta,
             const double* restart, double* y) const;

 private:
  /// Tiled absorbing pass over sweep-space rows [lo, hi): simple mode
  /// dispatches the normalizing rows once, blocked modes walk L1-sized row
  /// tiles and prefetch the next tile's index/value strips.
  void RunAbsorbingRange(int32_t lo, int32_t hi, const double* cur,
                         double* nxt) const;
  /// Same for the ranking sweep's in-place double-step pass.
  void RunFusedRange(int32_t lo, int32_t hi, double* x) const;
  /// Multi-query flavours over the K-strided coefficient blocks; the row
  /// tile shrinks by the width so the dense streams still fit L1.
  void RunAbsorbingRangeBatch(int32_t lo, int32_t hi, const double* cur,
                              double* nxt) const;
  void RunFusedRangeBatch(int32_t lo, int32_t hi, double* x) const;
  /// Prefetches the col/prob strips of sweep-space rows [lo, hi).
  void PrefetchRows(int32_t lo, int32_t hi) const;

  /// The instruction-set flavour every sweep dispatches through; bound at
  /// construction, never null.
  const internal::WalkKernelIsa* isa_;
  SweepMode forced_plan_ = SweepMode::kAuto;

  /// The bound plan: &own_plan_ after BuildTransitions, adopted_.get()
  /// after AdoptPlan, null before either.
  const WalkPlan* plan_ = nullptr;
  /// Kernel-owned plan for the cold BuildTransitions path; capacity kept
  /// across rebuilds.
  WalkPlan own_plan_;
  /// Keeps an adopted shared plan alive while bound.
  std::shared_ptr<const WalkPlan> adopted_;

  /// Per-row sweep coefficients compiled by CompileAbsorbingSweep, indexed
  /// in sweep space (permuted when reordered).
  std::vector<double> add_;    // constant term (0 for absorbing rows)
  std::vector<double> scale_;  // 1 ordinary row, 0 absorbing/isolated
  std::vector<double> self_;   // 1 isolated transient row, else 0
  /// K-strided coefficient blocks compiled by CompileAbsorbingSweepBatch
  /// (lane q of sweep-space row v at v·batch_width_ + q).
  int32_t batch_width_ = 0;
  std::vector<double> badd_;
  std::vector<double> bscale_;
  std::vector<double> bself_;
  /// Permuted-space sweep buffers (reordered plans only). Mutable because
  /// sweeps are logically const — the kernel is single-owner per worker.
  mutable std::vector<double> pval_;
  mutable std::vector<double> pscratch_;
  mutable std::vector<double> px_;
  /// Permuted-space strided value block for the fused batch sweep.
  mutable std::vector<double> pblock_;
};

/// Process-global fused-sweep counters: how many fused batch sweeps ran and
/// how many query lanes they carried (lanes / sweeps = mean fused width).
/// Exported to /metrics as longtail_walk_fused_sweeps_total and
/// longtail_walk_fused_lanes_total.
struct WalkKernelFusedStats {
  uint64_t sweeps = 0;
  uint64_t lanes = 0;
};
WalkKernelFusedStats GetWalkKernelFusedStats();

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_WALK_KERNEL_H_
