// The unified walk kernel: one tuned inner loop for every truncated
// random-walk sweep in the system.
//
// Before this subsystem existed, five call sites — the truncated DP behind
// HT/AT/AC1/AC2 (markov.cc via graph_recommender_base.cc) and the PPR/Katz
// power iterations (baselines/pagerank.cc, baselines/katz.cc) — each kept a
// bespoke loop over BipartiteGraph adjacency, re-deriving transition
// probabilities (a weighted-degree load plus a divide per row) and
// re-branching on absorbing/isolated nodes every iteration. WalkKernel
// retires those loops:
//
//  * BuildTransitions compiles the graph into a *normalized transition
//    CSR*: a contiguous value array parallel to the graph's adjacency with
//    edge weights pre-divided by weighted degree (row- or
//    column-stochastic) or copied raw (Katz). Built once per extracted
//    subgraph (or once per fitted global graph) and reused across every
//    sweep iteration.
//  * CompileAbsorbingSweep folds per-query absorbing flags, isolated
//    nodes, and per-node costs into three dense coefficient vectors so the
//    sweep's inner loop is branch-free:
//        next[v] = add[v] + scale[v]·⟨prob_row(v), value⟩ + self[v]·value[v]
//    (absorbing: add=scale=self=0 pins the value at exactly 0; isolated
//    transient: scale=0, self=1 accumulates cost forever; ordinary rows:
//    scale=1, self=0).
//  * SweepTruncated / Apply run the sweep as a blocked, 4-way-unrolled
//    gather over the transition CSR. The gather is *runtime-dispatched*:
//    one portable binary carries both a scalar flavour and an AVX2 flavour
//    (hardware vgatherdpd, compiled in its own -mavx2 translation unit),
//    and a one-time CPUID probe at kernel construction picks the table —
//    no recompilation per host. The two flavours are bit-identical (same
//    per-lane accumulation order and reduction tree, FP contraction off in
//    the AVX2 TU), enforced by tests/walk_kernel_test.cc. See
//    docs/KERNELS.md for the layout, the blocking/unroll parameters and
//    how to re-tune them.
//
// Numerical contract: results agree with the retained reference loop
// (AbsorbingValueTruncatedReference in markov.h) to relative tolerance
// ~1e-13 per iteration — pre-normalization changes (Σ w·v)/d into
// Σ (w/d)·v and the unroll changes the summation tree, so bit-identity
// with the *old* loop is impossible; what the system guarantees instead is
// that every production path (single-user, batch at any thread count,
// cache-hit, checkpoint-restored) runs the same kernel and is therefore
// bit-identical across those paths. tests/walk_kernel_test.cc enforces
// both properties.
#ifndef LONGTAIL_GRAPH_WALK_KERNEL_H_
#define LONGTAIL_GRAPH_WALK_KERNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/walk_layout.h"

namespace longtail {

namespace internal {
struct WalkKernelIsa;
}  // namespace internal

/// Per-graph normalized transition CSR plus per-query sweep coefficients.
/// One kernel lives in each WalkWorkspace (rebuilt per extracted subgraph)
/// and inside each PPR/Katz recommender (built once at Fit/LoadModel).
/// Buffers are sized lazily and keep their capacity, so steady-state reuse
/// performs no heap allocation. Not thread-safe: one kernel per worker.
class WalkKernel {
 public:
  /// How BuildTransitions derives the contiguous transition-value array
  /// from the graph's edge weights.
  enum class Normalization {
    /// prob[k] = w[k] / weighted_degree(row): row-stochastic. The DP
    /// gather ⟨prob_row(v), value⟩ is then exactly Σ_j p_vj·value[j] of
    /// Eq. 1 — what the truncated absorbing-value sweeps consume.
    kRowStochastic,
    /// prob[k] = w[k] / weighted_degree(col[k]): column-stochastic. On a
    /// symmetric graph, gathering row v yields (Pᵀx)[v] — the push step of
    /// the PPR power iteration expressed as a pull, which vectorizes.
    kColumnStochastic,
    /// prob[k] = w[k] unchanged: raw adjacency gathers (Katz's β-damped
    /// path counting).
    kRaw,
  };

  /// The execution plan BuildTransitions picks per graph shape (one-time
  /// cost probe against the machine's measured cache geometry; see
  /// docs/KERNELS.md for the thresholds):
  ///  * kSimple — flat reference-style loop, no row tiling. Wins while
  ///    one value vector (the window row gathers read from) still fits in
  ///    L2, where tile bookkeeping is pure overhead. Row-stochastic only.
  ///  * kBlocked — L1-tiled row pass with next-tile prefetch, identity
  ///    node order; wins once the value vector exceeds L2.
  /// Both identity-order plans normalize row-stochastic transitions on the
  /// fly from the raw weights — the O(entries) transition materialization
  /// is skipped entirely, with the same per-entry rounding sequence (w·(1/d)
  /// then ·x), so results are bit-identical to a materialized sweep. Other
  /// normalizations (PPR/Katz) materialize once and amortize over many
  /// Apply calls.
  ///  * kBlockedReordered — kBlocked over a WalkLayout-permuted CSR
  ///    (adopted from the SubgraphCache or built here); seeds are injected
  ///    and values read back through the permutation, outputs bit-identical
  ///    in original id space.
  /// kAuto is only a ForcePlanForTesting value: restore the cost probe.
  enum class SweepMode { kAuto, kSimple, kBlocked, kBlockedReordered };

  /// Binds the kernel to the best row-gather implementation the running
  /// CPU supports (one CPUID probe per process, cached; see
  /// walk_kernel_isa.h). The binary is portable — an AVX2 host runs the
  /// vgatherdpd flavour, any other host the scalar flavour, with
  /// bit-identical results.
  WalkKernel();
  WalkKernel(const WalkKernel&) = delete;
  WalkKernel& operator=(const WalkKernel&) = delete;

  /// Name of the row-gather flavour this kernel dispatches to ("avx2" or
  /// "generic").
  const char* isa_name() const;
  /// True when this build carries the AVX2 translation unit *and* the
  /// running CPU/OS support AVX2 — i.e. when new kernels bind to "avx2".
  static bool RuntimeAvx2Available();
  /// Test-only: rebinds this kernel to the portable scalar flavour so
  /// parity tests can compare both paths within one process.
  void ForceGenericIsaForTesting();

  /// Builds (or rebuilds) the normalized transition CSR for `g` and picks
  /// the sweep plan (simple / blocked / blocked+reordered) for its shape.
  /// O(edges); call once per extracted subgraph / fitted graph, then reuse
  /// across any number of sweeps. The kernel keeps a pointer to `g` and
  /// reads its CSR arrays during sweeps, so `g` must outlive the kernel's
  /// use and must not be rebuilt in between.
  ///
  /// `layout` is an optional pre-built permutation of `g` (typically the
  /// one riding on a SubgraphCache payload): passing it makes the kernel
  /// sweep the permuted CSR without re-permuting — steady-state serving
  /// pays the reordering once per cached subgraph. When absent, auto
  /// plans stay in identity order (a one-shot query cannot amortize the
  /// permutation build; only ForcePlanForTesting(kBlockedReordered)
  /// self-builds one). Either way every public input/output stays in
  /// original local id space, bit-identical to the identity layout.
  ///
  /// Rows with weighted degree <= 0 get all-zero transition values (they
  /// are compiled as isolated by CompileAbsorbingSweep).
  void BuildTransitions(const BipartiteGraph& g, Normalization norm,
                        std::shared_ptr<const WalkLayout> layout = nullptr);

  /// True once BuildTransitions has run; sweeps LT_CHECK this.
  bool has_transitions() const { return graph_ != nullptr; }
  /// The graph the transitions were built from (nullptr before any build).
  const BipartiteGraph* graph() const { return graph_; }
  Normalization normalization() const { return norm_; }

  /// The plan the last BuildTransitions picked ("simple", "blocked" or
  /// "blocked_reordered"); bench/introspection only.
  const char* sweep_strategy() const;
  /// True when the last build swept a permuted CSR (adopted or private).
  bool reordered() const { return perm_ != nullptr; }
  /// Rows per L1 tile of the blocked row pass (0 in simple mode).
  int32_t row_tile() const { return row_tile_; }
  /// Test/bench hook: pin the plan for subsequent BuildTransitions calls
  /// (kAuto restores the cost probe). kSimple requires kRowStochastic;
  /// kBlockedReordered builds a private layout when none is passed.
  void ForcePlanForTesting(SweepMode mode) { forced_plan_ = mode; }

  /// Plan constants on this machine (bench/introspection): the
  /// value-vector ceiling under which the cost probe picks the simple
  /// plan, and the rows-per-L1-tile the blocked plans sweep with. Derived
  /// from the measured cache geometry (walk_layout.h) once per process.
  static size_t SimplePlanMaxValueBytes();
  static int32_t BlockedPlanRowTile();

  /// Compiles one query's absorbing flags and per-node immediate costs
  /// into the branch-free coefficient vectors. Requires kRowStochastic
  /// transitions for the current graph. `absorbing` and `node_cost` are
  /// local (subgraph) node-indexed, sizes == graph()->num_nodes();
  /// `node_cost[v]` is the cost paid per step leaving v (1.0 for absorbing
  /// *time*, the Eq. 9 entropy costs for absorbing *cost*). Absorbing
  /// nodes are pinned at exactly 0 regardless of cost. O(nodes).
  void CompileAbsorbingSweep(const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost);

  /// Runs `iterations` truncated-DP sweeps (Algorithm 1 step 4) from
  /// V_0 ≡ 0 using the compiled coefficients; the result lands in
  /// `*value` (resized to num_nodes) and `*scratch` holds the double
  /// buffer. Semantics match AbsorbingValueTruncatedReference: absorbing
  /// nodes stay exactly 0, isolated transient nodes grow by their cost
  /// each sweep, everything else contracts toward the absorbing fixed
  /// point. `iterations <= 0` leaves `*value` all zero.
  void SweepTruncated(int iterations, std::vector<double>* value,
                      std::vector<double>* scratch) const;

  /// Ranking flavour of SweepTruncated, exploiting bipartiteness: user
  /// rows gather only item values and vice versa, and the recommenders
  /// rank *items* only, so the final item values depend on a single
  /// alternating chain item_τ ← user_{τ-1} ← item_{τ-2} ← … ← V_0 ≡ 0.
  /// This sweep updates exactly one side per step — half the edge work of
  /// the full DP, in place in `*value` with no double buffer. On return,
  /// item rows of `*value` (local ids >= num_users) are BIT-IDENTICAL to
  /// SweepTruncated's; user rows hold their last intermediate update
  /// (iteration τ-1) and must not be consumed. Requires a genuinely
  /// bipartite graph (every edge user↔item, which BipartiteGraph
  /// construction guarantees) and compiled kRowStochastic coefficients.
  void SweepTruncatedItemValues(int iterations,
                                std::vector<double>* value) const;

  /// One power-iteration step over the transition CSR:
  ///     y[v] = alpha·⟨prob_row(v), x⟩ + beta·restart[v]
  /// (`restart == nullptr` drops the second term). With kColumnStochastic
  /// transitions this is y = alpha·Pᵀx + beta·r — the PPR update; with
  /// kRaw it is y = alpha·A·x — the Katz frontier push. `x` and `y` must
  /// have num_nodes elements and must not alias.
  ///
  /// Sparse inputs stay cheap: when the rows with x != 0 carry less than
  /// half the graph's adjacency entries (the early Katz frontier, the
  /// first PPR iterations), the step runs as a push over those rows only
  /// — on a symmetric graph the push along row u with weight w/d(u)
  /// produces the same terms as the column-stochastic pull — instead of
  /// gathering all edges. The two execution paths agree to the kernel's
  /// ~1e-13 parity tolerance (not bit-identically), and the choice is a
  /// deterministic function of x, so repeated runs are reproducible.
  /// kRowStochastic transitions always take the dense pull (no Apply
  /// caller uses them).
  void Apply(double alpha, const double* x, double beta,
             const double* restart, double* y) const;

 private:
  /// Applies the plan chosen by BuildTransitions: binds the active CSR
  /// views (identity or permuted), materializes transition values when the
  /// plan needs them, and sizes the row tile.
  void BindPlan(const BipartiteGraph& g,
                std::shared_ptr<const WalkLayout> layout);
  /// Tiled absorbing pass over sweep-space rows [lo, hi): simple mode
  /// dispatches the normalizing rows once, blocked modes walk L1-sized row
  /// tiles and prefetch the next tile's index/value strips.
  void RunAbsorbingRange(int32_t lo, int32_t hi, const double* cur,
                         double* nxt) const;
  /// Same for the ranking sweep's in-place double-step pass.
  void RunFusedRange(int32_t lo, int32_t hi, double* x) const;
  /// Prefetches the col/prob strips of sweep-space rows [lo, hi).
  void PrefetchRows(int32_t lo, int32_t hi) const;

  /// The instruction-set flavour every sweep dispatches through; bound at
  /// construction, never null.
  const internal::WalkKernelIsa* isa_;
  const BipartiteGraph* graph_ = nullptr;
  Normalization norm_ = Normalization::kRowStochastic;
  int32_t num_nodes_ = 0;
  SweepMode forced_plan_ = SweepMode::kAuto;

  // ---- Active plan, bound by BuildTransitions ----
  /// True when the plan normalizes rows on the fly from w_/wdeg_ instead
  /// of a materialized transition array (kRowStochastic, identity order —
  /// both the simple and the blocked plan).
  bool norm_fly_ = false;
  /// Rows per L1 tile of the blocked row pass (0 = flat simple loop).
  int32_t row_tile_ = 0;
  /// The CSR the sweeps walk: the graph's own arrays (identity order) or a
  /// WalkLayout's permuted arrays.
  const int64_t* ptr_ = nullptr;
  const NodeId* col_ = nullptr;
  /// Materialized transition values parallel to col_ (null when norm_fly_):
  /// layout row_prob, prob_.data(), or the graph's raw weights.
  const double* prob_data_ = nullptr;
  /// Raw weights + weighted degrees for the normalizing row passes.
  const double* w_ = nullptr;
  const double* wdeg_ = nullptr;
  /// Original local id → sweep-space row (null ⇔ identity layout).
  /// CompileAbsorbingSweep scatters coefficients through it; sweeps gather
  /// outputs back through it.
  const int32_t* perm_ = nullptr;
  /// Keeps an adopted layout alive for the lifetime of the transitions.
  std::shared_ptr<const WalkLayout> layout_;
  /// Privately built layout (large one-shot builds); capacity reused.
  WalkLayout own_layout_;

  /// Normalized transition values in sweep order, parallel to col_ (unused
  /// when the layout supplies row_prob or the plan normalizes on the fly).
  std::vector<double> prob_;
  /// Per-row sweep coefficients compiled by CompileAbsorbingSweep, indexed
  /// in sweep space (permuted when reordered).
  std::vector<double> add_;    // constant term (0 for absorbing rows)
  std::vector<double> scale_;  // 1 ordinary row, 0 absorbing/isolated
  std::vector<double> self_;   // 1 isolated transient row, else 0
  /// Permuted-space sweep buffers (reordered plans only). Mutable because
  /// sweeps are logically const — the kernel is single-owner per worker.
  mutable std::vector<double> pval_;
  mutable std::vector<double> pscratch_;
  mutable std::vector<double> px_;
};

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_WALK_KERNEL_H_
