// The undirected edge-weighted user-item graph of §3.1.
//
// Nodes are users followed by items: user u ↦ node u, item i ↦ node
// num_users + i. Edge weight w(u, i) is the rating value (or 1.0 when built
// unweighted, kept for ablation). Adjacency is CSR over all nodes.
#ifndef LONGTAIL_GRAPH_BIPARTITE_GRAPH_H_
#define LONGTAIL_GRAPH_BIPARTITE_GRAPH_H_

#include <span>
#include <vector>

#include "core/types.h"
#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

class ChunkReader;
class ChunkWriter;

/// Immutable undirected bipartite graph with weighted adjacency.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Copies are counted (see CopyCountForTesting) because the zero-copy
  /// warm path's whole contract is that cache hits perform none: payload
  /// admission pays exactly one CompactCopy, and every adopter afterwards
  /// shares that payload by pointer. Moves stay free and uncounted.
  BipartiteGraph(const BipartiteGraph& other);
  BipartiteGraph& operator=(const BipartiteGraph& other);
  BipartiteGraph(BipartiteGraph&&) = default;
  BipartiteGraph& operator=(BipartiteGraph&&) = default;

  /// Process-wide count of BipartiteGraph copy-constructions/assignments
  /// (monotonic, relaxed atomic). Tests measure deltas across an operation
  /// to prove the warm path is zero-copy; production code never reads it.
  static uint64_t CopyCountForTesting();

  /// Builds the rating graph from a dataset. When `weighted` is false all
  /// edge weights are 1 (ablation of "edge weight corresponds to rating").
  static BipartiteGraph FromDataset(const Dataset& data, bool weighted = true);

  /// Builds directly from per-node adjacency (used by subgraph extraction).
  /// `adjacency[n]` lists (neighbor, weight); must be symmetric.
  static BipartiteGraph FromAdjacency(
      int32_t num_users, int32_t num_items,
      const std::vector<std::vector<std::pair<NodeId, double>>>& adjacency);

  /// In-place rebuild, reusing existing storage (the batch query engine
  /// rebuilds a per-query induced subgraph into the same object thousands
  /// of times). `degrees[n]` is the number of adjacency entries node n will
  /// receive. After BeginAssign, add each undirected edge exactly once with
  /// AssignEdge (both directions are written), then call FinishAssign to
  /// compute weighted degrees. No allocation occurs once capacity has grown
  /// to the largest subgraph seen.
  void BeginAssign(int32_t num_users, int32_t num_items,
                   std::span<const int32_t> degrees);
  void AssignEdge(NodeId a, NodeId b, double weight);
  void FinishAssign();

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_nodes() const { return num_users_ + num_items_; }
  /// Number of undirected edges.
  int64_t num_edges() const { return num_edges_; }

  NodeId UserNode(UserId u) const { return u; }
  NodeId ItemNode(ItemId i) const { return num_users_ + i; }
  bool IsUserNode(NodeId n) const { return n < num_users_; }
  bool IsItemNode(NodeId n) const { return n >= num_users_; }
  UserId UserOf(NodeId n) const { return n; }
  ItemId ItemOf(NodeId n) const { return n - num_users_; }

  std::span<const NodeId> Neighbors(NodeId n) const {
    return {adj_.data() + ptr_[n],
            static_cast<size_t>(ptr_[n + 1] - ptr_[n])};
  }
  /// Raw CSR arrays for kernel code that iterates all rows at once (the
  /// walk kernel builds its normalized transition array parallel to these).
  /// `RowPointers()` has num_nodes()+1 entries; row n's adjacency occupies
  /// `[RowPointers()[n], RowPointers()[n+1])` of `FlatNeighbors()` /
  /// `FlatWeights()`. Views stay valid until the next BeginAssign/move.
  std::span<const int64_t> RowPointers() const { return ptr_; }
  std::span<const NodeId> FlatNeighbors() const { return adj_; }
  std::span<const double> FlatWeights() const { return weights_; }
  std::span<const double> Weights(NodeId n) const {
    return {weights_.data() + ptr_[n],
            static_cast<size_t>(ptr_[n + 1] - ptr_[n])};
  }
  int32_t Degree(NodeId n) const {
    return static_cast<int32_t>(ptr_[n + 1] - ptr_[n]);
  }
  /// d_i = Σ_j a(i, j): the weighted degree used for transition
  /// probabilities (Eq. 1) and the stationary distribution (Eq. 2).
  double WeightedDegree(NodeId n) const { return weighted_degree_[n]; }
  /// All weighted degrees as one span (num_nodes entries) — the walk
  /// kernel's simple sweep streams this array alongside the raw weights.
  std::span<const double> WeightedDegrees() const { return weighted_degree_; }
  /// Σ_{i,j} a(i, j) over the full (symmetric) adjacency.
  double TotalWeight() const { return total_weight_; }

  /// A copy with the transient BeginAssign/AssignEdge scratch released —
  /// what long-lived holders (e.g. SubgraphCache payloads) should store.
  BipartiteGraph CompactCopy() const;

  /// Serializes the CSR content (dimensions + ptr/adj/weights) into a
  /// checkpoint chunk payload. Derived quantities — weighted degrees,
  /// total weight, the content fingerprint — are recomputed on load, so a
  /// loaded graph is indistinguishable from one built by FromDataset on
  /// the same ratings (same fingerprint → SubgraphCache entries stay
  /// shareable across a save/load restart).
  void SaveTo(ChunkWriter* w) const;

  /// Reads a graph written by SaveTo, validating every structural
  /// invariant (monotone CSR pointers, in-range adjacency) before use.
  static Result<BipartiteGraph> LoadFrom(ChunkReader* r);

  /// Content hash over dimensions, adjacency and weights, computed by
  /// FromDataset/FromAdjacency. Two graphs built from the same ratings have
  /// the same fingerprint even when they are distinct objects, which is what
  /// lets a SubgraphCache be shared across recommenders fitted on one
  /// dataset. 0 for graphs rebuilt in place via BeginAssign (per-query
  /// induced subgraphs are never cache keys themselves).
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  void ComputeFingerprint();

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int64_t num_edges_ = 0;
  double total_weight_ = 0.0;
  uint64_t fingerprint_ = 0;
  std::vector<int64_t> ptr_{0};
  std::vector<NodeId> adj_;
  std::vector<double> weights_;
  std::vector<double> weighted_degree_;
  /// Per-node write cursors, live only between BeginAssign and FinishAssign.
  std::vector<int64_t> fill_;
};

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_BIPARTITE_GRAPH_H_
