#include "graph/markov.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "graph/walk_kernel.h"
#include "util/logging.h"

namespace longtail {

namespace {

// Marks nodes that can reach the absorbing set (reverse BFS — the graph is
// undirected so forward reachability equals reverse reachability). Fills
// `*reach` (1 = reachable); `*queue` is scratch storage.
void ReachableFromAbsorbing(const BipartiteGraph& g,
                            const std::vector<bool>& absorbing,
                            std::vector<uint8_t>* reach,
                            std::vector<NodeId>* queue) {
  const int32_t n = g.num_nodes();
  reach->assign(n, 0);
  queue->clear();
  for (int32_t v = 0; v < n; ++v) {
    if (absorbing[v]) {
      (*reach)[v] = 1;
      queue->push_back(v);
    }
  }
  for (size_t head = 0; head < queue->size(); ++head) {
    const NodeId v = (*queue)[head];
    for (NodeId nbr : g.Neighbors(v)) {
      if (!(*reach)[nbr]) {
        (*reach)[nbr] = 1;
        queue->push_back(nbr);
      }
    }
  }
}

}  // namespace

void AbsorbingValueTruncatedReference(const BipartiteGraph& g,
                                      const std::vector<bool>& absorbing,
                                      const std::vector<double>& node_cost,
                                      int iterations,
                                      std::vector<double>* value_out,
                                      std::vector<double>* scratch) {
  const int32_t n = g.num_nodes();
  LT_CHECK_EQ(static_cast<size_t>(n), absorbing.size());
  LT_CHECK_EQ(static_cast<size_t>(n), node_cost.size());
  std::vector<double>& value = *value_out;
  std::vector<double>& next = *scratch;
  value.assign(n, 0.0);
  next.assign(n, 0.0);
  for (int t = 0; t < iterations; ++t) {
    for (int32_t v = 0; v < n; ++v) {
      if (absorbing[v]) {
        next[v] = 0.0;
        continue;
      }
      const double d = g.WeightedDegree(v);
      if (d <= 0.0) {
        // Isolated node: never absorbed; accumulates cost forever.
        next[v] = value[v] + node_cost[v];
        continue;
      }
      const auto nbrs = g.Neighbors(v);
      const auto wts = g.Weights(v);
      double acc = 0.0;
      for (size_t k = 0; k < nbrs.size(); ++k) {
        acc += wts[k] * value[nbrs[k]];
      }
      next[v] = node_cost[v] + acc / d;
    }
    value.swap(next);
  }
}

void AbsorbingValueTruncated(const BipartiteGraph& g,
                             const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost,
                             int iterations, WalkKernel* kernel,
                             std::vector<double>* value,
                             std::vector<double>* scratch) {
  // One-shot entry point: builds the kernel's private plan in place. The
  // serving path never comes through here — cached subgraphs carry an
  // admission-built WalkPlan the kernel adopts instead (see
  // graph_recommender_base.cc ComputeWalk).
  kernel->BuildTransitions(g, WalkKernel::Normalization::kRowStochastic);
  kernel->CompileAbsorbingSweep(absorbing, node_cost);
  kernel->SweepTruncated(iterations, value, scratch);
}

void AbsorbingValueTruncated(const BipartiteGraph& g,
                             const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost,
                             int iterations, std::vector<double>* value_out,
                             std::vector<double>* scratch) {
  WalkKernel kernel;
  AbsorbingValueTruncated(g, absorbing, node_cost, iterations, &kernel,
                          value_out, scratch);
}

std::vector<double> AbsorbingValueTruncated(const BipartiteGraph& g,
                                            const std::vector<bool>& absorbing,
                                            const std::vector<double>& node_cost,
                                            int iterations) {
  std::vector<double> value;
  std::vector<double> scratch;
  AbsorbingValueTruncated(g, absorbing, node_cost, iterations, &value,
                          &scratch);
  return value;
}

Status AbsorbingValueExactInto(const BipartiteGraph& g,
                               const std::vector<bool>& absorbing,
                               const std::vector<double>& node_cost,
                               const SolverOptions& options,
                               std::vector<double>* value_out,
                               SolverScratch* scratch) {
  const int32_t n = g.num_nodes();
  if (absorbing.size() != static_cast<size_t>(n) ||
      node_cost.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument(
        "absorbing/node_cost size must equal num_nodes");
  }
  bool any_absorbing = false;
  for (int32_t v = 0; v < n; ++v) any_absorbing |= absorbing[v] != 0;
  if (!any_absorbing) {
    return Status::InvalidArgument("absorbing set must be non-empty");
  }
  ReachableFromAbsorbing(g, absorbing, &scratch->flags, &scratch->queue);
  const std::vector<uint8_t>& reach = scratch->flags;

  // Gauss–Seidel directly on the graph (avoids materializing P):
  //   V(i) ← node_cost(i) + Σ_j p_ij V(j)
  // over transient reachable nodes. Self-loops do not occur (bipartite).
  std::vector<double>& value = *value_out;
  value.assign(n, 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  for (int32_t v = 0; v < n; ++v) {
    if (!reach[v] && !absorbing[v]) value[v] = inf;
  }
  double delta = inf;
  int it = 0;
  for (; it < options.max_iterations && delta >= options.tolerance; ++it) {
    delta = 0.0;
    for (int32_t v = 0; v < n; ++v) {
      if (absorbing[v] || !reach[v]) continue;
      const double d = g.WeightedDegree(v);
      if (d <= 0.0) continue;  // unreachable already handled
      const auto nbrs = g.Neighbors(v);
      const auto wts = g.Weights(v);
      double acc = 0.0;
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const double nv = value[nbrs[k]];
        if (std::isinf(nv)) continue;  // weight to unreachable is impossible
        acc += wts[k] * nv;
      }
      const double nv = node_cost[v] + acc / d;
      delta = std::max(delta, std::abs(nv - value[v]));
      value[v] = nv;
    }
  }
  if (delta >= options.tolerance) {
    return Status::Internal("absorbing-value solve did not converge after " +
                            std::to_string(it) + " iterations (delta=" +
                            std::to_string(delta) + ")");
  }
  return Status::OK();
}

Result<std::vector<double>> AbsorbingValueExact(
    const BipartiteGraph& g, const std::vector<bool>& absorbing,
    const std::vector<double>& node_cost, const SolverOptions& options) {
  std::vector<double> value;
  SolverScratch scratch;
  LT_RETURN_IF_ERROR(AbsorbingValueExactInto(g, absorbing, node_cost, options,
                                             &value, &scratch));
  return value;
}

std::vector<double> AbsorbingTimeTruncated(const BipartiteGraph& g,
                                           const std::vector<bool>& absorbing,
                                           int iterations) {
  return AbsorbingValueTruncated(
      g, absorbing, std::vector<double>(g.num_nodes(), 1.0), iterations);
}

Result<std::vector<double>> AbsorbingTimeExact(const BipartiteGraph& g,
                                               const std::vector<bool>& absorbing,
                                               const SolverOptions& options) {
  return AbsorbingValueExact(g, absorbing,
                             std::vector<double>(g.num_nodes(), 1.0), options);
}

Result<std::vector<double>> HittingTimeExact(const BipartiteGraph& g,
                                             NodeId target,
                                             const SolverOptions& options) {
  if (target < 0 || target >= g.num_nodes()) {
    return Status::OutOfRange("hitting-time target node out of range");
  }
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[target] = true;
  return AbsorbingTimeExact(g, absorbing, options);
}

void EntropyNodeCostsInto(const BipartiteGraph& g,
                          const std::vector<double>& user_entropy,
                          double user_jump_cost, std::vector<double>* cost_out) {
  LT_CHECK_EQ(static_cast<size_t>(g.num_users()), user_entropy.size());
  const int32_t n = g.num_nodes();
  std::vector<double>& cost = *cost_out;
  cost.assign(n, 0.0);
  for (int32_t v = 0; v < n; ++v) {
    if (g.IsUserNode(v)) {
      cost[v] = user_jump_cost;
      continue;
    }
    // Item node: expected entropy of the user reached in one step.
    const double d = g.WeightedDegree(v);
    if (d <= 0.0) {
      cost[v] = user_jump_cost;  // Isolated item; value is irrelevant.
      continue;
    }
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    double acc = 0.0;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      acc += wts[k] * user_entropy[g.UserOf(nbrs[k])];
    }
    cost[v] = acc / d;
  }
}

std::vector<double> EntropyNodeCosts(const BipartiteGraph& g,
                                     const std::vector<double>& user_entropy,
                                     double user_jump_cost) {
  std::vector<double> cost;
  EntropyNodeCostsInto(g, user_entropy, user_jump_cost, &cost);
  return cost;
}

}  // namespace longtail
