// Internal: the WalkKernel's runtime-dispatched row-pass implementations.
//
// One binary ships both a portable scalar gather and an AVX2 gather; a
// one-time CPUID check (OSXSAVE + AVX + XCR0 XMM/YMM + leaf-7 AVX2) picks
// the table every WalkKernel constructed in this process dispatches
// through. The two implementations are bit-identical by construction: the
// AVX2 gather accumulates lane i exactly like scalar accumulator a_i and
// reduces with the same (a0+a1)+(a2+a3) tree, and the AVX2 translation
// unit is compiled with FP contraction off so its scalar tail rounds like
// the generic build (tests/walk_kernel_test.cc pins this).
//
// This header is an implementation detail of src/graph/walk_kernel*;
// nothing outside the kernel should include it.
#ifndef LONGTAIL_GRAPH_WALK_KERNEL_ISA_H_
#define LONGTAIL_GRAPH_WALK_KERNEL_ISA_H_

#include <cstdint>

#include "core/types.h"

namespace longtail {
namespace internal {

/// Hard ceiling on the fused multi-query sweep width: the batch row passes
/// keep one per-lane gather accumulator block on the stack, sized by this
/// constant. WalkKernel::kMaxFusedWidth mirrors it for public callers.
inline constexpr int32_t kMaxFusedWidth = 32;

/// One instruction-set flavour of the kernel's hot row passes. All passes
/// process local node rows [lo, hi) of a transition CSR (`ptr`, `col`,
/// `prob`); callers own blocking and iteration structure.
///
/// Every absorbing pass skips the gather of rows with scale == self == 0
/// (absorbing rows) and writes exactly +0.0 — the value the full
/// expression produces for any finite gather, since 0·acc and 0·cur are
/// signed zeros that +0.0 absorbs. Queries absorb the probe user's rated
/// items, often the highest-degree rows, so the skip removes a large slice
/// of edge work without perturbing a single bit.
struct WalkKernelIsa {
  const char* name;  // "generic" or "avx2"

  /// Absorbing-sweep pass: nxt[v] = (add[v] + scale[v]·⟨prob_row(v), cur⟩)
  /// + self[v]·cur[v]. `cur == nxt` is allowed when the gathered columns
  /// never overlap [lo, hi) (the bipartite ranking sweep).
  void (*absorbing_rows)(int32_t lo, int32_t hi, const int64_t* ptr,
                         const NodeId* col, const double* prob,
                         const double* add, const double* scale,
                         const double* self, const double* cur, double* nxt);

  /// In-place double-step pass of the ranking sweep: ordinary rows advance
  /// one gather, isolated rows (self = 1) accumulate their cost twice in
  /// the same order the full sweep would:
  /// x[v] = ((add[v] + scale[v]·⟨prob_row(v), x⟩) + self[v]·x[v])
  ///        + self[v]·add[v].
  void (*absorbing_rows_fused)(int32_t lo, int32_t hi, const int64_t* ptr,
                               const NodeId* col, const double* prob,
                               const double* add, const double* scale,
                               const double* self, double* x);

  /// Normalizing flavour of absorbing_rows for the adaptive plan's
  /// "simple" mode: no materialized prob array — each row derives
  /// inv = 1/wdeg[v] and gathers (w[k]·inv)·cur[col[k]], the exact
  /// products BuildTransitions would have stored, so results stay
  /// bit-identical to the blocked path while skipping the O(entries)
  /// transition build that dominates tiny subgraphs.
  void (*absorbing_rows_norm)(int32_t lo, int32_t hi, const int64_t* ptr,
                              const NodeId* col, const double* w,
                              const double* wdeg, const double* add,
                              const double* scale, const double* self,
                              const double* cur, double* nxt);

  /// Normalizing flavour of absorbing_rows_fused (same contract).
  void (*absorbing_rows_fused_norm)(int32_t lo, int32_t hi,
                                    const int64_t* ptr, const NodeId* col,
                                    const double* w, const double* wdeg,
                                    const double* add, const double* scale,
                                    const double* self, double* x);

  /// Power-iteration pass: y[v] = alpha·⟨prob_row(v), x⟩ + beta·restart[v]
  /// (`restart == nullptr` drops the second term). `x` and `y` must not
  /// alias.
  void (*apply_rows)(int32_t lo, int32_t hi, const int64_t* ptr,
                     const NodeId* col, const double* prob, double alpha,
                     const double* x, double beta, const double* restart,
                     double* y);

  /// Fused multi-query (SpMM) flavours: `width` query lanes interleaved
  /// node-major — lane q of node v lives at index v·width + q of every
  /// strided array (add/scale/self/cur/nxt or x). One CSR row stream feeds
  /// all lanes; per lane the accumulation order, reduction tree and
  /// absorbing skip are exactly the single-query pass's, so lane q is
  /// bit-identical to a sequential sweep of query q (the parity suite pins
  /// this across widths 1–17, plans and ISAs). Rows absorbing in *every*
  /// lane skip their gather entirely; rows absorbing in some lanes gather
  /// once and overwrite the absorbing lanes with the constant +0.0 the
  /// sequential pass writes. `width` must be in [1, kMaxFusedWidth].
  void (*absorbing_rows_batch)(int32_t lo, int32_t hi, const int64_t* ptr,
                               const NodeId* col, const double* prob,
                               const double* add, const double* scale,
                               const double* self, const double* cur,
                               double* nxt, int32_t width);

  /// Batch flavour of absorbing_rows_fused (in-place double step).
  void (*absorbing_rows_fused_batch)(int32_t lo, int32_t hi,
                                     const int64_t* ptr, const NodeId* col,
                                     const double* prob, const double* add,
                                     const double* scale, const double* self,
                                     double* x, int32_t width);

  /// Batch flavour of absorbing_rows_norm (on-the-fly normalization).
  void (*absorbing_rows_norm_batch)(int32_t lo, int32_t hi,
                                    const int64_t* ptr, const NodeId* col,
                                    const double* w, const double* wdeg,
                                    const double* add, const double* scale,
                                    const double* self, const double* cur,
                                    double* nxt, int32_t width);

  /// Batch flavour of absorbing_rows_fused_norm.
  void (*absorbing_rows_fused_norm_batch)(
      int32_t lo, int32_t hi, const int64_t* ptr, const NodeId* col,
      const double* w, const double* wdeg, const double* add,
      const double* scale, const double* self, double* x, int32_t width);
};

/// The portable scalar implementation; always available.
const WalkKernelIsa* GenericWalkKernelIsa();

/// The AVX2 implementation, or nullptr when the build carries no AVX2
/// translation unit (non-x86 target or a compiler without -mavx2).
const WalkKernelIsa* Avx2WalkKernelIsa();

/// True when the running CPU and OS support AVX2 (CPUID + XGETBV). Pure
/// capability probe; does not consider whether the build carries the AVX2
/// translation unit.
bool CpuSupportsAvx2();

/// The table kernels dispatch through: AVX2 when both the build and the
/// CPU support it, generic otherwise. The probe runs once per process.
const WalkKernelIsa* ActiveWalkKernelIsa();

}  // namespace internal
}  // namespace longtail

#endif  // LONGTAIL_GRAPH_WALK_KERNEL_ISA_H_
