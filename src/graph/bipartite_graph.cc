#include "graph/bipartite_graph.h"

#include <atomic>
#include <cmath>

#include "data/serialization.h"
#include "util/hash.h"
#include "util/logging.h"

namespace longtail {

namespace {

/// Relaxed is enough: tests only compare deltas across operations they
/// fully order themselves.
std::atomic<uint64_t> g_graph_copy_count{0};

}  // namespace

BipartiteGraph::BipartiteGraph(const BipartiteGraph& other)
    : num_users_(other.num_users_),
      num_items_(other.num_items_),
      num_edges_(other.num_edges_),
      total_weight_(other.total_weight_),
      fingerprint_(other.fingerprint_),
      ptr_(other.ptr_),
      adj_(other.adj_),
      weights_(other.weights_),
      weighted_degree_(other.weighted_degree_),
      fill_(other.fill_) {
  g_graph_copy_count.fetch_add(1, std::memory_order_relaxed);
}

BipartiteGraph& BipartiteGraph::operator=(const BipartiteGraph& other) {
  if (this != &other) {
    num_users_ = other.num_users_;
    num_items_ = other.num_items_;
    num_edges_ = other.num_edges_;
    total_weight_ = other.total_weight_;
    fingerprint_ = other.fingerprint_;
    ptr_ = other.ptr_;
    adj_ = other.adj_;
    weights_ = other.weights_;
    weighted_degree_ = other.weighted_degree_;
    fill_ = other.fill_;
    g_graph_copy_count.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

uint64_t BipartiteGraph::CopyCountForTesting() {
  return g_graph_copy_count.load(std::memory_order_relaxed);
}

void BipartiteGraph::ComputeFingerprint() {
  uint64_t h = FnvHashBytes(&num_users_, sizeof(num_users_));
  h = FnvHashBytes(&num_items_, sizeof(num_items_), h);
  if (!adj_.empty()) {
    h = FnvHashBytes(adj_.data(), adj_.size() * sizeof(NodeId), h);
  }
  if (!weights_.empty()) {
    h = FnvHashBytes(weights_.data(), weights_.size() * sizeof(double), h);
  }
  fingerprint_ = h;
}

BipartiteGraph BipartiteGraph::CompactCopy() const {
  BipartiteGraph g = *this;
  // Drop the per-assign write cursors: they are transient scratch, and
  // long-lived holders (cache payloads) should not pay num_nodes * 8
  // bytes for them.
  g.fill_.clear();
  g.fill_.shrink_to_fit();
  return g;
}

BipartiteGraph BipartiteGraph::FromDataset(const Dataset& data,
                                           bool weighted) {
  BipartiteGraph g;
  g.num_users_ = data.num_users();
  g.num_items_ = data.num_items();
  const int32_t n = g.num_nodes();
  g.ptr_.assign(n + 1, 0);
  // Degrees: user side from UserDegree, item side from ItemPopularity.
  for (UserId u = 0; u < data.num_users(); ++u) {
    g.ptr_[u + 1] = data.UserDegree(u);
  }
  for (ItemId i = 0; i < data.num_items(); ++i) {
    g.ptr_[g.num_users_ + i + 1] = data.ItemPopularity(i);
  }
  for (int32_t k = 0; k < n; ++k) g.ptr_[k + 1] += g.ptr_[k];
  const int64_t total_entries = g.ptr_[n];
  g.adj_.resize(total_entries);
  g.weights_.resize(total_entries);

  std::vector<int64_t> next(g.ptr_.begin(), g.ptr_.end() - 1);
  for (UserId u = 0; u < data.num_users(); ++u) {
    const auto items = data.UserItems(u);
    const auto values = data.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      const double w = weighted ? static_cast<double>(values[k]) : 1.0;
      const NodeId un = u;
      const NodeId in = g.num_users_ + items[k];
      g.adj_[next[un]] = in;
      g.weights_[next[un]] = w;
      ++next[un];
      g.adj_[next[in]] = un;
      g.weights_[next[in]] = w;
      ++next[in];
    }
  }
  g.num_edges_ = data.num_ratings();
  g.weighted_degree_.assign(n, 0.0);
  for (int32_t v = 0; v < n; ++v) {
    double d = 0.0;
    for (int64_t k = g.ptr_[v]; k < g.ptr_[v + 1]; ++k) d += g.weights_[k];
    g.weighted_degree_[v] = d;
    g.total_weight_ += d;
  }
  g.ComputeFingerprint();
  return g;
}

void BipartiteGraph::BeginAssign(int32_t num_users, int32_t num_items,
                                 std::span<const int32_t> degrees) {
  num_users_ = num_users;
  num_items_ = num_items;
  const int32_t n = num_nodes();
  LT_CHECK_EQ(static_cast<size_t>(n), degrees.size());
  ptr_.resize(n + 1);
  ptr_[0] = 0;
  for (int32_t v = 0; v < n; ++v) ptr_[v + 1] = ptr_[v] + degrees[v];
  adj_.resize(ptr_[n]);
  weights_.resize(ptr_[n]);
  fill_.assign(ptr_.begin(), ptr_.end() - 1);
  num_edges_ = 0;
  total_weight_ = 0.0;
  fingerprint_ = 0;  // In-place rebuilds are never cache keys.
}

void BipartiteGraph::AssignEdge(NodeId a, NodeId b, double weight) {
  adj_[fill_[a]] = b;
  weights_[fill_[a]] = weight;
  ++fill_[a];
  adj_[fill_[b]] = a;
  weights_[fill_[b]] = weight;
  ++fill_[b];
  ++num_edges_;
}

void BipartiteGraph::FinishAssign() {
  const int32_t n = num_nodes();
  weighted_degree_.resize(n);
  for (int32_t v = 0; v < n; ++v) {
    LT_CHECK_EQ(fill_[v], ptr_[v + 1]) << "node " << v << " under-filled";
    double d = 0.0;
    for (int64_t k = ptr_[v]; k < ptr_[v + 1]; ++k) d += weights_[k];
    weighted_degree_[v] = d;
    total_weight_ += d;
  }
}

void BipartiteGraph::SaveTo(ChunkWriter* w) const {
  w->Scalar<int32_t>(num_users_);
  w->Scalar<int32_t>(num_items_);
  w->Scalar<int64_t>(num_edges_);
  w->Vector(ptr_);
  w->Vector(adj_);
  w->Vector(weights_);
}

Result<BipartiteGraph> BipartiteGraph::LoadFrom(ChunkReader* r) {
  BipartiteGraph g;
  LT_RETURN_IF_ERROR(r->Scalar(&g.num_users_));
  LT_RETURN_IF_ERROR(r->Scalar(&g.num_items_));
  LT_RETURN_IF_ERROR(r->Scalar(&g.num_edges_));
  if (g.num_users_ < 0 || g.num_items_ < 0 || g.num_edges_ < 0) {
    return Status::IOError("negative graph dimensions in checkpoint");
  }
  const int64_t n = g.num_nodes();
  LT_RETURN_IF_ERROR(r->Vector(&g.ptr_, static_cast<uint64_t>(n) + 1));
  LT_RETURN_IF_ERROR(r->Vector(&g.adj_, kMaxSerializedArrayElements));
  LT_RETURN_IF_ERROR(r->Vector(&g.weights_, kMaxSerializedArrayElements));
  // Structural invariants: Neighbors()/Weights() hand out spans straight
  // into these arrays, so everything a query dereferences is validated
  // here, once, at load time.
  if (g.ptr_.size() != static_cast<size_t>(n) + 1 || g.ptr_[0] != 0) {
    return Status::IOError("malformed graph CSR pointers in checkpoint");
  }
  for (int64_t v = 0; v < n; ++v) {
    if (g.ptr_[v + 1] < g.ptr_[v]) {
      return Status::IOError("non-monotone graph CSR pointers in checkpoint");
    }
  }
  const int64_t entries = g.ptr_[n];
  // Divide instead of multiplying: 2 * num_edges_ would be signed-overflow
  // UB for a hostile (but correctly checksummed) num_edges value.
  if (g.adj_.size() != static_cast<size_t>(entries) ||
      g.weights_.size() != static_cast<size_t>(entries) ||
      entries % 2 != 0 || entries / 2 != g.num_edges_) {
    return Status::IOError("graph adjacency size mismatch in checkpoint");
  }
  for (const NodeId nbr : g.adj_) {
    if (nbr < 0 || nbr >= n) {
      return Status::IOError("graph adjacency entry out of range in "
                             "checkpoint");
    }
  }
  // Weights feed transition probabilities (w / weighted degree): a NaN,
  // infinite or negative weight in a checksummed-but-hostile file would
  // make every query serve garbage under Status::OK, so reject it here.
  for (const double w : g.weights_) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::IOError("invalid graph edge weight in checkpoint");
    }
  }
  g.weighted_degree_.assign(n, 0.0);
  g.total_weight_ = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    double d = 0.0;
    for (int64_t k = g.ptr_[v]; k < g.ptr_[v + 1]; ++k) d += g.weights_[k];
    g.weighted_degree_[v] = d;
    g.total_weight_ += d;
  }
  g.ComputeFingerprint();
  return g;
}

BipartiteGraph BipartiteGraph::FromAdjacency(
    int32_t num_users, int32_t num_items,
    const std::vector<std::vector<std::pair<NodeId, double>>>& adjacency) {
  BipartiteGraph g;
  g.num_users_ = num_users;
  g.num_items_ = num_items;
  const int32_t n = g.num_nodes();
  LT_CHECK_EQ(static_cast<size_t>(n), adjacency.size());
  g.ptr_.assign(n + 1, 0);
  for (int32_t v = 0; v < n; ++v) {
    g.ptr_[v + 1] = g.ptr_[v] + static_cast<int64_t>(adjacency[v].size());
  }
  g.adj_.resize(g.ptr_[n]);
  g.weights_.resize(g.ptr_[n]);
  g.weighted_degree_.assign(n, 0.0);
  int64_t directed_entries = 0;
  for (int32_t v = 0; v < n; ++v) {
    int64_t pos = g.ptr_[v];
    double d = 0.0;
    for (const auto& [nbr, w] : adjacency[v]) {
      LT_CHECK_GE(nbr, 0);
      LT_CHECK_LT(nbr, n);
      g.adj_[pos] = nbr;
      g.weights_[pos] = w;
      ++pos;
      d += w;
    }
    directed_entries += static_cast<int64_t>(adjacency[v].size());
    g.weighted_degree_[v] = d;
    g.total_weight_ += d;
  }
  g.num_edges_ = directed_entries / 2;
  g.ComputeFingerprint();
  return g;
}

}  // namespace longtail
