// Random-walk primitives on the bipartite graph (§3.2).
//
// Transition probabilities are p_ij = a(i,j)/d_i (Eq. 1); the stationary
// distribution is π_i = d_i / Σ d (Eq. 2). A step simulator is provided for
// Monte-Carlo cross-checks of the analytic hitting/absorbing times.
#ifndef LONGTAIL_GRAPH_RANDOM_WALK_H_
#define LONGTAIL_GRAPH_RANDOM_WALK_H_

#include <optional>
#include <vector>

#include "graph/bipartite_graph.h"
#include "linalg/csr_matrix.h"
#include "util/random.h"

namespace longtail {

/// π_i = d_i / Σ_j d_j (Eq. 2); sums to 1 over all nodes.
std::vector<double> StationaryDistribution(const BipartiteGraph& g);

/// Builds the row-stochastic transition matrix P with p_ij = a(i,j)/d_i.
/// Rows of isolated nodes are all-zero.
CsrMatrix TransitionMatrix(const BipartiteGraph& g);

/// Simulates random walks for Monte-Carlo estimates.
class RandomWalkSimulator {
 public:
  explicit RandomWalkSimulator(const BipartiteGraph* g) : g_(g) {}

  /// One transition from `from` (weight-proportional). Returns nullopt for
  /// isolated nodes.
  std::optional<NodeId> Step(NodeId from, Rng* rng) const;

  /// Walks from `start` until any node with absorbing[node]==true is reached
  /// or `max_steps` transitions happen. Returns steps taken, or nullopt if
  /// the cap was hit before absorption.
  std::optional<int64_t> WalkUntilAbsorbed(NodeId start,
                                           const std::vector<bool>& absorbing,
                                           int64_t max_steps, Rng* rng) const;

  /// Monte-Carlo estimate of the absorbing time from `start`. Walks that hit
  /// `max_steps` are truncated at max_steps (biases long walks down; use a
  /// generous cap in tests).
  double EstimateAbsorbingTime(NodeId start, const std::vector<bool>& absorbing,
                               int num_walks, int64_t max_steps,
                               Rng* rng) const;

 private:
  const BipartiteGraph* g_;
};

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_RANDOM_WALK_H_
