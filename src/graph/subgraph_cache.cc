#include "graph/subgraph_cache.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"
#include "util/metrics.h"

namespace longtail {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Bytes of the admission-built plan structures: the WalkPlan's owned
/// storage (materialized transition values, if any — identity-order
/// row-stochastic plans normalize on the fly, and layout-backed plans
/// borrow the layout's row_prob, so this is usually just the struct) plus
/// the compact node index. Reported as its own gauge so the memory cost of
/// the zero-copy warm path stays visible next to the CSR it annotates.
size_t PlanBytes(const Subgraph& sub) {
  size_t bytes = sub.node_index.bytes();
  if (sub.plan != nullptr) bytes += sub.plan->OwnedBytes();
  return bytes;
}

/// Resident payload estimate: the CSR (adjacency + weights + row pointers +
/// weighted degrees) dominates; id maps, seeds, the optional walk layout
/// (permutation + permuted CSR + transition values) and the plan + node
/// index ride along.
size_t PayloadBytes(const Subgraph& sub, size_t num_seeds) {
  const size_t nodes = static_cast<size_t>(sub.graph.num_nodes());
  const size_t entries = 2 * static_cast<size_t>(sub.graph.num_edges());
  size_t bytes = entries * (sizeof(NodeId) + sizeof(double)) +
                 nodes * (sizeof(int64_t) + sizeof(double)) +
                 sub.users.size() * sizeof(UserId) +
                 sub.items.size() * sizeof(ItemId) +
                 num_seeds * sizeof(NodeId) + 128;  // entry bookkeeping
  if (sub.layout != nullptr) {
    bytes += sub.layout->perm.size() * sizeof(int32_t) +
             sub.layout->ptr.size() * sizeof(int64_t) +
             sub.layout->col.size() * sizeof(NodeId) +
             sub.layout->row_prob.size() * sizeof(double);
  }
  return bytes + PlanBytes(sub);
}

}  // namespace

SubgraphCache::SubgraphCache(SubgraphCacheOptions options) {
  always_build_layout_ = options.always_build_layout;
  const size_t num_shards = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  shard_mask_ = num_shards - 1;
  const size_t max_entries = std::max(options.max_entries, num_shards);
  max_per_shard_ = std::max<size_t>(1, max_entries / num_shards);
  max_bytes_per_shard_ =
      options.max_bytes > 0
          ? std::max<size_t>(1, options.max_bytes / num_shards)
          : 0;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SubgraphCache::~SubgraphCache() { BindMetrics(nullptr); }

void SubgraphCache::BindMetrics(MetricsRegistry* registry) {
  if (metrics_ != nullptr) metrics_->ReleaseCallbacks(this);
  metrics_ = registry;
  if (registry == nullptr) return;
  // Counters sum the shard atomics at scrape time; entries/resident_bytes
  // go through Stats() (brief per-shard locks, same as any Stats() caller).
  struct Field {
    const char* name;
    const char* help;
    uint64_t SubgraphCacheStats::*member;
  };
  static constexpr Field kCounters[] = {
      {"longtail_subgraph_cache_hits_total", "Cache hits.",
       &SubgraphCacheStats::hits},
      {"longtail_subgraph_cache_misses_total", "Cache misses.",
       &SubgraphCacheStats::misses},
      {"longtail_subgraph_cache_inserts_total", "Entries inserted.",
       &SubgraphCacheStats::inserts},
      {"longtail_subgraph_cache_evictions_total", "Entries evicted (LRU).",
       &SubgraphCacheStats::evictions},
      {"longtail_subgraph_cache_coalesced_waits_total",
       "Duplicate extractions absorbed by single-flight coalescing.",
       &SubgraphCacheStats::coalesced_waits},
  };
  for (const Field& field : kCounters) {
    registry->RegisterCallbackCounter(
        field.name, field.help, {},
        [this, member = field.member] { return Stats().*member; }, this);
  }
  registry->RegisterCallbackGauge(
      "longtail_subgraph_cache_entries", "Resident cache entries.", {},
      [this] { return static_cast<double>(Stats().entries); }, this);
  registry->RegisterCallbackGauge(
      "longtail_subgraph_cache_resident_bytes",
      "Estimated bytes of resident payloads.", {},
      [this] { return static_cast<double>(Stats().resident_bytes); }, this);
  registry->RegisterCallbackGauge(
      "longtail_subgraph_cache_plan_resident_bytes",
      "Slice of resident payload bytes owned by admission-built walk plans "
      "and node indexes.",
      {}, [this] { return static_cast<double>(Stats().plan_resident_bytes); },
      this);
}

uint64_t SubgraphCache::Key(uint64_t graph_fingerprint,
                            std::span<const NodeId> seeds,
                            const SubgraphOptions& options) {
  uint64_t h = FnvHashBytes(&graph_fingerprint, sizeof(graph_fingerprint));
  h = FnvHashBytes(&options.max_items, sizeof(options.max_items), h);
  if (!seeds.empty()) {
    h = FnvHashBytes(seeds.data(), seeds.size() * sizeof(NodeId), h);
  }
  // Mix so both the low bits (shard selection) and the full value (index
  // key) are well distributed.
  return MixHash64(h);
}

bool SubgraphCache::Matches(const Entry& e, uint64_t fingerprint,
                            std::span<const NodeId> seeds,
                            int32_t max_items) {
  return e.fingerprint == fingerprint && e.max_items == max_items &&
         e.seeds.size() == seeds.size() &&
         std::equal(e.seeds.begin(), e.seeds.end(), seeds.begin());
}

std::shared_ptr<const Subgraph> SubgraphCache::DetachPayload(
    const WalkWorkspace& ws) const {
  // Reverse-lookup tables stay empty: adopters answer global→local queries
  // from the compact node index built below.
  auto sub = std::make_shared<Subgraph>();
  sub->graph = ws.sub().graph.CompactCopy();
  sub->users = ws.sub().users;
  sub->items = ws.sub().items;
  // The one-time layout build: every adopter of this payload (and the
  // leader itself) sweeps the permuted CSR without re-permuting.
  if (always_build_layout_ && sub->graph.num_nodes() > 0) {
    auto layout = std::make_shared<WalkLayout>();
    BuildWalkLayout(sub->graph, /*with_row_prob=*/true, layout.get());
    sub->layout = std::move(layout);
  } else {
    sub->layout = BuildWalkLayoutIfBeneficial(sub->graph);
  }
  // Admission-time plan build — the heart of the zero-copy warm path. The
  // plan binds the payload's *own* graph and layout (it must: it points
  // into their arrays, and payload + plan live and die together), with the
  // same decision procedure BuildTransitions runs, so adopters sweeping it
  // are bit-identical to a cold extraction. After this, no adopter ever
  // runs BuildTransitions for this subgraph again.
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(sub->graph, WalkNormalization::kRowStochastic, sub->layout);
  sub->plan = std::move(plan);
  sub->node_index.Build(ws.num_global_users(), ws.num_global_items(), *sub);
  return sub;
}

bool SubgraphCache::Lookup(uint64_t key, const BipartiteGraph& g,
                           std::span<const NodeId> seeds,
                           const SubgraphOptions& options,
                           WalkWorkspace* ws) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const Subgraph> sub;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end() ||
        !Matches(*it->second, g.fingerprint(), seeds, options.max_items)) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    sub = it->second->sub;
  }
  // Zero-copy adoption outside the lock: the shared_ptr keeps the payload
  // alive even if this entry is evicted concurrently.
  ws->AdoptSharedSubgraph(std::move(sub));
  return true;
}

void SubgraphCache::GetOrExtract(const BipartiteGraph& g,
                                 const std::vector<NodeId>& seeds,
                                 const SubgraphOptions& options,
                                 WalkWorkspace* ws) {
  const uint64_t key = Key(g.fingerprint(), seeds, options);
  const uint64_t fingerprint = g.fingerprint();
  Shard& shard = ShardFor(key);
  // Abandonment (leader exits without publishing) sends waiters back here;
  // it cannot happen on the current extraction path, but the loop keeps the
  // contract airtight if extraction ever grows an early return.
  for (;;) {
    std::shared_ptr<const Subgraph> cached;
    std::shared_ptr<FlightTicket> ticket;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end() &&
          Matches(*it->second, fingerprint, seeds, options.max_items)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        cached = it->second->sub;
      } else {
        auto fit = shard.inflight.find(key);
        if (fit != shard.inflight.end() &&
            fit->second->fingerprint == fingerprint &&
            fit->second->max_items == options.max_items &&
            fit->second->seeds.size() == seeds.size() &&
            std::equal(fit->second->seeds.begin(), fit->second->seeds.end(),
                       seeds.begin())) {
          // Identical extraction already running: coalesce behind it.
          ticket = fit->second;
          shard.coalesced_waits.fetch_add(1, std::memory_order_relaxed);
        } else if (fit != shard.inflight.end()) {
          // 64-bit key collision with a *different* in-flight identity:
          // bypass coalescing (waiting would adopt the wrong subgraph).
          shard.misses.fetch_add(1, std::memory_order_relaxed);
        } else {
          ticket = std::make_shared<FlightTicket>();
          ticket->fingerprint = fingerprint;
          ticket->max_items = options.max_items;
          ticket->seeds = seeds;
          shard.inflight[key] = ticket;
          shard.misses.fetch_add(1, std::memory_order_relaxed);
          leader = true;
        }
      }
    }
    if (cached != nullptr) {
      ws->AdoptSharedSubgraph(std::move(cached));
      return;
    }
    if (ticket == nullptr) {
      // Collision bypass: extract privately; latest-wins insert below.
      ExtractSubgraphInto(g, seeds, options, ws);
      std::shared_ptr<const Subgraph> payload = DetachPayload(*ws);
      ws->AdoptSharedSubgraph(payload);
      InsertPayload(key, fingerprint, seeds, options, std::move(payload));
      return;
    }
    if (leader) {
      if (leader_extract_hook_) leader_extract_hook_();
      ExtractSubgraphInto(g, seeds, options, ws);
      std::shared_ptr<const Subgraph> payload = DetachPayload(*ws);
      // The leader swaps its raw extraction for the payload it is about to
      // publish, so its own walk sweeps the exact plan (and layout) every
      // waiter and later hit will share.
      ws->AdoptSharedSubgraph(payload);
      {
        // LRU first, ticket erase second: a thread arriving in between
        // hits the fresh entry instead of opening a duplicate flight.
        std::lock_guard<std::mutex> lock(shard.mu);
        InsertPayloadLocked(&shard, key, fingerprint, seeds, options,
                            payload);
        auto fit = shard.inflight.find(key);
        if (fit != shard.inflight.end() && fit->second == ticket) {
          shard.inflight.erase(fit);
        }
      }
      {
        std::lock_guard<std::mutex> lock(ticket->mu);
        ticket->sub = std::move(payload);
        ticket->done = true;
      }
      ticket->cv.notify_all();
      return;
    }
    // Waiter: block until the leader publishes, then adopt its payload.
    std::shared_ptr<const Subgraph> published;
    {
      std::unique_lock<std::mutex> lock(ticket->mu);
      ticket->cv.wait(lock, [&] { return ticket->done; });
      published = ticket->sub;
    }
    if (published != nullptr) {
      ws->AdoptSharedSubgraph(std::move(published));
      return;
    }
    // Leader abandoned: retry from the top (hit, new flight, or lead).
  }
}

void SubgraphCache::InsertPayload(uint64_t key, uint64_t graph_fingerprint,
                                  std::span<const NodeId> seeds,
                                  const SubgraphOptions& options,
                                  std::shared_ptr<const Subgraph> sub) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertPayloadLocked(&shard, key, graph_fingerprint, seeds, options,
                      std::move(sub));
}

void SubgraphCache::InsertPayloadLocked(Shard* shard, uint64_t key,
                                        uint64_t graph_fingerprint,
                                        std::span<const NodeId> seeds,
                                        const SubgraphOptions& options,
                                        std::shared_ptr<const Subgraph> sub) {
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    if (Matches(*it->second, graph_fingerprint, seeds, options.max_items)) {
      // Another worker inserted the same extraction first; its payload is
      // identical, so keep it and just refresh recency.
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
      return;
    }
    // 64-bit key collision between different identities: latest wins.
    shard->bytes -= it->second->bytes;
    shard->plan_bytes -= it->second->plan_bytes;
    shard->lru.erase(it->second);
    shard->index.erase(it);
    shard->evictions.fetch_add(1, std::memory_order_relaxed);
  }
  Entry entry;
  entry.key = key;
  entry.fingerprint = graph_fingerprint;
  entry.max_items = options.max_items;
  entry.seeds.assign(seeds.begin(), seeds.end());
  entry.bytes = PayloadBytes(*sub, seeds.size());
  entry.plan_bytes = PlanBytes(*sub);
  entry.sub = std::move(sub);
  shard->bytes += entry.bytes;
  shard->plan_bytes += entry.plan_bytes;
  shard->lru.push_front(std::move(entry));
  shard->index[key] = shard->lru.begin();
  shard->inserts.fetch_add(1, std::memory_order_relaxed);
  EvictOverflow(shard);
}

void SubgraphCache::Insert(uint64_t key, uint64_t graph_fingerprint,
                           std::span<const NodeId> seeds,
                           const SubgraphOptions& options,
                           const WalkWorkspace& ws) {
  // Detach a self-contained copy before taking the lock.
  InsertPayload(key, graph_fingerprint, seeds, options, DetachPayload(ws));
}

void SubgraphCache::EvictOverflow(Shard* shard) {
  while (shard->lru.size() > max_per_shard_ ||
         (max_bytes_per_shard_ > 0 && shard->bytes > max_bytes_per_shard_ &&
          shard->lru.size() > 1)) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->plan_bytes -= victim.plan_bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    shard->evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

SubgraphCacheStats SubgraphCache::Stats() const {
  SubgraphCacheStats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits.load(std::memory_order_relaxed);
    stats.misses += shard->misses.load(std::memory_order_relaxed);
    stats.inserts += shard->inserts.load(std::memory_order_relaxed);
    stats.evictions += shard->evictions.load(std::memory_order_relaxed);
    stats.coalesced_waits +=
        shard->coalesced_waits.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.resident_bytes += shard->bytes;
    stats.plan_resident_bytes += shard->plan_bytes;
  }
  return stats;
}

void SubgraphCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->plan_bytes = 0;
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->inserts.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
    shard->coalesced_waits.store(0, std::memory_order_relaxed);
  }
}

}  // namespace longtail
