#include "graph/subgraph_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace longtail {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Resident payload estimate: the CSR (adjacency + weights + row pointers +
/// weighted degrees) dominates; id maps and seeds ride along.
size_t PayloadBytes(const Subgraph& sub, size_t num_seeds) {
  const size_t nodes = static_cast<size_t>(sub.graph.num_nodes());
  const size_t entries = 2 * static_cast<size_t>(sub.graph.num_edges());
  return entries * (sizeof(NodeId) + sizeof(double)) +
         nodes * (sizeof(int64_t) + sizeof(double)) +
         sub.users.size() * sizeof(UserId) +
         sub.items.size() * sizeof(ItemId) + num_seeds * sizeof(NodeId) +
         128;  // entry bookkeeping overhead
}

}  // namespace

SubgraphCache::SubgraphCache(SubgraphCacheOptions options) {
  const size_t num_shards = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  shard_mask_ = num_shards - 1;
  const size_t max_entries = std::max(options.max_entries, num_shards);
  max_per_shard_ = std::max<size_t>(1, max_entries / num_shards);
  max_bytes_per_shard_ =
      options.max_bytes > 0
          ? std::max<size_t>(1, options.max_bytes / num_shards)
          : 0;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t SubgraphCache::Key(uint64_t graph_fingerprint,
                            std::span<const NodeId> seeds,
                            const SubgraphOptions& options) {
  uint64_t h = FnvHashBytes(&graph_fingerprint, sizeof(graph_fingerprint));
  h = FnvHashBytes(&options.max_items, sizeof(options.max_items), h);
  if (!seeds.empty()) {
    h = FnvHashBytes(seeds.data(), seeds.size() * sizeof(NodeId), h);
  }
  // Mix so both the low bits (shard selection) and the full value (index
  // key) are well distributed.
  return MixHash64(h);
}

bool SubgraphCache::Matches(const Entry& e, uint64_t fingerprint,
                            std::span<const NodeId> seeds,
                            int32_t max_items) {
  return e.fingerprint == fingerprint && e.max_items == max_items &&
         e.seeds.size() == seeds.size() &&
         std::equal(e.seeds.begin(), e.seeds.end(), seeds.begin());
}

bool SubgraphCache::Lookup(uint64_t key, const BipartiteGraph& g,
                           std::span<const NodeId> seeds,
                           const SubgraphOptions& options,
                           WalkWorkspace* ws) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const Subgraph> sub;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end() ||
        !Matches(*it->second, g.fingerprint(), seeds, options.max_items)) {
      ++shard.misses;
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    sub = it->second->sub;
  }
  // The workspace copy happens outside the lock: the shared_ptr keeps the
  // payload alive even if this entry is evicted concurrently.
  ws->AdoptSubgraph(g, *sub);
  return true;
}

void SubgraphCache::Insert(uint64_t key, uint64_t graph_fingerprint,
                           std::span<const NodeId> seeds,
                           const SubgraphOptions& options,
                           const WalkWorkspace& ws) {
  // Detach a self-contained copy before taking the lock. Reverse-lookup
  // tables stay empty: cached subgraphs are only ever read back through
  // AdoptSubgraph, which rebuilds the workspace's stamped tables.
  auto sub = std::make_shared<Subgraph>();
  sub->graph = ws.sub().graph.CompactCopy();
  sub->users = ws.sub().users;
  sub->items = ws.sub().items;

  Entry entry;
  entry.key = key;
  entry.fingerprint = graph_fingerprint;
  entry.max_items = options.max_items;
  entry.seeds.assign(seeds.begin(), seeds.end());
  entry.bytes = PayloadBytes(*sub, seeds.size());
  entry.sub = std::move(sub);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    if (Matches(*it->second, graph_fingerprint, seeds, options.max_items)) {
      // Another worker inserted the same extraction first; its payload is
      // identical, so keep it and just refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    // 64-bit key collision between different identities: latest wins.
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.evictions;
  }
  shard.bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  ++shard.inserts;
  EvictOverflow(&shard);
}

void SubgraphCache::EvictOverflow(Shard* shard) {
  while (shard->lru.size() > max_per_shard_ ||
         (max_bytes_per_shard_ > 0 && shard->bytes > max_bytes_per_shard_ &&
          shard->lru.size() > 1)) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

SubgraphCacheStats SubgraphCache::Stats() const {
  SubgraphCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
    stats.resident_bytes += shard->bytes;
  }
  return stats;
}

void SubgraphCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->hits = shard->misses = shard->inserts = shard->evictions = 0;
  }
}

}  // namespace longtail
