#include "graph/walk_layout.h"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/logging.h"

namespace longtail {

namespace {

size_t SysconfCacheBytes(int name, size_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long v = sysconf(name);
  if (v > 0) return static_cast<size_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

CacheGeometry ProbeCacheGeometryOnce() {
  CacheGeometry g;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  g.l1d_bytes = SysconfCacheBytes(_SC_LEVEL1_DCACHE_SIZE, 32 * 1024);
  g.l2_bytes = SysconfCacheBytes(_SC_LEVEL2_CACHE_SIZE, 256 * 1024);
  g.l3_bytes = SysconfCacheBytes(_SC_LEVEL3_CACHE_SIZE, 8 * 1024 * 1024);
#else
  g.l1d_bytes = 32 * 1024;
  g.l2_bytes = 256 * 1024;
  g.l3_bytes = 8 * 1024 * 1024;
#endif
  // Defend against nonsense readings (containers sometimes report 0 or an
  // inverted hierarchy): enforce sane minima and monotonicity.
  g.l1d_bytes = std::max<size_t>(g.l1d_bytes, 16 * 1024);
  g.l2_bytes = std::max(g.l2_bytes, 4 * g.l1d_bytes);
  g.l3_bytes = std::max(g.l3_bytes, g.l2_bytes);
  return g;
}

}  // namespace

const CacheGeometry& ProbeCacheGeometry() {
  static const CacheGeometry geometry = ProbeCacheGeometryOnce();
  return geometry;
}

void BuildWalkLayout(const BipartiteGraph& g, bool with_row_prob,
                     WalkLayout* out) {
  const int32_t n = g.num_nodes();
  const auto gptr = g.RowPointers();
  const auto gcol = g.FlatNeighbors();
  const auto gw = g.FlatWeights();
  const int64_t entries = n > 0 ? gptr[n] : 0;

  out->num_users = g.num_users();
  out->num_nodes = n;
  out->perm.assign(n, -1);
  out->ptr.assign(static_cast<size_t>(n) + 1, 0);
  out->col.resize(entries);
  if (with_row_prob) {
    out->row_prob.resize(entries);
  } else {
    out->row_prob.clear();
  }
  if (n == 0) return;

  // Visit order: degree-bucketed BFS. Candidate component starts are
  // consumed in ascending degree (counting sort — peripheral low-degree
  // nodes make narrow BFS levels); within a component the traversal is
  // plain breadth-first with neighbors enqueued in row order, i.e. the
  // Cuthill–McKee ordering. `order` doubles as the FIFO frontier.
  std::vector<int32_t> by_degree(n);
  {
    int32_t max_deg = 0;
    for (int32_t v = 0; v < n; ++v) {
      max_deg = std::max(max_deg,
                         static_cast<int32_t>(gptr[v + 1] - gptr[v]));
    }
    std::vector<int32_t> bucket(static_cast<size_t>(max_deg) + 2, 0);
    for (int32_t v = 0; v < n; ++v) ++bucket[gptr[v + 1] - gptr[v] + 1];
    for (size_t b = 1; b < bucket.size(); ++b) bucket[b] += bucket[b - 1];
    for (int32_t v = 0; v < n; ++v) {
      by_degree[bucket[gptr[v + 1] - gptr[v]]++] = v;
    }
  }
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> order;
  order.reserve(n);
  for (int32_t s : by_degree) {
    if (visited[s]) continue;
    visited[s] = 1;
    order.push_back(s);
    // Isolated nodes (possible seeds) form their own "component" of one;
    // the ascending-degree scan places them first, which is harmless —
    // they contribute no gathers.
    for (size_t head = order.size() - 1; head < order.size(); ++head) {
      const NodeId v = order[head];
      for (int64_t k = gptr[v]; k < gptr[v + 1]; ++k) {
        const NodeId nbr = gcol[k];
        if (visited[nbr]) continue;
        visited[nbr] = 1;
        order.push_back(nbr);
      }
    }
  }
  LT_CHECK_EQ(order.size(), static_cast<size_t>(n));

  // Side-preserving id assignment in visit order.
  const int32_t num_users = g.num_users();
  int32_t next_user = 0;
  int32_t next_item = num_users;
  for (NodeId v : order) {
    out->perm[v] = g.IsUserNode(v) ? next_user++ : next_item++;
  }
  LT_CHECK_EQ(next_user, num_users);
  LT_CHECK_EQ(next_item, n);

  // Permuted CSR: row perm[v] receives row v's entries, original edge
  // order, columns renamed. Per-row original order is what makes sweeps
  // over this CSR bit-identical to the identity layout.
  const std::vector<int32_t>& perm = out->perm;
  for (int32_t v = 0; v < n; ++v) {
    out->ptr[perm[v] + 1] = gptr[v + 1] - gptr[v];
  }
  for (int32_t p = 0; p < n; ++p) out->ptr[p + 1] += out->ptr[p];
  for (int32_t v = 0; v < n; ++v) {
    int64_t dst = out->ptr[perm[v]];
    for (int64_t k = gptr[v]; k < gptr[v + 1]; ++k) {
      out->col[dst++] = perm[gcol[k]];
    }
  }
  if (with_row_prob) {
    for (int32_t v = 0; v < n; ++v) {
      const double d = g.WeightedDegree(v);
      // Same expression as BuildTransitions(kRowStochastic): one divide
      // per row, then a multiply per edge — identical rounding.
      const double inv = d > 0.0 ? 1.0 / d : 0.0;
      int64_t dst = out->ptr[perm[v]];
      for (int64_t k = gptr[v]; k < gptr[v + 1]; ++k) {
        out->row_prob[dst++] = gw[k] * inv;
      }
    }
  }
}

bool WalkLayoutReorderBeneficial(int32_t num_nodes, int64_t entries) {
  const CacheGeometry& cg = ProbeCacheGeometry();
  return static_cast<size_t>(num_nodes) * sizeof(double) > cg.l2_bytes &&
         entries >= 2 * static_cast<int64_t>(num_nodes);
}

std::shared_ptr<const WalkLayout> BuildWalkLayoutIfBeneficial(
    const BipartiteGraph& g) {
  const int32_t n = g.num_nodes();
  const int64_t entries = n > 0 ? g.RowPointers()[n] : 0;
  if (!WalkLayoutReorderBeneficial(n, entries)) return nullptr;
  auto layout = std::make_shared<WalkLayout>();
  BuildWalkLayout(g, /*with_row_prob=*/true, layout.get());
  return layout;
}

}  // namespace longtail
