#include "graph/random_walk.h"

#include <algorithm>

#include "util/logging.h"

namespace longtail {

std::vector<double> StationaryDistribution(const BipartiteGraph& g) {
  const int32_t n = g.num_nodes();
  std::vector<double> pi(n, 0.0);
  const double total = g.TotalWeight();
  if (total <= 0.0) return pi;
  for (int32_t v = 0; v < n; ++v) pi[v] = g.WeightedDegree(v) / total;
  return pi;
}

CsrMatrix TransitionMatrix(const BipartiteGraph& g) {
  const int32_t n = g.num_nodes();
  std::vector<int64_t> row_ptr(n + 1, 0);
  for (int32_t v = 0; v < n; ++v) {
    row_ptr[v + 1] = row_ptr[v] + g.Degree(v);
  }
  std::vector<int32_t> col_idx(row_ptr[n]);
  std::vector<double> values(row_ptr[n]);
  for (int32_t v = 0; v < n; ++v) {
    const double d = g.WeightedDegree(v);
    const auto nbrs = g.Neighbors(v);
    const auto wts = g.Weights(v);
    // Neighbor lists from CSR construction are already ascending, but we
    // do not rely on it: sort pairs if needed.
    int64_t pos = row_ptr[v];
    for (size_t k = 0; k < nbrs.size(); ++k, ++pos) {
      col_idx[pos] = nbrs[k];
      values[pos] = d > 0.0 ? wts[k] / d : 0.0;
    }
    // Ensure ascending column order within the row (FromCsrArrays checks).
    std::vector<std::pair<int32_t, double>> row(nbrs.size());
    for (size_t k = 0; k < nbrs.size(); ++k) {
      row[k] = {col_idx[row_ptr[v] + k], values[row_ptr[v] + k]};
    }
    std::sort(row.begin(), row.end());
    for (size_t k = 0; k < row.size(); ++k) {
      col_idx[row_ptr[v] + k] = row[k].first;
      values[row_ptr[v] + k] = row[k].second;
    }
  }
  auto result = CsrMatrix::FromCsrArrays(n, n, std::move(row_ptr),
                                         std::move(col_idx), std::move(values));
  LT_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::optional<NodeId> RandomWalkSimulator::Step(NodeId from, Rng* rng) const {
  const auto nbrs = g_->Neighbors(from);
  if (nbrs.empty()) return std::nullopt;
  const auto wts = g_->Weights(from);
  const double d = g_->WeightedDegree(from);
  double r = rng->NextDouble() * d;
  for (size_t k = 0; k < nbrs.size(); ++k) {
    r -= wts[k];
    if (r <= 0.0) return nbrs[k];
  }
  return nbrs.back();
}

std::optional<int64_t> RandomWalkSimulator::WalkUntilAbsorbed(
    NodeId start, const std::vector<bool>& absorbing, int64_t max_steps,
    Rng* rng) const {
  NodeId cur = start;
  for (int64_t step = 0; step < max_steps; ++step) {
    if (absorbing[cur]) return step;
    const auto next = Step(cur, rng);
    if (!next.has_value()) return std::nullopt;  // Stuck at isolated node.
    cur = *next;
  }
  return absorbing[cur] ? std::optional<int64_t>(max_steps) : std::nullopt;
}

double RandomWalkSimulator::EstimateAbsorbingTime(
    NodeId start, const std::vector<bool>& absorbing, int num_walks,
    int64_t max_steps, Rng* rng) const {
  LT_CHECK_GT(num_walks, 0);
  double total = 0.0;
  for (int w = 0; w < num_walks; ++w) {
    const auto steps = WalkUntilAbsorbed(start, absorbing, max_steps, rng);
    total += static_cast<double>(steps.value_or(max_steps));
  }
  return total / num_walks;
}

}  // namespace longtail
