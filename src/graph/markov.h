// First-passage quantities of the random walk: hitting time (Eq. 5),
// absorbing time (Eq. 6) and absorbing cost (Eq. 8), each in two flavours:
//
//  * Exact      — solves the first-step linear system with Gauss–Seidel to a
//                 tight tolerance (tests/ablation; O(n³)-ish worst case but
//                 fast in practice on sparse walks).
//  * Truncated  — Algorithm 1's dynamic program iterated τ times from 0.
//                 Values increase monotonically toward the exact fixed point;
//                 only the induced *ranking* is consumed by recommenders.
//
// Both operate on a generalized recurrence
//     V(i) = 0                          if absorbing[i]
//     V(i) = node_cost(i) + Σ_j p_ij V(j)   otherwise,
// which specializes to absorbing time with node_cost ≡ 1 and to the
// entropy-biased absorbing cost of Eq. 9 with
//     node_cost(item i) = Σ_j p_ij E(user j),   node_cost(user) = C.
#ifndef LONGTAIL_GRAPH_MARKOV_H_
#define LONGTAIL_GRAPH_MARKOV_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "linalg/solvers.h"
#include "util/status.h"

namespace longtail {

class WalkKernel;

/// Truncated DP (Algorithm 1 step 4): τ sweeps of
/// V_{t+1}(i) = node_cost(i) + Σ_j p_ij V_t(j), V_0 ≡ 0, absorbing pinned
/// at 0. Nodes unreachable from the absorbing set grow ~ τ·cost and thus
/// rank last, which is the desired behaviour. `absorbing` and `node_cost`
/// are node-indexed over `g` (size num_nodes); `node_cost[i]` is the cost
/// paid per step leaving i — unit cost yields absorbing *time* in expected
/// steps, the Eq. 9 entropy costs yield absorbing *cost*. `iterations <= 0`
/// returns all zeros. Every flavour below runs on the blocked WalkKernel
/// (see graph/walk_kernel.h); agreement with the retained reference loop
/// is ~1e-13 relative per iteration, enforced by tests/walk_kernel_test.cc.
std::vector<double> AbsorbingValueTruncated(const BipartiteGraph& g,
                                            const std::vector<bool>& absorbing,
                                            const std::vector<double>& node_cost,
                                            int iterations);

/// Workspace flavour: identical sweep, but the result lands in `*value` and
/// the double-buffer lives in `*scratch`, both reused across queries by the
/// batch engine. Builds a transient WalkKernel per call; callers that hold
/// a long-lived kernel (the batch engine's WalkWorkspace) should use the
/// kernel flavour below instead, which allocates nothing in steady state.
void AbsorbingValueTruncated(const BipartiteGraph& g,
                             const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost,
                             int iterations, std::vector<double>* value,
                             std::vector<double>* scratch);

/// Kernel flavour: compiles `g` + the query's absorbing flags and costs
/// into `*kernel` (its normalized transition CSR and branch-free sweep
/// coefficients are rebuilt here, reusing capacity) and runs the blocked
/// sweep. This is the batch engine's path: one kernel per WalkWorkspace,
/// zero allocation once buffers have grown.
void AbsorbingValueTruncated(const BipartiteGraph& g,
                             const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost,
                             int iterations, WalkKernel* kernel,
                             std::vector<double>* value,
                             std::vector<double>* scratch);

/// The pre-kernel scalar sweep, retained verbatim as the parity and
/// benchmark baseline: branchy per-row absorbing/isolated checks, one
/// weighted-degree divide per row, straight-line accumulation. Semantics
/// are identical to AbsorbingValueTruncated up to floating-point rounding
/// (the kernel pre-divides weights and re-associates the row sum);
/// tests/walk_kernel_test.cc pins the two together and
/// bench_table5_efficiency's "kernel" section times one against the other.
void AbsorbingValueTruncatedReference(const BipartiteGraph& g,
                                      const std::vector<bool>& absorbing,
                                      const std::vector<double>& node_cost,
                                      int iterations,
                                      std::vector<double>* value,
                                      std::vector<double>* scratch);

/// Exact fixed point of the same recurrence via Gauss–Seidel on the
/// transient block. `absorbing`/`node_cost` are node-indexed over `g`
/// (sizes must equal num_nodes); the absorbing set must be non-empty
/// (InvalidArgument otherwise). Absorbing nodes come back exactly 0.
/// Transient nodes that cannot reach the absorbing set make the system
/// singular, so they are detected up front and assigned +infinity
/// (consumers treat +inf as "rank last"/unreachable). Converges to
/// `options.tolerance` in the max norm or returns Internal.
Result<std::vector<double>> AbsorbingValueExact(
    const BipartiteGraph& g, const std::vector<bool>& absorbing,
    const std::vector<double>& node_cost, const SolverOptions& options = {});

/// Workspace flavour of AbsorbingValueExact: writes the fixed point into
/// `*value` (resized to num_nodes); reachability markers and queue storage
/// come from `*scratch`, reused across queries by the batch engine.
Status AbsorbingValueExactInto(const BipartiteGraph& g,
                               const std::vector<bool>& absorbing,
                               const std::vector<double>& node_cost,
                               const SolverOptions& options,
                               std::vector<double>* value,
                               SolverScratch* scratch);

/// Convenience: absorbing *time* (unit node cost — values are expected
/// remaining steps, Eq. 6). Truncated flavour; same absorbing/isolated
/// semantics as AbsorbingValueTruncated.
std::vector<double> AbsorbingTimeTruncated(const BipartiteGraph& g,
                                           const std::vector<bool>& absorbing,
                                           int iterations);

/// Convenience: absorbing *time* (unit node cost, expected steps). Exact
/// flavour; +inf for nodes that cannot reach the absorbing set.
Result<std::vector<double>> AbsorbingTimeExact(
    const BipartiteGraph& g, const std::vector<bool>& absorbing,
    const SolverOptions& options = {});

/// Hitting time H(target | ·) for every source node: expected steps for a
/// walker starting at each node to first reach `target` (Def. 1), i.e. the
/// absorbing time of the singleton absorbing set {target}. `target` must
/// be a valid node id (OutOfRange otherwise); entry `target` itself is 0.
/// Exact solve; +inf for sources that cannot reach `target`.
Result<std::vector<double>> HittingTimeExact(const BipartiteGraph& g,
                                             NodeId target,
                                             const SolverOptions& options = {});

/// Builds the per-node expected immediate cost vector of Eq. 9 (units:
/// nats when the entropies are natural-log): items pay the entropy of the
/// user they jump to (in expectation), users pay the constant C.
///   node_cost(i) = Σ_j p_ij · E(user j)   for item nodes i
///   node_cost(u) = C                      for user nodes u
/// `user_entropy` is indexed by *local* user id (size g.num_users()).
/// Isolated items (weighted degree <= 0) are assigned C — their value is
/// never consumed, but the vector stays finite. The result feeds
/// AbsorbingValueTruncated/Exact, which pin absorbing nodes at 0
/// regardless of their cost entry.
std::vector<double> EntropyNodeCosts(const BipartiteGraph& g,
                                     const std::vector<double>& user_entropy,
                                     double user_jump_cost);

/// Workspace flavour: writes the cost vector into `*cost` (resized to
/// num_nodes), reusing its capacity across queries.
void EntropyNodeCostsInto(const BipartiteGraph& g,
                          const std::vector<double>& user_entropy,
                          double user_jump_cost, std::vector<double>* cost);

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_MARKOV_H_
