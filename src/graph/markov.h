// First-passage quantities of the random walk: hitting time (Eq. 5),
// absorbing time (Eq. 6) and absorbing cost (Eq. 8), each in two flavours:
//
//  * Exact      — solves the first-step linear system with Gauss–Seidel to a
//                 tight tolerance (tests/ablation; O(n³)-ish worst case but
//                 fast in practice on sparse walks).
//  * Truncated  — Algorithm 1's dynamic program iterated τ times from 0.
//                 Values increase monotonically toward the exact fixed point;
//                 only the induced *ranking* is consumed by recommenders.
//
// Both operate on a generalized recurrence
//     V(i) = 0                          if absorbing[i]
//     V(i) = node_cost(i) + Σ_j p_ij V(j)   otherwise,
// which specializes to absorbing time with node_cost ≡ 1 and to the
// entropy-biased absorbing cost of Eq. 9 with
//     node_cost(item i) = Σ_j p_ij E(user j),   node_cost(user) = C.
#ifndef LONGTAIL_GRAPH_MARKOV_H_
#define LONGTAIL_GRAPH_MARKOV_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "linalg/solvers.h"
#include "util/status.h"

namespace longtail {

/// Truncated DP (Algorithm 1 step 4): τ sweeps of
/// V_{t+1}(i) = node_cost(i) + Σ_j p_ij V_t(j), V_0 ≡ 0, absorbing pinned
/// at 0. Nodes unreachable from the absorbing set grow ~ τ·cost and thus
/// rank last, which is the desired behaviour.
std::vector<double> AbsorbingValueTruncated(const BipartiteGraph& g,
                                            const std::vector<bool>& absorbing,
                                            const std::vector<double>& node_cost,
                                            int iterations);

/// Workspace flavour: identical sweep, but the result lands in `*value` and
/// the double-buffer lives in `*scratch`, both reused across queries by the
/// batch engine (no allocation once capacity has grown).
void AbsorbingValueTruncated(const BipartiteGraph& g,
                             const std::vector<bool>& absorbing,
                             const std::vector<double>& node_cost,
                             int iterations, std::vector<double>* value,
                             std::vector<double>* scratch);

/// Exact fixed point of the same recurrence via Gauss–Seidel on the
/// transient block. Requires every non-absorbing node to reach the absorbing
/// set; nodes that cannot reach it make the system singular, so they are
/// detected up front and assigned +infinity.
Result<std::vector<double>> AbsorbingValueExact(
    const BipartiteGraph& g, const std::vector<bool>& absorbing,
    const std::vector<double>& node_cost, const SolverOptions& options = {});

/// Workspace flavour of AbsorbingValueExact: writes the fixed point into
/// `*value`; reachability markers and queue storage come from `*scratch`.
Status AbsorbingValueExactInto(const BipartiteGraph& g,
                               const std::vector<bool>& absorbing,
                               const std::vector<double>& node_cost,
                               const SolverOptions& options,
                               std::vector<double>* value,
                               SolverScratch* scratch);

/// Convenience: absorbing *time* (unit cost). Truncated flavour.
std::vector<double> AbsorbingTimeTruncated(const BipartiteGraph& g,
                                           const std::vector<bool>& absorbing,
                                           int iterations);

/// Convenience: absorbing *time* (unit cost). Exact flavour.
Result<std::vector<double>> AbsorbingTimeExact(
    const BipartiteGraph& g, const std::vector<bool>& absorbing,
    const SolverOptions& options = {});

/// Hitting time H(target | ·) for every source node: expected steps for a
/// walker starting at each node to first reach `target` (Def. 1). Exact.
Result<std::vector<double>> HittingTimeExact(const BipartiteGraph& g,
                                             NodeId target,
                                             const SolverOptions& options = {});

/// Builds the per-node expected immediate cost vector of Eq. 9:
/// items pay the entropy of the user they jump to (in expectation),
/// users pay the constant C.
///   node_cost(i) = Σ_j p_ij · E(user j)   for item nodes i
///   node_cost(u) = C                      for user nodes u
/// `user_entropy` has size num_users.
std::vector<double> EntropyNodeCosts(const BipartiteGraph& g,
                                     const std::vector<double>& user_entropy,
                                     double user_jump_cost);

/// Workspace flavour: writes the cost vector into `*cost` (resized to
/// num_nodes), reusing its capacity across queries.
void EntropyNodeCostsInto(const BipartiteGraph& g,
                          const std::vector<double>& user_entropy,
                          double user_jump_cost, std::vector<double>* cost);

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_MARKOV_H_
