// BFS subgraph extraction (Algorithm 1 step 2).
//
// Starting from a seed set (typically the query user's rated items S_q, plus
// the query user), breadth-first search expands level by level and stops
// once the number of *item* nodes exceeds µ. The induced subgraph keeps all
// edges between visited nodes, and the mapping back to global ids is
// retained so results can be reported in dataset coordinates.
//
// Two extraction paths exist:
//  * ExtractSubgraph     — allocating; returns a self-contained Subgraph
//    with owned O(num_users + num_items) reverse-lookup tables. Simple, but
//    too expensive to run once per query under load.
//  * ExtractSubgraphInto — writes into a caller-owned WalkWorkspace. The
//    global-sized lookup tables are allocated once per workspace and
//    invalidated between queries in O(1) via an epoch stamp, so the steady
//    state performs zero global-sized heap allocation per query.
#ifndef LONGTAIL_GRAPH_SUBGRAPH_H_
#define LONGTAIL_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/walk_kernel.h"
#include "graph/walk_layout.h"
#include "linalg/solvers.h"

namespace longtail {

class WalkWorkspace;
struct SubgraphOptions;

/// An induced subgraph with local⇄global node mappings. Local node ids
/// follow the same convention (users first, then items).
struct Subgraph {
  BipartiteGraph graph;
  /// local user id → global UserId.
  std::vector<UserId> users;
  /// local item id → global ItemId.
  std::vector<ItemId> items;
  /// Optional cache-aware layout of `graph` (see walk_layout.h), built once
  /// when a SubgraphCache admits the payload and shared by every adopter —
  /// WalkKernel::BuildTransitions sweeps the permuted CSR without
  /// re-permuting. Null for fresh extractions and below-threshold graphs.
  std::shared_ptr<const WalkLayout> layout;

  /// Local *node* id (not local user/item index) of a global user/item:
  /// users map to [0, users.size()), items to [users.size(),
  /// num_nodes()). Returns -1 when the global id is absent from the
  /// subgraph or out of range; never aborts. O(1) either way (owned
  /// tables or the backing workspace's epoch-stamped tables).
  NodeId LocalUserNode(UserId global_user) const;
  NodeId LocalItemNode(ItemId global_item) const;

  /// Reverse lookup tables (sized to the global graph); built by the
  /// allocating ExtractSubgraph. Workspace-backed subgraphs leave these
  /// empty and answer lookups from the workspace's epoch-stamped tables.
  std::vector<int32_t> global_user_to_local;
  std::vector<int32_t> global_item_to_local;

 private:
  friend class WalkWorkspace;
  friend Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                                       const std::vector<NodeId>& seed_nodes,
                                       const SubgraphOptions& options,
                                       WalkWorkspace* workspace);
  friend Subgraph ExtractSubgraph(const BipartiteGraph& g,
                                  const std::vector<NodeId>& seed_nodes,
                                  const SubgraphOptions& options);
  /// Set by ExtractSubgraphInto; a workspace-backed subgraph is a view that
  /// stays valid only until the workspace's next extraction.
  const WalkWorkspace* workspace_ = nullptr;
};

struct SubgraphOptions {
  /// Stop BFS expansion once the subgraph holds more than this many item
  /// nodes (µ in the paper; default 6000 per §5.2.2). <= 0 means no cap —
  /// the subgraph becomes the reachable component.
  int32_t max_items = 6000;
};

/// Reusable per-thread buffers for Algorithm 1's per-query walk. One
/// workspace serves any number of sequential queries, against any graphs;
/// buffers are sized on first use (or graph change) and keep their capacity
/// afterwards. Not thread-safe: use one workspace per worker thread.
class WalkWorkspace {
 public:
  WalkWorkspace() = default;
  WalkWorkspace(const WalkWorkspace&) = delete;
  WalkWorkspace& operator=(const WalkWorkspace&) = delete;

  /// The subgraph produced by the most recent ExtractSubgraphInto or
  /// AdoptSubgraph call.
  const Subgraph& sub() const { return sub_; }

  /// Installs a copy of `src` — an induced subgraph of `g`, e.g. a
  /// SubgraphCache entry — as this workspace's current subgraph, rebuilding
  /// the epoch-stamped global→local tables. Equivalent to (and bit-identical
  /// with) re-running ExtractSubgraphInto with the seeds that produced
  /// `src`, but costs one sequential copy instead of a BFS + induced-CSR
  /// rebuild. The copies reuse this workspace's buffer capacity. `src`'s
  /// walk layout (if any) is shared by pointer, never re-permuted.
  void AdoptSubgraph(const BipartiteGraph& g, const Subgraph& src);

  /// Attaches a walk layout to the current subgraph. Called by a
  /// SubgraphCache leader right after its extraction is admitted as a
  /// payload, so the leader's own walk sweeps the same layout every later
  /// adopter will share.
  void AttachLayout(std::shared_ptr<const WalkLayout> layout) {
    sub_.layout = std::move(layout);
  }

  /// Local node id of a global node in the current subgraph; -1 if absent
  /// or out of range. Valid only for the most recent extraction/adoption
  /// (earlier queries' mappings are invalidated by the epoch stamp).
  NodeId LocalNode(NodeId global_node) const {
    if (global_node < 0 ||
        static_cast<size_t>(global_node) >= stamp_.size() ||
        stamp_[global_node] != epoch_) {
      return -1;
    }
    return local_id_[global_node];
  }
  NodeId LocalUser(UserId global_user) const {
    if (global_user < 0 || global_user >= num_global_users_) return -1;
    return LocalNode(global_user);
  }
  NodeId LocalItem(ItemId global_item) const {
    if (global_item < 0 || global_item >= num_global_items_) return -1;
    return LocalNode(num_global_users_ + global_item);
  }

  // Scratch threaded down the stack by the batch query engine: the DP value
  // sweeps, absorbing flags, node costs and solver temporaries all reuse
  // these buffers across queries.
  std::vector<NodeId> seeds;
  std::vector<bool> absorbing;
  std::vector<double> node_costs;
  std::vector<double> values;
  std::vector<double> dp_scratch;
  SolverScratch solver;
  /// The walk kernel serving this workspace's truncated sweeps: its
  /// normalized transition CSR is rebuilt per extracted/adopted subgraph
  /// and reused across the query's τ sweep iterations, with capacity kept
  /// across queries like every other buffer here.
  WalkKernel kernel;

 private:
  friend Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                                       const std::vector<NodeId>& seed_nodes,
                                       const SubgraphOptions& options,
                                       WalkWorkspace* workspace);

  /// Sizes the lookup tables for `g` and invalidates the previous query's
  /// mappings in O(1) by bumping the epoch.
  void BeginQuery(const BipartiteGraph& g);

  uint32_t epoch_ = 0;
  int32_t num_global_users_ = 0;
  int32_t num_global_items_ = 0;
  /// Per global node: local node id, valid iff stamp_ matches epoch_.
  std::vector<uint32_t> stamp_;
  std::vector<int32_t> local_id_;
  /// BFS visit order; doubles as the FIFO frontier.
  std::vector<NodeId> order_;
  /// Induced per-local-node degree counts.
  std::vector<int32_t> degrees_;
  Subgraph sub_;
};

/// Extracts the BFS-induced subgraph around `seed_nodes` (global node
/// ids; every entry must be in [0, g.num_nodes()), checked). Seeds are
/// always included; an empty seed set yields an empty subgraph. Expansion
/// is level-by-level; the level that crosses the µ cap is truncated
/// mid-level in insertion order, which keeps the item count within
/// [µ, µ + level width). Every non-seed node enters via an edge, so the
/// induced graph has no isolated non-seed nodes.
Subgraph ExtractSubgraph(const BipartiteGraph& g,
                         const std::vector<NodeId>& seed_nodes,
                         const SubgraphOptions& options = {});

/// Workspace flavour of ExtractSubgraph: identical output, but the subgraph
/// and every lookup table live in `workspace` and are reused across calls.
/// The returned reference is invalidated by the next call on the same
/// workspace.
Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                              const std::vector<NodeId>& seed_nodes,
                              const SubgraphOptions& options,
                              WalkWorkspace* workspace);

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_SUBGRAPH_H_
