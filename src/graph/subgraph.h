// BFS subgraph extraction (Algorithm 1 step 2).
//
// Starting from a seed set (typically the query user's rated items S_q, plus
// the query user), breadth-first search expands level by level and stops
// once the number of *item* nodes exceeds µ. The induced subgraph keeps all
// edges between visited nodes, and the mapping back to global ids is
// retained so results can be reported in dataset coordinates.
#ifndef LONGTAIL_GRAPH_SUBGRAPH_H_
#define LONGTAIL_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace longtail {

/// An induced subgraph with local⇄global node mappings. Local node ids
/// follow the same convention (users first, then items).
struct Subgraph {
  BipartiteGraph graph;
  /// local user id → global UserId.
  std::vector<UserId> users;
  /// local item id → global ItemId.
  std::vector<ItemId> items;

  /// Local node id of a global user/item; -1 if not in the subgraph.
  NodeId LocalUserNode(UserId global_user) const;
  NodeId LocalItemNode(ItemId global_item) const;

  /// Reverse lookup tables (sized to the global graph); built by Extract.
  std::vector<int32_t> global_user_to_local;
  std::vector<int32_t> global_item_to_local;
};

struct SubgraphOptions {
  /// Stop BFS expansion once the subgraph holds more than this many item
  /// nodes (µ in the paper; default 6000 per §5.2.2). <= 0 means no cap —
  /// the subgraph becomes the reachable component.
  int32_t max_items = 6000;
};

/// Extracts the BFS-induced subgraph around `seed_nodes` (global node ids).
/// Seeds are always included. Expansion is level-by-level; the level that
/// crosses the µ cap is truncated mid-level in insertion order, which keeps
/// the item count within [µ, µ + level width).
Subgraph ExtractSubgraph(const BipartiteGraph& g,
                         const std::vector<NodeId>& seed_nodes,
                         const SubgraphOptions& options = {});

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_SUBGRAPH_H_
