// BFS subgraph extraction (Algorithm 1 step 2).
//
// Starting from a seed set (typically the query user's rated items S_q, plus
// the query user), breadth-first search expands level by level and stops
// once the number of *item* nodes exceeds µ. The induced subgraph keeps all
// edges between visited nodes, and the mapping back to global ids is
// retained so results can be reported in dataset coordinates.
//
// Three ways a workspace comes to hold a subgraph:
//  * ExtractSubgraph     — allocating; returns a self-contained Subgraph
//    with owned O(num_users + num_items) reverse-lookup tables. Simple, but
//    too expensive to run once per query under load.
//  * ExtractSubgraphInto — writes into a caller-owned WalkWorkspace. The
//    global-sized lookup tables are allocated once per workspace and
//    invalidated between queries in O(1) via an epoch stamp, so the steady
//    state performs zero global-sized heap allocation per query.
//  * AdoptSharedSubgraph — the zero-copy warm path: the workspace takes a
//    shared_ptr to an immutable SubgraphCache payload (graph + id lists +
//    WalkLayout + WalkPlan + SubgraphNodeIndex, all built once at
//    admission) and performs no per-query work at all — no graph copy, no
//    table rebuild, no transition build. Queries answer id lookups from
//    the payload's compact node index and sweep the payload's shared plan.
#ifndef LONGTAIL_GRAPH_SUBGRAPH_H_
#define LONGTAIL_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/walk_kernel.h"
#include "graph/walk_layout.h"
#include "linalg/solvers.h"

namespace longtail {

class WalkWorkspace;
struct Subgraph;
struct SubgraphOptions;

/// Compact global→local node index carried by cache payloads: an
/// open-addressing hash over the subgraph's global node ids, sized
/// O(subgraph nodes) — not O(global nodes), so thousands of cached entries
/// stay cheap — and immutable after Build. It answers the same
/// LocalUserNode/LocalItemNode queries the workspace's epoch-stamped
/// tables do, which is what lets a cache hit skip the O(V) stamp rebuild
/// entirely.
class SubgraphNodeIndex {
 public:
  /// Indexes `sub`'s users/items under the global id space
  /// [0, num_global_users) × [0, num_global_items). O(subgraph nodes).
  void Build(int32_t num_global_users, int32_t num_global_items,
             const Subgraph& sub);
  void Clear();
  bool built() const { return built_; }

  /// Local *node* id of a global node/user/item; -1 when absent or out of
  /// range. O(1) expected (the table is kept at most half full).
  NodeId LocalNode(NodeId global_node) const;
  NodeId LocalUser(UserId global_user) const;
  NodeId LocalItem(ItemId global_item) const;

  /// Heap bytes the index owns; counted into cache payload budgets.
  size_t bytes() const {
    return (key_.capacity() + value_.capacity()) * sizeof(NodeId);
  }

 private:
  bool built_ = false;
  int32_t num_global_users_ = 0;
  int32_t num_global_items_ = 0;
  uint32_t mask_ = 0;
  /// Open-addressing slots: global node id (-1 empty) → local node id.
  std::vector<NodeId> key_;
  std::vector<NodeId> value_;
};

/// An induced subgraph with local⇄global node mappings. Local node ids
/// follow the same convention (users first, then items).
struct Subgraph {
  BipartiteGraph graph;
  /// local user id → global UserId.
  std::vector<UserId> users;
  /// local item id → global ItemId.
  std::vector<ItemId> items;
  /// Optional cache-aware layout of `graph` (see walk_layout.h), built once
  /// when a SubgraphCache admits the payload and shared by every adopter —
  /// the walk plan sweeps the permuted CSR without re-permuting. Null for
  /// fresh extractions and below-threshold graphs.
  std::shared_ptr<const WalkLayout> layout;
  /// The immutable walk plan for `graph` (row-stochastic transitions +
  /// sweep-plan selection + `layout` binding), built once at SubgraphCache
  /// admission. Non-null only on cache payloads; adopters bind to it via
  /// WalkKernel::AdoptPlan instead of running BuildTransitions. The plan
  /// points into this Subgraph's own graph/layout, so it is only valid
  /// while the payload is alive — holders must keep the payload
  /// shared_ptr, which is exactly what AdoptSharedSubgraph does.
  std::shared_ptr<const WalkPlan> plan;
  /// Compact global→local index, built at admission alongside `plan`.
  /// Empty on fresh extractions (the workspace's stamped tables answer
  /// lookups there).
  SubgraphNodeIndex node_index;

  /// Local *node* id (not local user/item index) of a global user/item:
  /// users map to [0, users.size()), items to [users.size(),
  /// num_nodes()). Returns -1 when the global id is absent from the
  /// subgraph or out of range; never aborts. O(1) every way (the backing
  /// workspace's epoch-stamped tables, the payload node index, or the
  /// owned tables — consulted in that order).
  NodeId LocalUserNode(UserId global_user) const;
  NodeId LocalItemNode(ItemId global_item) const;

  /// Reverse lookup tables (sized to the global graph); built by the
  /// allocating ExtractSubgraph. Workspace-backed subgraphs leave these
  /// empty and answer lookups from the workspace's epoch-stamped tables;
  /// payloads answer from node_index.
  std::vector<int32_t> global_user_to_local;
  std::vector<int32_t> global_item_to_local;

 private:
  friend class WalkWorkspace;
  friend Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                                       const std::vector<NodeId>& seed_nodes,
                                       const SubgraphOptions& options,
                                       WalkWorkspace* workspace);
  friend Subgraph ExtractSubgraph(const BipartiteGraph& g,
                                  const std::vector<NodeId>& seed_nodes,
                                  const SubgraphOptions& options);
  /// Set by ExtractSubgraphInto; a workspace-backed subgraph is a view that
  /// stays valid only until the workspace's next extraction.
  const WalkWorkspace* workspace_ = nullptr;
};

struct SubgraphOptions {
  /// Stop BFS expansion once the subgraph holds more than this many item
  /// nodes (µ in the paper; default 6000 per §5.2.2). <= 0 means no cap —
  /// the subgraph becomes the reachable component.
  int32_t max_items = 6000;
};

/// Reusable per-thread buffers for Algorithm 1's per-query walk. One
/// workspace serves any number of sequential queries, against any graphs;
/// buffers are sized on first use (or graph change) and keep their capacity
/// afterwards. Not thread-safe: use one workspace per worker thread.
class WalkWorkspace {
 public:
  WalkWorkspace() = default;
  WalkWorkspace(const WalkWorkspace&) = delete;
  WalkWorkspace& operator=(const WalkWorkspace&) = delete;

  /// The current subgraph: the shared payload after AdoptSharedSubgraph,
  /// otherwise the workspace-owned subgraph of the most recent
  /// ExtractSubgraphInto / AdoptSubgraph call.
  const Subgraph& sub() const {
    return shared_sub_ != nullptr ? *shared_sub_ : sub_;
  }

  /// Zero-copy adoption of an immutable SubgraphCache payload: stores the
  /// shared_ptr — keeping the payload's graph, layout, plan and node index
  /// alive — and nothing else. No O(E) graph copy, no O(V) table rebuild;
  /// id lookups answer from the payload's node index (which must be
  /// built, checked). This is the warm serving path.
  void AdoptSharedSubgraph(std::shared_ptr<const Subgraph> src);

  /// Installs a deep copy of `src` — an induced subgraph of `g` — as this
  /// workspace's current subgraph, rebuilding the epoch-stamped
  /// global→local tables. Equivalent to (and bit-identical with)
  /// re-running ExtractSubgraphInto with the seeds that produced `src`,
  /// but costs one sequential copy instead of a BFS + induced-CSR rebuild.
  /// Kept for callers that need a workspace-owned copy outliving `src`
  /// (and as the pre-shared-payload baseline the copy-counter test pins);
  /// the serving path uses AdoptSharedSubgraph instead. `src`'s layout is
  /// shared by pointer; its plan is NOT carried over — the plan points
  /// into `src`'s graph, which this copy does not keep alive.
  void AdoptSubgraph(const BipartiteGraph& g, const Subgraph& src);

  /// Local node id of a global node in the current subgraph; -1 if absent
  /// or out of range. Valid only for the most recent extraction/adoption
  /// (earlier queries' mappings are invalidated by the epoch stamp; a
  /// shared payload answers from its own immutable index).
  NodeId LocalNode(NodeId global_node) const {
    if (shared_sub_ != nullptr) {
      return shared_sub_->node_index.LocalNode(global_node);
    }
    if (global_node < 0 ||
        static_cast<size_t>(global_node) >= stamp_.size() ||
        stamp_[global_node] != epoch_) {
      return -1;
    }
    return local_id_[global_node];
  }
  NodeId LocalUser(UserId global_user) const {
    if (shared_sub_ != nullptr) {
      return shared_sub_->node_index.LocalUser(global_user);
    }
    if (global_user < 0 || global_user >= num_global_users_) return -1;
    return LocalNode(global_user);
  }
  NodeId LocalItem(ItemId global_item) const {
    if (shared_sub_ != nullptr) {
      return shared_sub_->node_index.LocalItem(global_item);
    }
    if (global_item < 0 || global_item >= num_global_items_) return -1;
    return LocalNode(num_global_users_ + global_item);
  }

  /// Global graph dimensions of the most recent BeginQuery; the cache uses
  /// these to build payload node indexes without re-threading the global
  /// graph through every call.
  int32_t num_global_users() const { return num_global_users_; }
  int32_t num_global_items() const { return num_global_items_; }

  // Scratch threaded down the stack by the batch query engine: the DP value
  // sweeps, absorbing flags, node costs and solver temporaries all reuse
  // these buffers across queries.
  std::vector<NodeId> seeds;
  std::vector<bool> absorbing;
  std::vector<double> node_costs;
  std::vector<double> values;
  std::vector<double> dp_scratch;
  /// Fused multi-query scratch: one absorbing vector per fused lane, and
  /// the K-strided value block SweepTruncatedItemValuesBatch fills (lane q
  /// of node v at values_block[v·K + q]).
  std::vector<std::vector<bool>> batch_absorbing;
  std::vector<double> values_block;
  SolverScratch solver;
  /// The walk kernel serving this workspace's truncated sweeps: per-query
  /// compile/value scratch plus a plan binding — its own rebuilt plan on
  /// the cold ExtractSubgraphInto path, the payload's shared plan on the
  /// warm AdoptSharedSubgraph path — with capacity kept across queries
  /// like every other buffer here.
  WalkKernel kernel;

 private:
  friend Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                                       const std::vector<NodeId>& seed_nodes,
                                       const SubgraphOptions& options,
                                       WalkWorkspace* workspace);

  /// Sizes the lookup tables for `g`, invalidates the previous query's
  /// mappings in O(1) by bumping the epoch, and releases any adopted
  /// shared payload.
  void BeginQuery(const BipartiteGraph& g);

  uint32_t epoch_ = 0;
  int32_t num_global_users_ = 0;
  int32_t num_global_items_ = 0;
  /// Per global node: local node id, valid iff stamp_ matches epoch_.
  std::vector<uint32_t> stamp_;
  std::vector<int32_t> local_id_;
  /// BFS visit order; doubles as the FIFO frontier.
  std::vector<NodeId> order_;
  /// Induced per-local-node degree counts.
  std::vector<int32_t> degrees_;
  Subgraph sub_;
  /// Adopted cache payload; when set, sub()/LocalNode answer from it.
  std::shared_ptr<const Subgraph> shared_sub_;
};

/// Extracts the BFS-induced subgraph around `seed_nodes` (global node
/// ids; every entry must be in [0, g.num_nodes()), checked). Seeds are
/// always included; an empty seed set yields an empty subgraph. Expansion
/// is level-by-level; the level that crosses the µ cap is truncated
/// mid-level in insertion order, which keeps the item count within
/// [µ, µ + level width). Every non-seed node enters via an edge, so the
/// induced graph has no isolated non-seed nodes.
Subgraph ExtractSubgraph(const BipartiteGraph& g,
                         const std::vector<NodeId>& seed_nodes,
                         const SubgraphOptions& options = {});

/// Workspace flavour of ExtractSubgraph: identical output, but the subgraph
/// and every lookup table live in `workspace` and are reused across calls.
/// The returned reference is invalidated by the next call on the same
/// workspace.
Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                              const std::vector<NodeId>& seed_nodes,
                              const SubgraphOptions& options,
                              WalkWorkspace* workspace);

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_SUBGRAPH_H_
