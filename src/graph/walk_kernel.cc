#include "graph/walk_kernel.h"

#include <algorithm>
#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "graph/walk_kernel_isa.h"
#include "util/logging.h"

namespace longtail {

namespace internal {

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // AVX needs OS cooperation: OSXSAVE says XGETBV exists, XCR0 bits 1|2
  // say the OS actually saves XMM+YMM state across context switches.
  // Checking the AVX2 feature bit alone would fault on such hosts.
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  unsigned xcr0_lo = 0, xcr0_hi = 0;
  // xgetbv(0), byte-encoded so no -mxsave is needed at compile time.
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                   : "=a"(xcr0_lo), "=d"(xcr0_hi)
                   : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return false;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 5)) != 0;  // leaf 7.0 EBX bit 5: AVX2
#else
  return false;
#endif
}

const WalkKernelIsa* ActiveWalkKernelIsa() {
  // One probe per process; every kernel constructed afterwards reuses the
  // cached choice.
  static const WalkKernelIsa* active = [] {
    const WalkKernelIsa* avx2 = Avx2WalkKernelIsa();
    if (avx2 != nullptr && CpuSupportsAvx2()) return avx2;
    return GenericWalkKernelIsa();
  }();
  return active;
}

}  // namespace internal

namespace {

/// Rows per L1 tile of the blocked row pass: each row streams ~48 B of
/// dense state (cur/nxt values, three coefficients, a row pointer), and
/// budgeting half of L1d for those streams leaves the other half to the
/// gathered value window. 48 KiB L1d → 512-row tiles.
int32_t RowTileForL1() {
  const size_t tile = ProbeCacheGeometry().l1d_bytes / 96;
  return static_cast<int32_t>(std::clamp<size_t>(tile, 256, 16384));
}

static_assert(WalkKernel::kMaxFusedWidth == internal::kMaxFusedWidth,
              "public cap must match the ISA tables' stack scratch");

// Process-global fused-sweep counters (relaxed: monotonic telemetry only).
std::atomic<uint64_t> g_fused_sweeps{0};
std::atomic<uint64_t> g_fused_lanes{0};

}  // namespace

WalkKernelFusedStats GetWalkKernelFusedStats() {
  WalkKernelFusedStats s;
  s.sweeps = g_fused_sweeps.load(std::memory_order_relaxed);
  s.lanes = g_fused_lanes.load(std::memory_order_relaxed);
  return s;
}

size_t WalkKernel::SimplePlanMaxValueBytes() {
  return ProbeCacheGeometry().l2_bytes;
}

int32_t WalkKernel::BlockedPlanRowTile() { return RowTileForL1(); }

int32_t WalkKernel::FusedWidthCap(int32_t num_nodes) {
  // 16 lanes while the whole 16-wide value block is L2-resident (fusing
  // wider costs nothing when nothing is evicted); past that, 8 lanes —
  // one full 64-byte line per gathered node, where the bandwidth
  // amortization saturates (see docs/KERNELS.md and the bench ladder).
  const size_t block16 =
      static_cast<size_t>(std::max(num_nodes, 0)) * 16 * sizeof(double);
  const int32_t cap = block16 <= ProbeCacheGeometry().l2_bytes ? 16 : 8;
  return std::min<int32_t>(cap, kMaxFusedWidth);
}

WalkKernel::WalkKernel() : isa_(internal::ActiveWalkKernelIsa()) {}

const char* WalkKernel::isa_name() const { return isa_->name; }

bool WalkKernel::RuntimeAvx2Available() {
  return internal::ActiveWalkKernelIsa() == internal::Avx2WalkKernelIsa() &&
         internal::Avx2WalkKernelIsa() != nullptr;
}

void WalkKernel::ForceGenericIsaForTesting() {
  isa_ = internal::GenericWalkKernelIsa();
}

const char* WalkPlan::sweep_strategy() const {
  if (norm_fly_ && row_tile_ == 0) return "simple";
  return perm_ != nullptr ? "blocked_reordered" : "blocked";
}

size_t WalkPlan::OwnedBytes() const {
  size_t bytes = sizeof(WalkPlan);
  bytes += prob_.capacity() * sizeof(double);
  bytes += own_layout_.perm.capacity() * sizeof(int32_t);
  bytes += own_layout_.ptr.capacity() * sizeof(int64_t);
  bytes += own_layout_.col.capacity() * sizeof(NodeId);
  bytes += own_layout_.row_prob.capacity() * sizeof(double);
  return bytes;
}

const char* WalkKernel::sweep_strategy() const {
  if (plan_ == nullptr) return "unbound";
  return plan_->sweep_strategy();
}

void WalkKernel::BuildTransitions(const BipartiteGraph& g, Normalization norm,
                                  std::shared_ptr<const WalkLayout> layout) {
  // Rebuild the kernel-owned plan in place (buffer capacity survives, so
  // steady-state cold queries stay allocation-free) and drop any
  // previously adopted shared plan.
  own_plan_.Build(g, norm, std::move(layout), forced_plan_);
  adopted_.reset();
  plan_ = &own_plan_;
}

void WalkKernel::AdoptPlan(std::shared_ptr<const WalkPlan> plan) {
  LT_CHECK(plan != nullptr && plan->built())
      << "AdoptPlan needs a built WalkPlan";
  adopted_ = std::move(plan);
  plan_ = adopted_.get();
}

void WalkPlan::Build(const BipartiteGraph& g, WalkNormalization norm,
                     std::shared_ptr<const WalkLayout> layout,
                     WalkSweepMode forced) {
  graph_ = &g;
  norm_ = norm;
  num_nodes_ = g.num_nodes();
  const int32_t n = num_nodes_;
  const auto gptr = g.RowPointers();
  const auto gcol = g.FlatNeighbors();
  const auto w = g.FlatWeights();
  const int64_t entries = n > 0 ? gptr[n] : 0;

  // ---- Pick the plan (one-time cost probe per build) ----
  bool simple = false;
  bool reorder = false;
  switch (forced) {
    case WalkSweepMode::kSimple:
      simple = true;
      break;
    case WalkSweepMode::kBlocked:
      break;
    case WalkSweepMode::kBlockedReordered:
      reorder = true;
      break;
    case WalkSweepMode::kAuto:
      if (layout != nullptr) {
        // A pre-built permutation rides in (SubgraphCache payload): the
        // reorder decision was made at insert time; adopt it.
        reorder = true;
      } else {
        // One-shot builds never self-permute: the layout BFS + scatter
        // cannot amortize over a single query's τ sweeps (measured ~1.0x
        // e2e at the sizes where the reordered sweep itself wins 1.5x).
        // Reordered plans arrive via SubgraphCache payloads, where the
        // permutation is paid once and shared by every adopter.
        simple = norm_ == WalkNormalization::kRowStochastic &&
                 static_cast<size_t>(n) * sizeof(double) <=
                     WalkKernel::SimplePlanMaxValueBytes();
      }
      break;
  }
  LT_CHECK(!simple || norm_ == WalkNormalization::kRowStochastic)
      << "simple sweeps normalize rows on the fly (row-stochastic only)";
  // An empty graph has nothing to permute (and n == 0 skips the CSR bind
  // below); fall back to the identity plan so a forced kBlockedReordered
  // on an empty seed subgraph doesn't try to materialize transitions.
  if (n == 0) reorder = false;

  // Identity-order row-stochastic plans never materialize transitions:
  // the normalizing gather reads the raw weight strip (which a
  // materialized sweep would read as the prob strip — same bytes moved)
  // and folds the one divide per row into a register, so skipping the
  // O(entries) prob build is free per sweep and saves its full cost per
  // build. The rounding sequence is identical — w·(1/d), then ·x — so
  // results are bit-identical (enforced by walk_kernel_test.cc).
  norm_fly_ = !reorder && norm_ == WalkNormalization::kRowStochastic;
  row_tile_ = simple ? 0 : RowTileForL1();
  perm_ = nullptr;
  layout_.reset();
  prob_data_ = nullptr;
  w_ = nullptr;
  wdeg_ = nullptr;

  if (norm_fly_) {
    ptr_ = gptr.data();
    col_ = gcol.data();
    w_ = w.data();
    wdeg_ = g.WeightedDegrees().data();
    return;
  }

  // ---- Bind the CSR the sweeps will walk ----
  const WalkLayout* lay = nullptr;
  if (reorder && n > 0) {
    if (layout != nullptr) {
      LT_CHECK_EQ(layout->num_nodes, n);
      LT_CHECK_EQ(layout->num_users, g.num_users());
      LT_CHECK_EQ(static_cast<int64_t>(layout->col.size()), entries);
      layout_ = std::move(layout);
      lay = layout_.get();
    } else {
      // One-shot large build: pay the O(nodes + entries) permutation here;
      // it amortizes over the τ sweep iterations that follow.
      BuildWalkLayout(g, norm_ == WalkNormalization::kRowStochastic,
                      &own_layout_);
      lay = &own_layout_;
    }
    ptr_ = lay->ptr.data();
    col_ = lay->col.data();
    perm_ = lay->perm.data();
  } else {
    ptr_ = gptr.data();
    col_ = gcol.data();
  }

  // ---- Materialize transition values in sweep order ----
  if (perm_ == nullptr) {
    switch (norm_) {
      case WalkNormalization::kRowStochastic:
        LT_CHECK(false)
            << "identity row-stochastic plans normalize on the fly";
        break;
      case WalkNormalization::kColumnStochastic: {
        prob_.resize(w.size());
        for (size_t k = 0; k < w.size(); ++k) {
          const double d = g.WeightedDegree(gcol[k]);
          prob_[k] = d > 0.0 ? w[k] / d : 0.0;
        }
        prob_data_ = prob_.data();
        break;
      }
      case WalkNormalization::kRaw:
        // Raw gathers read the graph's weight array as-is; no copy.
        prob_data_ = w.data();
        break;
    }
    return;
  }

  if (norm_ == WalkNormalization::kRowStochastic &&
      static_cast<int64_t>(lay->row_prob.size()) == entries) {
    // The layout carries the row-stochastic values (same rounding as the
    // identity build; see BuildWalkLayout).
    prob_data_ = lay->row_prob.data();
    return;
  }
  // Permuted-order materialization for the remaining normalizations: same
  // per-entry expressions as the identity branches above, written at the
  // permuted offsets.
  prob_.resize(w.size());
  for (int32_t v = 0; v < n; ++v) {
    const double row_d = g.WeightedDegree(v);
    const double row_inv = row_d > 0.0 ? 1.0 / row_d : 0.0;
    int64_t dst = ptr_[perm_[v]];
    for (int64_t k = gptr[v]; k < gptr[v + 1]; ++k) {
      double p;
      switch (norm_) {
        case WalkNormalization::kRowStochastic:
          p = w[k] * row_inv;
          break;
        case WalkNormalization::kColumnStochastic: {
          const double d = g.WeightedDegree(gcol[k]);
          p = d > 0.0 ? w[k] / d : 0.0;
          break;
        }
        case WalkNormalization::kRaw:
        default:
          p = w[k];
          break;
      }
      prob_[dst++] = p;
    }
  }
  prob_data_ = prob_.data();
}

void WalkKernel::CompileAbsorbingSweep(const std::vector<bool>& absorbing,
                                       const std::vector<double>& node_cost) {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  LT_CHECK(p.norm_ == Normalization::kRowStochastic)
      << "absorbing sweeps need row-stochastic transitions";
  const int32_t n = p.num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), absorbing.size());
  LT_CHECK_EQ(static_cast<size_t>(n), node_cost.size());
  add_.resize(n);
  scale_.resize(n);
  self_.resize(n);
  const BipartiteGraph& g = *p.graph_;
  const int32_t* perm = p.perm_;
  // Coefficients live in sweep space: scattered through the permutation
  // when the plan reordered, so the row passes stay oblivious to layout.
  for (int32_t v = 0; v < n; ++v) {
    const int32_t row = perm != nullptr ? perm[v] : v;
    if (absorbing[v]) {
      add_[row] = 0.0;
      scale_[row] = 0.0;
      self_[row] = 0.0;
    } else if (g.WeightedDegree(v) <= 0.0) {
      // Isolated transient node: never absorbed, accumulates cost forever.
      add_[row] = node_cost[v];
      scale_[row] = 0.0;
      self_[row] = 1.0;
    } else {
      add_[row] = node_cost[v];
      scale_[row] = 1.0;
      self_[row] = 0.0;
    }
  }
}

void WalkKernel::CompileAbsorbingSweepBatch(
    const std::vector<std::vector<bool>>& absorbing,
    const std::vector<double>& node_cost) {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  LT_CHECK(p.norm_ == Normalization::kRowStochastic)
      << "absorbing sweeps need row-stochastic transitions";
  const int32_t width = static_cast<int32_t>(absorbing.size());
  LT_CHECK(width >= 1 && width <= kMaxFusedWidth)
      << "fused width " << width << " out of [1, " << kMaxFusedWidth << "]";
  const int32_t n = p.num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), node_cost.size());
  for (const auto& lane : absorbing) {
    LT_CHECK_EQ(static_cast<size_t>(n), lane.size());
  }
  batch_width_ = width;
  const size_t block = static_cast<size_t>(n) * width;
  badd_.resize(block);
  bscale_.resize(block);
  bself_.resize(block);
  const BipartiteGraph& g = *p.graph_;
  const int32_t* perm = p.perm_;
  // Same compile as CompileAbsorbingSweep, lane-strided: lane q of
  // sweep-space row gets exactly the coefficients a sequential compile of
  // query q would give that row.
  for (int32_t v = 0; v < n; ++v) {
    const int32_t row = perm != nullptr ? perm[v] : v;
    const int64_t base = static_cast<int64_t>(row) * width;
    const bool isolated = g.WeightedDegree(v) <= 0.0;
    const double cost = node_cost[v];
    for (int32_t q = 0; q < width; ++q) {
      if (absorbing[q][v]) {
        badd_[base + q] = 0.0;
        bscale_[base + q] = 0.0;
        bself_[base + q] = 0.0;
      } else if (isolated) {
        badd_[base + q] = cost;
        bscale_[base + q] = 0.0;
        bself_[base + q] = 1.0;
      } else {
        badd_[base + q] = cost;
        bscale_[base + q] = 1.0;
        bself_[base + q] = 0.0;
      }
    }
  }
}

void WalkKernel::PrefetchRows(int32_t lo, int32_t hi) const {
#if defined(__GNUC__) || defined(__clang__)
  // Warm the next tile's column-index and value strips while the current
  // tile's gathers are in flight. Bounded: past ~4 KiB per strip the
  // lines would be evicted again before the tile is reached.
  const WalkPlan& p = *plan_;
  constexpr int64_t kMaxPrefetchBytes = 4096;
  const int64_t k0 = p.ptr_[lo];
  const int64_t span = p.ptr_[hi] - k0;
  const int64_t col_bytes = std::min<int64_t>(
      span * static_cast<int64_t>(sizeof(NodeId)), kMaxPrefetchBytes);
  const char* cp = reinterpret_cast<const char*>(p.col_ + k0);
  for (int64_t off = 0; off < col_bytes; off += 64) {
    __builtin_prefetch(cp + off, 0, 1);
  }
  const double* vals = p.norm_fly_ ? p.w_ : p.prob_data_;
  const int64_t val_bytes = std::min<int64_t>(
      span * static_cast<int64_t>(sizeof(double)), kMaxPrefetchBytes);
  const char* pp = reinterpret_cast<const char*>(vals + k0);
  for (int64_t off = 0; off < val_bytes; off += 64) {
    __builtin_prefetch(pp + off, 0, 1);
  }
#else
  (void)lo;
  (void)hi;
#endif
}

void WalkKernel::RunAbsorbingRange(int32_t lo, int32_t hi, const double* cur,
                                   double* nxt) const {
  const WalkPlan& p = *plan_;
  const double* add = add_.data();
  const double* scale = scale_.data();
  const double* self = self_.data();
  if (p.row_tile_ <= 0) {
    // Simple plan: tiny working set by construction — tiling would only
    // add loop overhead.
    isa_->absorbing_rows_norm(lo, hi, p.ptr_, p.col_, p.w_, p.wdeg_, add,
                              scale, self, cur, nxt);
    return;
  }
  for (int32_t b = lo; b < hi; b += p.row_tile_) {
    const int32_t b_end = b + p.row_tile_ < hi ? b + p.row_tile_ : hi;
    if (b_end < hi) {
      PrefetchRows(b_end, b_end + p.row_tile_ < hi ? b_end + p.row_tile_ : hi);
    }
    if (p.norm_fly_) {
      isa_->absorbing_rows_norm(b, b_end, p.ptr_, p.col_, p.w_, p.wdeg_, add,
                                scale, self, cur, nxt);
    } else {
      isa_->absorbing_rows(b, b_end, p.ptr_, p.col_, p.prob_data_, add, scale,
                           self, cur, nxt);
    }
  }
}

void WalkKernel::RunFusedRange(int32_t lo, int32_t hi, double* x) const {
  const WalkPlan& p = *plan_;
  const double* add = add_.data();
  const double* scale = scale_.data();
  const double* self = self_.data();
  if (p.row_tile_ <= 0) {
    isa_->absorbing_rows_fused_norm(lo, hi, p.ptr_, p.col_, p.w_, p.wdeg_,
                                    add, scale, self, x);
    return;
  }
  for (int32_t b = lo; b < hi; b += p.row_tile_) {
    const int32_t b_end = b + p.row_tile_ < hi ? b + p.row_tile_ : hi;
    if (b_end < hi) {
      PrefetchRows(b_end, b_end + p.row_tile_ < hi ? b_end + p.row_tile_ : hi);
    }
    if (p.norm_fly_) {
      isa_->absorbing_rows_fused_norm(b, b_end, p.ptr_, p.col_, p.w_, p.wdeg_,
                                      add, scale, self, x);
    } else {
      isa_->absorbing_rows_fused(b, b_end, p.ptr_, p.col_, p.prob_data_, add,
                                 scale, self, x);
    }
  }
}

void WalkKernel::RunAbsorbingRangeBatch(int32_t lo, int32_t hi,
                                        const double* cur, double* nxt) const {
  const WalkPlan& p = *plan_;
  const int32_t width = batch_width_;
  const double* add = badd_.data();
  const double* scale = bscale_.data();
  const double* self = bself_.data();
  if (p.row_tile_ <= 0) {
    isa_->absorbing_rows_norm_batch(lo, hi, p.ptr_, p.col_, p.w_, p.wdeg_,
                                    add, scale, self, cur, nxt, width);
    return;
  }
  // Each row now streams width lanes of values + coefficients; shrink the
  // tile so the dense streams still fit the L1 budget (pure performance
  // knob — tiling never changes the per-row results).
  const int32_t tile = std::max<int32_t>(256, p.row_tile_ / width);
  for (int32_t b = lo; b < hi; b += tile) {
    const int32_t b_end = b + tile < hi ? b + tile : hi;
    if (b_end < hi) {
      PrefetchRows(b_end, b_end + tile < hi ? b_end + tile : hi);
    }
    if (p.norm_fly_) {
      isa_->absorbing_rows_norm_batch(b, b_end, p.ptr_, p.col_, p.w_,
                                      p.wdeg_, add, scale, self, cur, nxt,
                                      width);
    } else {
      isa_->absorbing_rows_batch(b, b_end, p.ptr_, p.col_, p.prob_data_, add,
                                 scale, self, cur, nxt, width);
    }
  }
}

void WalkKernel::RunFusedRangeBatch(int32_t lo, int32_t hi, double* x) const {
  const WalkPlan& p = *plan_;
  const int32_t width = batch_width_;
  const double* add = badd_.data();
  const double* scale = bscale_.data();
  const double* self = bself_.data();
  if (p.row_tile_ <= 0) {
    isa_->absorbing_rows_fused_norm_batch(lo, hi, p.ptr_, p.col_, p.w_,
                                          p.wdeg_, add, scale, self, x, width);
    return;
  }
  const int32_t tile = std::max<int32_t>(256, p.row_tile_ / width);
  for (int32_t b = lo; b < hi; b += tile) {
    const int32_t b_end = b + tile < hi ? b + tile : hi;
    if (b_end < hi) {
      PrefetchRows(b_end, b_end + tile < hi ? b_end + tile : hi);
    }
    if (p.norm_fly_) {
      isa_->absorbing_rows_fused_norm_batch(b, b_end, p.ptr_, p.col_, p.w_,
                                            p.wdeg_, add, scale, self, x,
                                            width);
    } else {
      isa_->absorbing_rows_fused_batch(b, b_end, p.ptr_, p.col_,
                                       p.prob_data_, add, scale, self, x,
                                       width);
    }
  }
}

void WalkKernel::SweepTruncated(int iterations, std::vector<double>* value,
                                std::vector<double>* scratch) const {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  const int32_t n = p.num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), add_.size())
      << "CompileAbsorbingSweep must run first";
  value->assign(n, 0.0);
  scratch->assign(n, 0.0);
  if (n == 0) return;
  double* cur;
  double* nxt;
  if (p.perm_ == nullptr) {
    cur = value->data();
    nxt = scratch->data();
  } else {
    // Reordered plan: sweep in permuted space, read out through the
    // permutation below. V_0 ≡ 0 needs no seed scatter.
    pval_.assign(n, 0.0);
    pscratch_.assign(n, 0.0);
    cur = pval_.data();
    nxt = pscratch_.data();
  }
  for (int t = 0; t < iterations; ++t) {
    RunAbsorbingRange(0, n, cur, nxt);
    double* tmp = cur;
    cur = nxt;
    nxt = tmp;
  }
  if (p.perm_ == nullptr) {
    if (cur != value->data()) value->swap(*scratch);
  } else {
    double* out = value->data();
    for (int32_t v = 0; v < n; ++v) out[v] = cur[p.perm_[v]];
  }
}

void WalkKernel::SweepTruncatedItemValues(int iterations,
                                          std::vector<double>* value) const {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  const int32_t n = p.num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), add_.size())
      << "CompileAbsorbingSweep must run first";
  value->assign(n, 0.0);
  if (n == 0 || iterations <= 0) return;
  double* x;
  if (p.perm_ == nullptr) {
    x = value->data();
  } else {
    pval_.assign(n, 0.0);
    x = pval_.data();
  }
  // The permutation preserves sides, so the side boundary — and with it
  // the alternating chain — is the same in sweep space.
  const int32_t num_users = p.graph_->num_users();
  // Step t updates the side whose value the chain labels "iteration t":
  // items when (τ - t) is even, users otherwise, ending on items at t = τ.
  // In-place is safe because a side's gathers read only the *other* side.
  for (int t = 1; t <= iterations; ++t) {
    const bool item_side = ((iterations - t) & 1) == 0;
    const int32_t lo = item_side ? num_users : 0;
    const int32_t hi = item_side ? n : num_users;
    if (t == 1) {
      // The chain's first step advances its side by a single DP iteration.
      RunAbsorbingRange(lo, hi, x, x);
    } else {
      // Every later step advances its side by two DP iterations. Ordinary
      // rows never reference the skipped intermediate, but isolated rows
      // (self = 1) accumulate cost on both: the trailing self·add term
      // applies the second addition in the same order the full sweep
      // would, keeping them bit-identical to it.
      RunFusedRange(lo, hi, x);
    }
  }
  if (p.perm_ != nullptr) {
    double* out = value->data();
    for (int32_t v = 0; v < n; ++v) out[v] = x[p.perm_[v]];
  }
}

void WalkKernel::SweepTruncatedItemValuesBatch(
    int iterations, std::vector<double>* value_block) const {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  const int32_t n = p.num_nodes_;
  const int32_t width = batch_width_;
  LT_CHECK(width >= 1 &&
           badd_.size() == static_cast<size_t>(n) * width)
      << "CompileAbsorbingSweepBatch must run first";
  const size_t block = static_cast<size_t>(n) * width;
  value_block->assign(block, 0.0);
  if (n == 0 || iterations <= 0) return;
  g_fused_sweeps.fetch_add(1, std::memory_order_relaxed);
  g_fused_lanes.fetch_add(static_cast<uint64_t>(width),
                          std::memory_order_relaxed);
  double* x;
  if (p.perm_ == nullptr) {
    x = value_block->data();
  } else {
    pblock_.assign(block, 0.0);
    x = pblock_.data();
  }
  // Identical iteration structure to SweepTruncatedItemValues — only the
  // row passes changed, and each lane of those is the sequential pass.
  const int32_t num_users = p.graph_->num_users();
  for (int t = 1; t <= iterations; ++t) {
    const bool item_side = ((iterations - t) & 1) == 0;
    const int32_t lo = item_side ? num_users : 0;
    const int32_t hi = item_side ? n : num_users;
    if (t == 1) {
      RunAbsorbingRangeBatch(lo, hi, x, x);
    } else {
      RunFusedRangeBatch(lo, hi, x);
    }
  }
  if (p.perm_ != nullptr) {
    double* out = value_block->data();
    for (int32_t v = 0; v < n; ++v) {
      const int64_t src = static_cast<int64_t>(p.perm_[v]) * width;
      const int64_t dst = static_cast<int64_t>(v) * width;
      for (int32_t q = 0; q < width; ++q) out[dst + q] = x[src + q];
    }
  }
}

void WalkKernel::Apply(double alpha, const double* x, double beta,
                       const double* restart, double* y) const {
  LT_CHECK(plan_ != nullptr) << "BuildTransitions/AdoptPlan must run first";
  const WalkPlan& p = *plan_;
  LT_CHECK(!p.norm_fly_)
      << "Apply needs materialized transitions; no caller applies "
         "row-stochastic transitions, see walk_kernel.h";
  const int32_t n = p.num_nodes_;
  // Sparse-input fast path: a dense pull always walks every adjacency
  // entry, which would make the first Katz steps / PPR iterations (a
  // frontier of one user node) cost O(total edges) where the pre-kernel
  // scatter cost O(frontier edges). When the nonzero rows of x carry
  // under half the entries, push from just those rows instead. The push
  // re-derives the per-row normalization from the raw weights (the
  // stored prob array is column-normalized for pulls), so push and pull
  // agree to rounding, and the branch is a pure function of x. It runs
  // in original id space off the graph's own CSR, independent of the
  // sweep plan's layout.
  if (p.norm_ != Normalization::kRowStochastic && n > 0) {
    const int64_t* gp = p.graph_->RowPointers().data();
    const NodeId* gc = p.graph_->FlatNeighbors().data();
    const int64_t total_entries = gp[n];
    int64_t nonzero_entries = 0;
    for (int32_t v = 0; v < n; ++v) {
      if (x[v] != 0.0) nonzero_entries += gp[v + 1] - gp[v];
    }
    if (nonzero_entries * 2 < total_entries) {
      if (restart != nullptr) {
        for (int32_t v = 0; v < n; ++v) y[v] = beta * restart[v];
      } else {
        for (int32_t v = 0; v < n; ++v) y[v] = 0.0;
      }
      const double* w = p.graph_->FlatWeights().data();
      for (int32_t v = 0; v < n; ++v) {
        const double mass = x[v];
        if (mass == 0.0) continue;
        double out;
        if (p.norm_ == Normalization::kColumnStochastic) {
          // Symmetric graph: pushing x[v]·w/d(v) along row v produces
          // exactly the pull's Σ_u (w_vu/d_u)·x[u] terms.
          const double d = p.graph_->WeightedDegree(v);
          if (d <= 0.0) continue;
          out = alpha * mass / d;
        } else {  // kRaw
          out = alpha * mass;
        }
        for (int64_t k = gp[v]; k < gp[v + 1]; ++k) {
          y[gc[k]] += out * w[k];
        }
      }
      return;
    }
  }
  const double* in = x;
  const double* rst = restart;
  double* out = y;
  if (p.perm_ != nullptr && n > 0) {
    // Permute the operands into sweep space, pull there, scatter back.
    px_.resize(n);
    pval_.resize(n);
    for (int32_t v = 0; v < n; ++v) px_[p.perm_[v]] = x[v];
    in = px_.data();
    out = pval_.data();
    if (restart != nullptr) {
      pscratch_.resize(n);
      for (int32_t v = 0; v < n; ++v) pscratch_[p.perm_[v]] = restart[v];
      rst = pscratch_.data();
    }
  }
  for (int32_t b = 0; b < n; b += p.row_tile_) {
    const int32_t b_end = b + p.row_tile_ < n ? b + p.row_tile_ : n;
    if (b_end < n) {
      PrefetchRows(b_end, b_end + p.row_tile_ < n ? b_end + p.row_tile_ : n);
    }
    isa_->apply_rows(b, b_end, p.ptr_, p.col_, p.prob_data_, alpha, in, beta,
                     rst, out);
  }
  if (p.perm_ != nullptr && n > 0) {
    for (int32_t v = 0; v < n; ++v) y[v] = pval_[p.perm_[v]];
  }
}

}  // namespace longtail
