#include "graph/walk_kernel.h"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "graph/walk_kernel_isa.h"
#include "util/logging.h"

namespace longtail {

namespace internal {

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // AVX needs OS cooperation: OSXSAVE says XGETBV exists, XCR0 bits 1|2
  // say the OS actually saves XMM+YMM state across context switches.
  // Checking the AVX2 feature bit alone would fault on such hosts.
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  unsigned xcr0_lo = 0, xcr0_hi = 0;
  // xgetbv(0), byte-encoded so no -mxsave is needed at compile time.
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                   : "=a"(xcr0_lo), "=d"(xcr0_hi)
                   : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return false;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 5)) != 0;  // leaf 7.0 EBX bit 5: AVX2
#else
  return false;
#endif
}

const WalkKernelIsa* ActiveWalkKernelIsa() {
  // One probe per process; every kernel constructed afterwards reuses the
  // cached choice.
  static const WalkKernelIsa* active = [] {
    const WalkKernelIsa* avx2 = Avx2WalkKernelIsa();
    if (avx2 != nullptr && CpuSupportsAvx2()) return avx2;
    return GenericWalkKernelIsa();
  }();
  return active;
}

}  // namespace internal

namespace {

// Rows are processed in blocks of this many nodes so each strip of the
// coefficient vectors (add/scale/self) and the output buffer stays resident
// in L2 while its gathers run: 4 doubles per row ≈ 32 B, so a 4096-row
// block touches ~128 KiB of dense state — half a typical 256 KiB L2 —
// leaving the rest for the gathered value vector. Re-tuning guidance lives
// in docs/KERNELS.md.
constexpr int32_t kRowBlock = 4096;

}  // namespace

WalkKernel::WalkKernel() : isa_(internal::ActiveWalkKernelIsa()) {}

const char* WalkKernel::isa_name() const { return isa_->name; }

bool WalkKernel::RuntimeAvx2Available() {
  return internal::ActiveWalkKernelIsa() == internal::Avx2WalkKernelIsa() &&
         internal::Avx2WalkKernelIsa() != nullptr;
}

void WalkKernel::ForceGenericIsaForTesting() {
  isa_ = internal::GenericWalkKernelIsa();
}

void WalkKernel::BuildTransitions(const BipartiteGraph& g,
                                  Normalization norm) {
  graph_ = &g;
  norm_ = norm;
  num_nodes_ = g.num_nodes();
  const auto ptr = g.RowPointers();
  const auto col = g.FlatNeighbors();
  const auto w = g.FlatWeights();
  prob_.resize(w.size());
  switch (norm) {
    case Normalization::kRowStochastic: {
      // One divide per row, then a multiply per edge: ~2x cheaper to build
      // than per-edge division, at the cost of one extra rounding (covered
      // by the kernel's documented ~1e-13 parity tolerance).
      for (int32_t v = 0; v < num_nodes_; ++v) {
        const double d = g.WeightedDegree(v);
        // d <= 0 is a degenerate row (possible only with non-positive
        // weights): CompileAbsorbingSweep treats it as isolated, so its
        // transition values are never consumed; zero them for
        // definiteness.
        const double inv = d > 0.0 ? 1.0 / d : 0.0;
        for (int64_t k = ptr[v]; k < ptr[v + 1]; ++k) prob_[k] = w[k] * inv;
      }
      break;
    }
    case Normalization::kColumnStochastic: {
      for (size_t k = 0; k < w.size(); ++k) {
        const double d = g.WeightedDegree(col[k]);
        prob_[k] = d > 0.0 ? w[k] / d : 0.0;
      }
      break;
    }
    case Normalization::kRaw: {
      std::copy(w.begin(), w.end(), prob_.begin());
      break;
    }
  }
}

void WalkKernel::CompileAbsorbingSweep(const std::vector<bool>& absorbing,
                                       const std::vector<double>& node_cost) {
  LT_CHECK(graph_ != nullptr) << "BuildTransitions must run first";
  LT_CHECK(norm_ == Normalization::kRowStochastic)
      << "absorbing sweeps need row-stochastic transitions";
  const int32_t n = num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), absorbing.size());
  LT_CHECK_EQ(static_cast<size_t>(n), node_cost.size());
  add_.resize(n);
  scale_.resize(n);
  self_.resize(n);
  const BipartiteGraph& g = *graph_;
  for (int32_t v = 0; v < n; ++v) {
    if (absorbing[v]) {
      add_[v] = 0.0;
      scale_[v] = 0.0;
      self_[v] = 0.0;
    } else if (g.WeightedDegree(v) <= 0.0) {
      // Isolated transient node: never absorbed, accumulates cost forever.
      add_[v] = node_cost[v];
      scale_[v] = 0.0;
      self_[v] = 1.0;
    } else {
      add_[v] = node_cost[v];
      scale_[v] = 1.0;
      self_[v] = 0.0;
    }
  }
}

void WalkKernel::SweepTruncated(int iterations, std::vector<double>* value,
                                std::vector<double>* scratch) const {
  LT_CHECK(graph_ != nullptr) << "BuildTransitions must run first";
  const int32_t n = num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), add_.size())
      << "CompileAbsorbingSweep must run first";
  value->assign(n, 0.0);
  scratch->assign(n, 0.0);
  if (n == 0) return;
  const int64_t* ptr = graph_->RowPointers().data();
  const NodeId* col = graph_->FlatNeighbors().data();
  const double* prob = prob_.data();
  const double* add = add_.data();
  const double* scale = scale_.data();
  const double* self = self_.data();
  double* cur = value->data();
  double* nxt = scratch->data();
  for (int t = 0; t < iterations; ++t) {
    for (int32_t b = 0; b < n; b += kRowBlock) {
      const int32_t b_end = b + kRowBlock < n ? b + kRowBlock : n;
      isa_->absorbing_rows(b, b_end, ptr, col, prob, add, scale, self, cur,
                           nxt);
    }
    double* tmp = cur;
    cur = nxt;
    nxt = tmp;
  }
  if (cur != value->data()) value->swap(*scratch);
}

void WalkKernel::SweepTruncatedItemValues(int iterations,
                                          std::vector<double>* value) const {
  LT_CHECK(graph_ != nullptr) << "BuildTransitions must run first";
  const int32_t n = num_nodes_;
  LT_CHECK_EQ(static_cast<size_t>(n), add_.size())
      << "CompileAbsorbingSweep must run first";
  value->assign(n, 0.0);
  if (n == 0 || iterations <= 0) return;
  const int64_t* ptr = graph_->RowPointers().data();
  const NodeId* col = graph_->FlatNeighbors().data();
  const double* prob = prob_.data();
  const double* add = add_.data();
  const double* scale = scale_.data();
  const double* self = self_.data();
  const int32_t num_users = graph_->num_users();
  double* x = value->data();
  // Step t updates the side whose value the chain labels "iteration t":
  // items when (τ - t) is even, users otherwise, ending on items at t = τ.
  // In-place is safe because a side's gathers read only the *other* side.
  for (int t = 1; t <= iterations; ++t) {
    const bool item_side = ((iterations - t) & 1) == 0;
    const int32_t lo = item_side ? num_users : 0;
    const int32_t hi = item_side ? n : num_users;
    if (t == 1) {
      // The chain's first step advances its side by a single DP iteration.
      for (int32_t b = lo; b < hi; b += kRowBlock) {
        const int32_t b_end = b + kRowBlock < hi ? b + kRowBlock : hi;
        isa_->absorbing_rows(b, b_end, ptr, col, prob, add, scale, self, x,
                             x);
      }
    } else {
      // Every later step advances its side by two DP iterations. Ordinary
      // rows never reference the skipped intermediate, but isolated rows
      // (self = 1) accumulate cost on both: the trailing self·add term
      // applies the second addition in the same order the full sweep
      // would, keeping them bit-identical to it.
      for (int32_t b = lo; b < hi; b += kRowBlock) {
        const int32_t b_end = b + kRowBlock < hi ? b + kRowBlock : hi;
        isa_->absorbing_rows_fused(b, b_end, ptr, col, prob, add, scale,
                                   self, x);
      }
    }
  }
}

void WalkKernel::Apply(double alpha, const double* x, double beta,
                       const double* restart, double* y) const {
  LT_CHECK(graph_ != nullptr) << "BuildTransitions must run first";
  const int32_t n = num_nodes_;
  const int64_t* ptr = graph_->RowPointers().data();
  const NodeId* col = graph_->FlatNeighbors().data();
  const double* prob = prob_.data();
  // Sparse-input fast path: a dense pull always walks every adjacency
  // entry, which would make the first Katz steps / PPR iterations (a
  // frontier of one user node) cost O(total edges) where the pre-kernel
  // scatter cost O(frontier edges). When the nonzero rows of x carry
  // under half the entries, push from just those rows instead. The push
  // re-derives the per-row normalization from the raw weights (the
  // stored prob array is column-normalized for pulls), so push and pull
  // agree to rounding, and the branch is a pure function of x.
  if (norm_ != Normalization::kRowStochastic && n > 0) {
    const int64_t total_entries = ptr[n];
    int64_t nonzero_entries = 0;
    for (int32_t v = 0; v < n; ++v) {
      if (x[v] != 0.0) nonzero_entries += ptr[v + 1] - ptr[v];
    }
    if (nonzero_entries * 2 < total_entries) {
      if (restart != nullptr) {
        for (int32_t v = 0; v < n; ++v) y[v] = beta * restart[v];
      } else {
        for (int32_t v = 0; v < n; ++v) y[v] = 0.0;
      }
      const double* w = graph_->FlatWeights().data();
      for (int32_t v = 0; v < n; ++v) {
        const double mass = x[v];
        if (mass == 0.0) continue;
        double out;
        if (norm_ == Normalization::kColumnStochastic) {
          // Symmetric graph: pushing x[v]·w/d(v) along row v produces
          // exactly the pull's Σ_u (w_vu/d_u)·x[u] terms.
          const double d = graph_->WeightedDegree(v);
          if (d <= 0.0) continue;
          out = alpha * mass / d;
        } else {  // kRaw
          out = alpha * mass;
        }
        for (int64_t k = ptr[v]; k < ptr[v + 1]; ++k) {
          y[col[k]] += out * w[k];
        }
      }
      return;
    }
  }
  for (int32_t b = 0; b < n; b += kRowBlock) {
    const int32_t b_end = b + kRowBlock < n ? b + kRowBlock : n;
    isa_->apply_rows(b, b_end, ptr, col, prob, alpha, x, beta, restart, y);
  }
}

}  // namespace longtail
