// Sharded, thread-safe LRU cache of extracted walk subgraphs.
//
// The paper's graph recommenders (HT, AT, AC1, AC2) extract a µ-capped BFS
// subgraph per query. Queries with the same seed set — the same user asked
// again, or AT/AC1/AC2 fitted on one dataset serving the same user —
// rebuild byte-identical induced CSRs. The cache keys an entry by the exact
// extraction inputs (graph fingerprint, seed sequence, µ) and stores the
// extracted subgraph; a hit installs it into the caller's WalkWorkspace via
// WalkWorkspace::AdoptSubgraph, one sequential copy instead of the BFS +
// degree-count + CSR-scatter rebuild. Results are bit-identical either way
// (enforced by tests/subgraph_cache_test.cc).
//
// Concurrency: the key space is split across power-of-two shards, each a
// mutex-protected LRU list + index. Payloads are immutable and shared_ptr
// owned, so a reader copying an entry into its workspace never races an
// eviction — the shard lock covers only list/index surgery and pointer
// grabs. Collision safety does not rest on the 64-bit key: entries store
// the full identity (fingerprint, seeds, µ) and a lookup that hashes alike
// but differs in identity is a miss.
#ifndef LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_
#define LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/subgraph.h"

namespace longtail {

struct SubgraphCacheOptions {
  /// Maximum cached subgraphs across all shards (split evenly; each shard
  /// holds at least one). <= 0 entries would make every insert bounce, so
  /// the count is clamped to >= num_shards.
  size_t max_entries = 4096;
  /// Concurrency shards; rounded up to a power of two.
  size_t num_shards = 16;
  /// Optional resident-payload byte budget across all shards (0 = entry
  /// count only). Evicts LRU entries while a shard exceeds its slice.
  size_t max_bytes = 0;
};

struct SubgraphCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t resident_bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class SubgraphCache {
 public:
  explicit SubgraphCache(SubgraphCacheOptions options = {});

  SubgraphCache(const SubgraphCache&) = delete;
  SubgraphCache& operator=(const SubgraphCache&) = delete;

  /// Hash of the extraction inputs. Deterministic across processes for a
  /// given dataset (the fingerprint is a content hash).
  static uint64_t Key(uint64_t graph_fingerprint,
                      std::span<const NodeId> seeds,
                      const SubgraphOptions& options);

  /// On hit, installs the cached subgraph into `*ws` (AdoptSubgraph against
  /// `g`) and refreshes the entry's recency. `g`, `seeds` and `options`
  /// must be the inputs `key` was computed from; they double as the
  /// collision check.
  bool Lookup(uint64_t key, const BipartiteGraph& g,
              std::span<const NodeId> seeds, const SubgraphOptions& options,
              WalkWorkspace* ws);

  /// Caches a copy of `ws.sub()` (the subgraph extracted from `seeds`)
  /// under `key`, evicting least-recently-used entries beyond the budget.
  /// Inserting a key that raced in from another thread refreshes recency
  /// and keeps the resident payload (the two copies are identical).
  void Insert(uint64_t key, uint64_t graph_fingerprint,
              std::span<const NodeId> seeds, const SubgraphOptions& options,
              const WalkWorkspace& ws);

  /// Aggregated over shards; counters are cumulative since construction or
  /// the last Clear().
  SubgraphCacheStats Stats() const;

  /// Drops every entry and zeroes the counters.
  void Clear();

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t fingerprint = 0;
    int32_t max_items = 0;
    std::vector<NodeId> seeds;
    std::shared_ptr<const Subgraph> sub;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t key) {
    // Keys are finalizer-mixed, so the low bits are uniform at any shard
    // count.
    return *shards_[key & shard_mask_];
  }
  static bool Matches(const Entry& e, uint64_t fingerprint,
                      std::span<const NodeId> seeds, int32_t max_items);
  /// Evicts from the back of `shard` until it fits both budgets. Caller
  /// holds the shard mutex.
  void EvictOverflow(Shard* shard);

  size_t max_per_shard_ = 0;
  size_t max_bytes_per_shard_ = 0;
  uint64_t shard_mask_ = 0;
  /// unique_ptr because Shard (mutex) is immovable and the count is a
  /// runtime option.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_
