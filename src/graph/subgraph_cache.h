// Sharded, thread-safe LRU cache of extracted walk subgraphs, with
// single-flight coalescing of concurrent identical misses.
//
// The paper's graph recommenders (HT, AT, AC1, AC2) extract a µ-capped BFS
// subgraph per query. Queries with the same seed set — the same user asked
// again, or AT/AC1/AC2 fitted on one dataset serving the same user —
// rebuild byte-identical induced CSRs. The cache keys an entry by the exact
// extraction inputs (graph fingerprint, seed sequence, µ) and stores an
// immutable payload holding everything a query needs: the extracted
// subgraph, its WalkLayout, its WalkPlan (transitions + sweep plan, built
// exactly once at admission) and a compact global→local node index. A hit
// installs the payload into the caller's WalkWorkspace via
// WalkWorkspace::AdoptSharedSubgraph — a single shared_ptr store, zero
// O(E)/O(V) work; the query then compiles + sweeps against the shared plan
// with private scratch. Results are bit-identical to a fresh extraction
// (enforced by tests/subgraph_cache_test.cc and tests/warm_plan_test.cc).
//
// Single flight: GetOrExtract is the serving path's front door. The first
// thread to miss a key becomes the *leader* — it registers an in-flight
// ticket, extracts, publishes, and inserts. Threads that miss the same key
// while the ticket is open block on it and adopt the leader's published
// payload instead of racing a duplicate extraction: N identical concurrent
// cold queries perform exactly one extraction (the ROADMAP admission-control
// item; proven by tests/subgraph_cache_test.cc and the engine tests).
//
// Concurrency: the key space is split across power-of-two shards, each a
// mutex-protected LRU list + index + in-flight table. Payloads are
// immutable and shared_ptr owned, so a reader copying an entry into its
// workspace never races an eviction — the shard lock covers only
// list/index/ticket surgery and pointer grabs; waiters block on the
// ticket's own condition variable, never on the shard. Stats counters are
// atomics, so Stats() snapshots do not serialize the serving path.
// Collision safety does not rest on the 64-bit key: entries and tickets
// store the full identity (fingerprint, seeds, µ) and a lookup that hashes
// alike but differs in identity is a miss.
#ifndef LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_
#define LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/subgraph.h"

namespace longtail {

struct SubgraphCacheOptions {
  /// Maximum cached subgraphs across all shards (split evenly; each shard
  /// holds at least one). <= 0 entries would make every insert bounce, so
  /// the count is clamped to >= num_shards.
  size_t max_entries = 4096;
  /// Concurrency shards; rounded up to a power of two.
  size_t num_shards = 16;
  /// Optional resident-payload byte budget across all shards (0 = entry
  /// count only). Evicts LRU entries while a shard exceeds its slice.
  size_t max_bytes = 0;
  /// Build a walk layout (walk_layout.h) for every admitted payload, not
  /// just those past the reorder threshold. Production leaves this false —
  /// small subgraphs gain nothing from reordering; tests set it to exercise
  /// the layout-adoption path on CI-sized graphs.
  bool always_build_layout = false;
};

struct SubgraphCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Requests that found an identical extraction already in flight and
  /// adopted the leader's result instead of extracting (single-flight
  /// coalescing). Counted when the waiter starts waiting; every coalesced
  /// wait is one duplicate extraction avoided.
  uint64_t coalesced_waits = 0;
  size_t entries = 0;
  size_t resident_bytes = 0;
  /// Slice of resident_bytes owned by admission-built plan structures (the
  /// WalkPlan's materialized values plus the payload node index), reported
  /// separately so the cost of the zero-copy warm path stays visible.
  size_t plan_resident_bytes = 0;

  /// hits / (hits + misses): coalesced waits are neither (they are
  /// de-duplicated misses) and are reported via CoalescedRate().
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
  /// Fraction of cold lookups (misses + coalesced waits) that were
  /// absorbed by an in-flight extraction instead of extracting again.
  double CoalescedRate() const {
    const uint64_t cold = misses + coalesced_waits;
    return cold > 0 ? static_cast<double>(coalesced_waits) / cold : 0.0;
  }
};

class MetricsRegistry;

class SubgraphCache {
 public:
  explicit SubgraphCache(SubgraphCacheOptions options = {});
  ~SubgraphCache();

  SubgraphCache(const SubgraphCache&) = delete;
  SubgraphCache& operator=(const SubgraphCache&) = delete;

  /// Exports the cache's counters into `registry` as callback series
  /// (longtail_subgraph_cache_*: hit/miss/insert/eviction/coalesced-wait
  /// totals, plus entries, resident-bytes and plan-resident-bytes
  /// gauges), sampled from the
  /// shard atomics at scrape time — no new work on the lookup path. The
  /// registry must outlive the cache or BindMetrics(nullptr) must be
  /// called first; the destructor releases the callbacks itself. Beware
  /// binding to a ServingEngine's *owned* registry (options.metrics ==
  /// nullptr): that registry dies with the engine, and a cache shared via
  /// ServingEngineOptions::subgraph_cache necessarily outlives it — use an
  /// external registry or unbind before the engine is destroyed.
  void BindMetrics(MetricsRegistry* registry);

  /// Hash of the extraction inputs. Deterministic across processes for a
  /// given dataset (the fingerprint is a content hash).
  static uint64_t Key(uint64_t graph_fingerprint,
                      std::span<const NodeId> seeds,
                      const SubgraphOptions& options);

  /// The serving path's front door: ends with the subgraph induced by
  /// (`g`, `seeds`, `options`) installed in `*ws`, bit-identical to a
  /// direct ExtractSubgraphInto. Hit → adopt the cached payload. Miss with
  /// no identical extraction in flight → this caller extracts (leader),
  /// publishes, and inserts. Miss while an identical extraction is in
  /// flight → block until the leader publishes and adopt its payload
  /// (counted as a coalesced wait). Safe for any number of concurrent
  /// callers; distinct keys never wait on each other.
  void GetOrExtract(const BipartiteGraph& g, const std::vector<NodeId>& seeds,
                    const SubgraphOptions& options, WalkWorkspace* ws);

  /// On hit, installs the cached payload into `*ws` (zero-copy
  /// AdoptSharedSubgraph) and refreshes the entry's recency. `g`, `seeds`
  /// and `options` must be the inputs `key` was computed from; they double
  /// as the collision check. Does not consult the in-flight table — use
  /// GetOrExtract for coalescing.
  bool Lookup(uint64_t key, const BipartiteGraph& g,
              std::span<const NodeId> seeds, const SubgraphOptions& options,
              WalkWorkspace* ws);

  /// Caches a copy of `ws.sub()` (the subgraph extracted from `seeds`)
  /// under `key`, evicting least-recently-used entries beyond the budget.
  /// Inserting a key that raced in from another thread refreshes recency
  /// and keeps the resident payload (the two copies are identical).
  void Insert(uint64_t key, uint64_t graph_fingerprint,
              std::span<const NodeId> seeds, const SubgraphOptions& options,
              const WalkWorkspace& ws);

  /// Aggregated over shards; counters are cumulative since construction or
  /// the last Clear(). Counter reads are atomic and do not block lookups;
  /// entries/resident_bytes take each shard lock briefly.
  SubgraphCacheStats Stats() const;

  /// Drops every entry and zeroes the counters. In-flight extractions are
  /// unaffected (their tickets complete and insert normally).
  void Clear();

  size_t num_shards() const { return shards_.size(); }

  /// Test-only: invoked by a GetOrExtract *leader* after its in-flight
  /// ticket is registered and before extraction begins. Lets tests hold
  /// the leader open until a chosen number of waiters have coalesced
  /// behind it. Not for production use; calls must not re-enter the cache.
  void SetLeaderExtractHookForTesting(std::function<void()> hook) {
    leader_extract_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t fingerprint = 0;
    int32_t max_items = 0;
    std::vector<NodeId> seeds;
    std::shared_ptr<const Subgraph> sub;
    size_t bytes = 0;
    /// Slice of `bytes` owned by the plan + node index (metrics only).
    size_t plan_bytes = 0;
  };

  /// One open extraction. Waiters block on `cv` until the leader publishes
  /// `sub` (or abandons, which sends them to extract for themselves).
  struct FlightTicket {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Subgraph> sub;  // null when abandoned
    // Full identity, so a hash-colliding key never adopts a stranger.
    uint64_t fingerprint = 0;
    int32_t max_items = 0;
    std::vector<NodeId> seeds;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    /// Open extractions keyed like the index; erased on publish/abandon.
    std::unordered_map<uint64_t, std::shared_ptr<FlightTicket>> inflight;
    size_t bytes = 0;
    size_t plan_bytes = 0;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> coalesced_waits{0};
  };

  Shard& ShardFor(uint64_t key) {
    // Keys are finalizer-mixed, so the low bits are uniform at any shard
    // count.
    return *shards_[key & shard_mask_];
  }
  static bool Matches(const Entry& e, uint64_t fingerprint,
                      std::span<const NodeId> seeds, int32_t max_items);
  /// Detaches a self-contained copy of the workspace's current subgraph
  /// (the payload format entries and tickets share) and finishes it for
  /// zero-copy adoption: builds its walk layout when the subgraph crosses
  /// the reorder threshold (or always, under options.always_build_layout),
  /// then the full WalkPlan (row-stochastic transitions + sweep-plan
  /// selection, bound to the payload's own graph/layout) and the compact
  /// global→local node index. This is the *only* place plans are built for
  /// cached subgraphs — every adopter shares this one.
  std::shared_ptr<const Subgraph> DetachPayload(const WalkWorkspace& ws) const;
  /// Inserts `sub` under `key`, refreshing recency if an identical entry
  /// raced in. Takes the shard lock itself.
  void InsertPayload(uint64_t key, uint64_t graph_fingerprint,
                     std::span<const NodeId> seeds,
                     const SubgraphOptions& options,
                     std::shared_ptr<const Subgraph> sub);
  /// Insert body; caller holds the shard mutex.
  void InsertPayloadLocked(Shard* shard, uint64_t key,
                           uint64_t graph_fingerprint,
                           std::span<const NodeId> seeds,
                           const SubgraphOptions& options,
                           std::shared_ptr<const Subgraph> sub);
  /// Evicts from the back of `shard` until it fits both budgets. Caller
  /// holds the shard mutex.
  void EvictOverflow(Shard* shard);

  size_t max_per_shard_ = 0;
  size_t max_bytes_per_shard_ = 0;
  bool always_build_layout_ = false;
  uint64_t shard_mask_ = 0;
  /// unique_ptr because Shard (mutex) is immovable and the count is a
  /// runtime option.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> leader_extract_hook_;
  /// Registry currently holding this cache's callback series (see
  /// BindMetrics); null when unbound.
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_SUBGRAPH_CACHE_H_
