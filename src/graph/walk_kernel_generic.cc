// The portable scalar flavour of the walk kernel's row passes: the
// 4-accumulator unrolled gather every instruction set must match bit for
// bit. Compiled with the project's default flags on every target.
#include "graph/walk_kernel_isa.h"

namespace longtail {
namespace internal {
namespace {

// The hot gather: Σ_k prob[k]·x[col[k]] over one CSR row, 4-way unrolled
// into independent accumulators so the loads pipeline, reduced with the
// fixed (a0+a1)+(a2+a3) tree. The default build has no FMA ISA, so the
// products and sums below are individual roundings — the contract the
// AVX2 flavour reproduces exactly.
inline double RowGather(const double* prob, const NodeId* col, int64_t begin,
                        int64_t end, const double* x) {
  int64_t k = begin;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (; k + 4 <= end; k += 4) {
    a0 += prob[k] * x[col[k]];
    a1 += prob[k + 1] * x[col[k + 1]];
    a2 += prob[k + 2] * x[col[k + 2]];
    a3 += prob[k + 3] * x[col[k + 3]];
  }
  double sum = (a0 + a1) + (a2 + a3);
  for (; k < end; ++k) sum += prob[k] * x[col[k]];
  return sum;
}

// Normalizing gather for the plan's "simple" mode: the transition value
// w[k]·inv is formed on the fly — the exact product BuildTransitions would
// have stored — then multiplied into x, so every rounding matches the
// materialized path and results stay bit-identical.
inline double RowGatherNorm(const double* w, const NodeId* col, int64_t begin,
                            int64_t end, const double* x, double inv) {
  int64_t k = begin;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (; k + 4 <= end; k += 4) {
    a0 += (w[k] * inv) * x[col[k]];
    a1 += (w[k + 1] * inv) * x[col[k + 1]];
    a2 += (w[k + 2] * inv) * x[col[k + 2]];
    a3 += (w[k + 3] * inv) * x[col[k + 3]];
  }
  double sum = (a0 + a1) + (a2 + a3);
  for (; k < end; ++k) sum += (w[k] * inv) * x[col[k]];
  return sum;
}

#include "graph/walk_kernel_rows.inc"

}  // namespace

const WalkKernelIsa* GenericWalkKernelIsa() {
  static constexpr WalkKernelIsa isa = {
      "generic",          &AbsorbingRows,         &AbsorbingRowsFused,
      &AbsorbingRowsNorm, &AbsorbingRowsFusedNorm, &ApplyRows};
  return &isa;
}

}  // namespace internal
}  // namespace longtail
