// The portable scalar flavour of the walk kernel's row passes: the
// 4-accumulator unrolled gather every instruction set must match bit for
// bit. Compiled with the project's default flags on every target.
#include "graph/walk_kernel_isa.h"

namespace longtail {
namespace internal {
namespace {

// The hot gather: Σ_k prob[k]·x[col[k]] over one CSR row, 4-way unrolled
// into independent accumulators so the loads pipeline, reduced with the
// fixed (a0+a1)+(a2+a3) tree. The default build has no FMA ISA, so the
// products and sums below are individual roundings — the contract the
// AVX2 flavour reproduces exactly.
inline double RowGather(const double* prob, const NodeId* col, int64_t begin,
                        int64_t end, const double* x) {
  int64_t k = begin;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (; k + 4 <= end; k += 4) {
    a0 += prob[k] * x[col[k]];
    a1 += prob[k + 1] * x[col[k + 1]];
    a2 += prob[k + 2] * x[col[k + 2]];
    a3 += prob[k + 3] * x[col[k + 3]];
  }
  double sum = (a0 + a1) + (a2 + a3);
  for (; k < end; ++k) sum += prob[k] * x[col[k]];
  return sum;
}

// Normalizing gather for the plan's "simple" mode: the transition value
// w[k]·inv is formed on the fly — the exact product BuildTransitions would
// have stored — then multiplied into x, so every rounding matches the
// materialized path and results stay bit-identical.
inline double RowGatherNorm(const double* w, const NodeId* col, int64_t begin,
                            int64_t end, const double* x, double inv) {
  int64_t k = begin;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (; k + 4 <= end; k += 4) {
    a0 += (w[k] * inv) * x[col[k]];
    a1 += (w[k + 1] * inv) * x[col[k + 1]];
    a2 += (w[k + 2] * inv) * x[col[k + 2]];
    a3 += (w[k + 3] * inv) * x[col[k + 3]];
  }
  double sum = (a0 + a1) + (a2 + a3);
  for (; k < end; ++k) sum += (w[k] * inv) * x[col[k]];
  return sum;
}

// Fused multi-query gather: lane q reads the strided view x[col[k]·width+q]
// with the exact per-lane loop of RowGather — same 4 accumulators over the
// same edge partition, same reduction tree, same scalar edge tail — so
// out[q] is bit-identical to a sequential sweep of lane q. Lane-major
// iteration re-walks the row's col/prob strip per lane, but the strip is
// L1-hot after lane 0; the bandwidth win is that each gathered node's
// x-line serves all lanes that touch it.
inline void RowGatherBatch(const double* prob, const NodeId* col,
                           int64_t begin, int64_t end, const double* x,
                           int32_t width, double* out) {
  for (int32_t q = 0; q < width; ++q) {
    const double* xq = x + q;
    int64_t k = begin;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (; k + 4 <= end; k += 4) {
      a0 += prob[k] * xq[static_cast<int64_t>(col[k]) * width];
      a1 += prob[k + 1] * xq[static_cast<int64_t>(col[k + 1]) * width];
      a2 += prob[k + 2] * xq[static_cast<int64_t>(col[k + 2]) * width];
      a3 += prob[k + 3] * xq[static_cast<int64_t>(col[k + 3]) * width];
    }
    double sum = (a0 + a1) + (a2 + a3);
    for (; k < end; ++k) {
      sum += prob[k] * xq[static_cast<int64_t>(col[k]) * width];
    }
    out[q] = sum;
  }
}

// Normalizing flavour: (w[k]·inv) formed per edge exactly as RowGatherNorm
// does, so every rounding matches the sequential normalizing sweep.
inline void RowGatherNormBatch(const double* w, const NodeId* col,
                               int64_t begin, int64_t end, const double* x,
                               double inv, int32_t width, double* out) {
  for (int32_t q = 0; q < width; ++q) {
    const double* xq = x + q;
    int64_t k = begin;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (; k + 4 <= end; k += 4) {
      a0 += (w[k] * inv) * xq[static_cast<int64_t>(col[k]) * width];
      a1 += (w[k + 1] * inv) * xq[static_cast<int64_t>(col[k + 1]) * width];
      a2 += (w[k + 2] * inv) * xq[static_cast<int64_t>(col[k + 2]) * width];
      a3 += (w[k + 3] * inv) * xq[static_cast<int64_t>(col[k + 3]) * width];
    }
    double sum = (a0 + a1) + (a2 + a3);
    for (; k < end; ++k) {
      sum += (w[k] * inv) * xq[static_cast<int64_t>(col[k]) * width];
    }
    out[q] = sum;
  }
}

#include "graph/walk_kernel_rows.inc"

}  // namespace

const WalkKernelIsa* GenericWalkKernelIsa() {
  static constexpr WalkKernelIsa isa = {"generic",
                                        &AbsorbingRows,
                                        &AbsorbingRowsFused,
                                        &AbsorbingRowsNorm,
                                        &AbsorbingRowsFusedNorm,
                                        &ApplyRows,
                                        &AbsorbingRowsBatch,
                                        &AbsorbingRowsFusedBatch,
                                        &AbsorbingRowsNormBatch,
                                        &AbsorbingRowsFusedNormBatch};
  return &isa;
}

}  // namespace internal
}  // namespace longtail
