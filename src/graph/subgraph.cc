#include "graph/subgraph.h"

#include <queue>

#include "util/logging.h"

namespace longtail {

NodeId Subgraph::LocalUserNode(UserId global_user) const {
  if (global_user < 0 ||
      global_user >= static_cast<int32_t>(global_user_to_local.size())) {
    return -1;
  }
  return global_user_to_local[global_user];
}

NodeId Subgraph::LocalItemNode(ItemId global_item) const {
  if (global_item < 0 ||
      global_item >= static_cast<int32_t>(global_item_to_local.size())) {
    return -1;
  }
  const int32_t local_item = global_item_to_local[global_item];
  if (local_item < 0) return -1;
  return static_cast<NodeId>(users.size()) + local_item;
}

Subgraph ExtractSubgraph(const BipartiteGraph& g,
                         const std::vector<NodeId>& seed_nodes,
                         const SubgraphOptions& options) {
  const int32_t n = g.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<NodeId> order;  // global node ids in visit order
  order.reserve(256);
  std::queue<NodeId> frontier;
  int32_t item_count = 0;

  auto visit = [&](NodeId v) {
    if (visited[v]) return;
    visited[v] = true;
    order.push_back(v);
    if (g.IsItemNode(v)) ++item_count;
    frontier.push(v);
  };

  for (NodeId s : seed_nodes) {
    LT_CHECK_GE(s, 0);
    LT_CHECK_LT(s, n);
    visit(s);
  }
  const bool capped = options.max_items > 0;
  while (!frontier.empty() && (!capped || item_count <= options.max_items)) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId nbr : g.Neighbors(v)) {
      visit(nbr);
      if (capped && item_count > options.max_items) break;
    }
  }

  // Assign local ids: users first, then items, in visit order.
  Subgraph sub;
  sub.global_user_to_local.assign(g.num_users(), -1);
  sub.global_item_to_local.assign(g.num_items(), -1);
  for (NodeId v : order) {
    if (g.IsUserNode(v)) {
      sub.global_user_to_local[g.UserOf(v)] =
          static_cast<int32_t>(sub.users.size());
      sub.users.push_back(g.UserOf(v));
    } else {
      sub.global_item_to_local[g.ItemOf(v)] =
          static_cast<int32_t>(sub.items.size());
      sub.items.push_back(g.ItemOf(v));
    }
  }
  const int32_t num_local_users = static_cast<int32_t>(sub.users.size());
  const int32_t num_local_items = static_cast<int32_t>(sub.items.size());

  // Induced adjacency: keep edges whose both endpoints are visited.
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency(
      num_local_users + num_local_items);
  for (int32_t lu = 0; lu < num_local_users; ++lu) {
    const NodeId gv = g.UserNode(sub.users[lu]);
    const auto nbrs = g.Neighbors(gv);
    const auto wts = g.Weights(gv);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const ItemId gi = g.ItemOf(nbrs[k]);
      const int32_t li = sub.global_item_to_local[gi];
      if (li < 0) continue;
      adjacency[lu].push_back({num_local_users + li, wts[k]});
      adjacency[num_local_users + li].push_back({lu, wts[k]});
    }
  }
  sub.graph =
      BipartiteGraph::FromAdjacency(num_local_users, num_local_items,
                                    adjacency);
  return sub;
}

}  // namespace longtail
