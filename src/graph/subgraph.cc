#include "graph/subgraph.h"

#include <algorithm>

#include "util/logging.h"

namespace longtail {

namespace {

/// Fibonacci multiplicative hash of a node id into `mask + 1` slots.
inline uint32_t NodeSlot(NodeId node, uint32_t mask) {
  return static_cast<uint32_t>(
             (static_cast<uint64_t>(static_cast<uint32_t>(node)) *
              0x9E3779B97F4A7C15ull) >>
             32) &
         mask;
}

}  // namespace

void SubgraphNodeIndex::Build(int32_t num_global_users,
                              int32_t num_global_items, const Subgraph& sub) {
  num_global_users_ = num_global_users;
  num_global_items_ = num_global_items;
  const size_t n = sub.users.size() + sub.items.size();
  // Keep the table at most half full so linear probes stay O(1) expected.
  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  mask_ = static_cast<uint32_t>(cap - 1);
  key_.assign(cap, -1);
  value_.assign(cap, -1);
  auto insert = [&](NodeId global_node, NodeId local_node) {
    uint32_t slot = NodeSlot(global_node, mask_);
    while (key_[slot] != -1) slot = (slot + 1) & mask_;
    key_[slot] = global_node;
    value_[slot] = local_node;
  };
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    insert(sub.users[lu], static_cast<NodeId>(lu));
  }
  const NodeId num_local_users = static_cast<NodeId>(sub.users.size());
  for (size_t li = 0; li < sub.items.size(); ++li) {
    insert(num_global_users + sub.items[li],
           num_local_users + static_cast<NodeId>(li));
  }
  built_ = true;
}

void SubgraphNodeIndex::Clear() {
  built_ = false;
  num_global_users_ = 0;
  num_global_items_ = 0;
  mask_ = 0;
  key_.clear();
  value_.clear();
}

NodeId SubgraphNodeIndex::LocalNode(NodeId global_node) const {
  if (!built_ || global_node < 0 ||
      global_node >= num_global_users_ + num_global_items_) {
    return -1;
  }
  uint32_t slot = NodeSlot(global_node, mask_);
  while (key_[slot] != -1) {
    if (key_[slot] == global_node) return value_[slot];
    slot = (slot + 1) & mask_;
  }
  return -1;
}

NodeId SubgraphNodeIndex::LocalUser(UserId global_user) const {
  if (global_user < 0 || global_user >= num_global_users_) return -1;
  return LocalNode(global_user);
}

NodeId SubgraphNodeIndex::LocalItem(ItemId global_item) const {
  if (global_item < 0 || global_item >= num_global_items_) return -1;
  return LocalNode(num_global_users_ + global_item);
}

NodeId Subgraph::LocalUserNode(UserId global_user) const {
  if (workspace_ != nullptr) return workspace_->LocalUser(global_user);
  if (node_index.built()) return node_index.LocalUser(global_user);
  if (global_user < 0 ||
      global_user >= static_cast<int32_t>(global_user_to_local.size())) {
    return -1;
  }
  return global_user_to_local[global_user];
}

NodeId Subgraph::LocalItemNode(ItemId global_item) const {
  if (workspace_ != nullptr) return workspace_->LocalItem(global_item);
  if (node_index.built()) return node_index.LocalItem(global_item);
  if (global_item < 0 ||
      global_item >= static_cast<int32_t>(global_item_to_local.size())) {
    return -1;
  }
  const int32_t local_item = global_item_to_local[global_item];
  if (local_item < 0) return -1;
  return static_cast<NodeId>(users.size()) + local_item;
}

void WalkWorkspace::AdoptSharedSubgraph(std::shared_ptr<const Subgraph> src) {
  LT_CHECK(src != nullptr && src->node_index.built())
      << "shared adoption needs an admission-built payload node index";
  // The whole point: one pointer store. The payload keeps graph, layout,
  // plan and node index alive together; nothing is copied or rebuilt.
  shared_sub_ = std::move(src);
}

void WalkWorkspace::BeginQuery(const BipartiteGraph& g) {
  shared_sub_.reset();
  const size_t n = static_cast<size_t>(g.num_nodes());
  num_global_users_ = g.num_users();
  num_global_items_ = g.num_items();
  if (stamp_.size() != n) {
    stamp_.assign(n, 0);
    local_id_.assign(n, -1);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // Epoch wrapped around: every stale stamp would look current again, so
    // pay one O(n) clear per 2^32 queries.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void WalkWorkspace::AdoptSubgraph(const BipartiteGraph& g,
                                  const Subgraph& src) {
  BeginQuery(g);
  sub_.workspace_ = this;
  sub_.users = src.users;
  sub_.items = src.items;
  sub_.graph = src.graph;
  // Shared, immutable: adopting the layout is a pointer copy — the
  // permutation was paid once, when the cache admitted the payload.
  sub_.layout = src.layout;
  // The plan is NOT carried over: it points into src's graph, which this
  // deep copy does not keep alive. The copy path rebuilds transitions.
  sub_.plan.reset();
  sub_.node_index.Clear();
  sub_.global_user_to_local.clear();
  sub_.global_item_to_local.clear();
  for (size_t lu = 0; lu < sub_.users.size(); ++lu) {
    const NodeId gv = g.UserNode(sub_.users[lu]);
    stamp_[gv] = epoch_;
    local_id_[gv] = static_cast<int32_t>(lu);
  }
  const int32_t num_local_users = static_cast<int32_t>(sub_.users.size());
  for (size_t li = 0; li < sub_.items.size(); ++li) {
    const NodeId gv = g.ItemNode(sub_.items[li]);
    stamp_[gv] = epoch_;
    local_id_[gv] = num_local_users + static_cast<int32_t>(li);
  }
}

Subgraph& ExtractSubgraphInto(const BipartiteGraph& g,
                              const std::vector<NodeId>& seed_nodes,
                              const SubgraphOptions& options,
                              WalkWorkspace* workspace) {
  WalkWorkspace& ws = *workspace;
  ws.BeginQuery(g);
  Subgraph& sub = ws.sub_;
  sub.workspace_ = workspace;
  sub.users.clear();
  sub.items.clear();
  sub.global_user_to_local.clear();
  sub.global_item_to_local.clear();
  // A fresh extraction has no layout, plan or node index; the
  // SubgraphCache builds all three when (and only when) it admits this
  // subgraph as a payload.
  sub.layout.reset();
  sub.plan.reset();
  sub.node_index.Clear();

  const int32_t n = g.num_nodes();
  std::vector<NodeId>& order = ws.order_;
  order.clear();
  int32_t item_count = 0;

  auto visit = [&](NodeId v) {
    if (ws.stamp_[v] == ws.epoch_) return;
    ws.stamp_[v] = ws.epoch_;
    ws.local_id_[v] = -1;
    order.push_back(v);
    if (g.IsItemNode(v)) ++item_count;
  };

  for (NodeId s : seed_nodes) {
    LT_CHECK_GE(s, 0);
    LT_CHECK_LT(s, n);
    visit(s);
  }
  // `order` doubles as the FIFO frontier: `head` walks it while `visit`
  // appends, which is exactly the queue the old implementation kept.
  const bool capped = options.max_items > 0;
  size_t head = 0;
  while (head < order.size() && (!capped || item_count <= options.max_items)) {
    const NodeId v = order[head++];
    for (NodeId nbr : g.Neighbors(v)) {
      visit(nbr);
      if (capped && item_count > options.max_items) break;
    }
  }

  // Assign local ids: users first, then items, in visit order.
  for (NodeId v : order) {
    if (g.IsUserNode(v)) {
      ws.local_id_[v] = static_cast<int32_t>(sub.users.size());
      sub.users.push_back(g.UserOf(v));
    } else {
      sub.items.push_back(g.ItemOf(v));
    }
  }
  const int32_t num_local_users = static_cast<int32_t>(sub.users.size());
  const int32_t num_local_items = static_cast<int32_t>(sub.items.size());
  {
    int32_t li = 0;
    for (NodeId v : order) {
      if (g.IsItemNode(v)) ws.local_id_[v] = num_local_users + li++;
    }
  }

  // Induced CSR: count degrees, then fill edges directly into the reused
  // graph storage. Iterating the user side only visits each undirected edge
  // once and reproduces the old FromAdjacency entry order exactly (user
  // rows in neighbor order, item rows in ascending local-user order).
  ws.degrees_.assign(num_local_users + num_local_items, 0);
  for (int32_t lu = 0; lu < num_local_users; ++lu) {
    const NodeId gv = g.UserNode(sub.users[lu]);
    for (NodeId nbr : g.Neighbors(gv)) {
      const NodeId li = ws.LocalNode(nbr);
      if (li < 0) continue;
      ++ws.degrees_[lu];
      ++ws.degrees_[li];
    }
  }
  sub.graph.BeginAssign(num_local_users, num_local_items, ws.degrees_);
  for (int32_t lu = 0; lu < num_local_users; ++lu) {
    const NodeId gv = g.UserNode(sub.users[lu]);
    const auto nbrs = g.Neighbors(gv);
    const auto wts = g.Weights(gv);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId li = ws.LocalNode(nbrs[k]);
      if (li < 0) continue;
      sub.graph.AssignEdge(lu, li, wts[k]);
    }
  }
  sub.graph.FinishAssign();
  return sub;
}

Subgraph ExtractSubgraph(const BipartiteGraph& g,
                         const std::vector<NodeId>& seed_nodes,
                         const SubgraphOptions& options) {
  WalkWorkspace workspace;
  Subgraph sub = std::move(ExtractSubgraphInto(g, seed_nodes, options,
                                               &workspace));
  // Detach from the dying workspace: materialize the owned lookup tables.
  sub.workspace_ = nullptr;
  sub.global_user_to_local.assign(g.num_users(), -1);
  sub.global_item_to_local.assign(g.num_items(), -1);
  for (size_t lu = 0; lu < sub.users.size(); ++lu) {
    sub.global_user_to_local[sub.users[lu]] = static_cast<int32_t>(lu);
  }
  for (size_t li = 0; li < sub.items.size(); ++li) {
    sub.global_item_to_local[sub.items[li]] = static_cast<int32_t>(li);
  }
  return sub;
}

}  // namespace longtail
