// Cache-aware memory layout for the walk kernel.
//
// The truncated-walk sweep is a gather: row v reads value[col[k]] for every
// adjacency entry k. BFS extraction assigns local ids in visit order, which
// is decent, but on large subgraphs (value vector past L2) the gathered
// addresses still span the whole vector and every edge is a potential cache
// miss. A WalkLayout is a locality-improving *node permutation* of the
// subgraph plus the transition CSR rebuilt in permuted order: a
// degree-bucketed BFS (Cuthill–McKee-style) renumbering clusters each row's
// neighbors into a narrow index band, so the sweep's gathers hit a window
// of the value vector that stays cache-resident.
//
// The permutation is *bipartite-aware*: users keep ids [0, num_users) and
// items [num_users, num_nodes), each side numbered in the shared BFS visit
// order. That preserves the side boundary the ranking sweep alternates
// over, so every sweep flavour runs unchanged on the permuted CSR.
//
// Bit-identity contract: the permuted row perm[v] carries row v's edges in
// their ORIGINAL order with columns renamed through perm, and row_prob is
// computed with the exact expression BuildTransitions uses (one 1/d per
// row, then w[k]·inv per edge). A sweep over the permuted CSR therefore
// performs the same per-row multiply/add sequence as the identity layout,
// and scattering the result back through perm reproduces the identity
// output bit for bit (tests/walk_kernel_test.cc pins this).
//
// Layouts are built once per subgraph — by SubgraphCache when it admits a
// payload (steady-state serving pays the permutation once per cached
// subgraph) or by the kernel itself for one-shot large builds — and adopted
// by WalkKernel::BuildTransitions via shared_ptr.
#ifndef LONGTAIL_GRAPH_WALK_LAYOUT_H_
#define LONGTAIL_GRAPH_WALK_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"

namespace longtail {

/// Data-cache capacities of the running machine, probed once per process
/// (sysconf where the platform exposes them, conservative defaults
/// otherwise). The kernel's adaptive sweep selection and the layout
/// threshold compare working-set bytes against these.
struct CacheGeometry {
  size_t l1d_bytes;
  size_t l2_bytes;
  size_t l3_bytes;
};

const CacheGeometry& ProbeCacheGeometry();

/// A node permutation of one BipartiteGraph plus its CSR (and optionally
/// the row-stochastic transition values) materialized in permuted order.
/// Immutable once built; shared across workspaces via shared_ptr.
struct WalkLayout {
  int32_t num_users = 0;
  int32_t num_nodes = 0;
  /// Original local node id → permuted node id. Side-preserving: users map
  /// to [0, num_users), items to [num_users, num_nodes).
  std::vector<int32_t> perm;
  /// Permuted CSR: row perm[v] holds row v's adjacency entries in original
  /// order, column ids renamed through perm. ptr has num_nodes + 1 entries.
  std::vector<int64_t> ptr;
  std::vector<NodeId> col;
  /// Row-stochastic transition values parallel to col, same rounding as
  /// WalkKernel::BuildTransitions(kRowStochastic). Empty when the layout
  /// was built without them (non-row-stochastic consumers).
  std::vector<double> row_prob;
};

/// Builds the degree-bucketed BFS permutation and permuted CSR for `g`.
/// Each connected component is entered at its lowest-degree node and
/// traversed breadth-first (neighbors in row order); isolated nodes keep
/// their relative order at the end of each side. O(nodes + edges).
/// Reuses `out`'s buffer capacity.
void BuildWalkLayout(const BipartiteGraph& g, bool with_row_prob,
                     WalkLayout* out);

/// The reorder threshold shared by the kernel's auto plan and the cache:
/// true when the value vector outgrows L2 (gathers start missing) and the
/// graph is dense enough (entries >= 2·nodes) for locality to matter.
bool WalkLayoutReorderBeneficial(int32_t num_nodes, int64_t entries);

/// BuildWalkLayout behind the WalkLayoutReorderBeneficial gate; nullptr
/// when reordering would not pay. Always includes row_prob (the consumers
/// are the row-stochastic truncated sweeps).
std::shared_ptr<const WalkLayout> BuildWalkLayoutIfBeneficial(
    const BipartiteGraph& g);

}  // namespace longtail

#endif  // LONGTAIL_GRAPH_WALK_LAYOUT_H_
