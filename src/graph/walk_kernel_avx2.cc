// The AVX2 flavour of the walk kernel's row passes. This translation unit
// — and only this one — is compiled with -mavx2 (plus -mno-fma and
// -ffp-contract=off, so neither the intrinsic loop's surroundings nor the
// scalar tail get contracted into FMA and every rounding matches the
// generic flavour). CMake defines LONGTAIL_COMPILE_AVX2 for it exactly
// when those flags are available; on other toolchains/targets the TU
// degrades to a stub returning nullptr and runtime dispatch stays on the
// generic path. Whether this code ever *executes* is decided per process
// by the CPUID probe in walk_kernel.cc — the binary itself stays portable.
#include "graph/walk_kernel_isa.h"

#if defined(LONGTAIL_COMPILE_AVX2)

#include <immintrin.h>

namespace longtail {
namespace internal {
namespace {

// AVX2 gather over one CSR row: vgatherdpd on the int32 column indices.
// Lane i accumulates exactly like scalar accumulator a_i of the generic
// flavour, and the reduction uses the same (a0+a1)+(a2+a3) tree, so both
// paths round identically.
inline double RowGather(const double* prob, const NodeId* col, int64_t begin,
                        int64_t end, const double* x) {
  int64_t k = begin;
  __m256d acc = _mm256_setzero_pd();
  // All-lanes mask + zeroed source: same vgatherdpd as the unmasked
  // intrinsic, but avoids its _mm256_undefined_pd() source, which GCC 12
  // flags with a spurious -Wmaybe-uninitialized.
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (; k + 4 <= end; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + k));
    const __m256d xv = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx,
                                                gather_mask, /*scale=*/8);
    const __m256d pv = _mm256_loadu_pd(prob + k);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pv, xv));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; k < end; ++k) sum += prob[k] * x[col[k]];
  return sum;
}

// Normalizing gather ("simple" mode): w[k]·inv is formed per lane before
// the multiply into x — each lane performs the same two individually
// rounded products as scalar accumulator a_i of the generic flavour, and
// the reduction tree is shared, so both paths round identically.
inline double RowGatherNorm(const double* w, const NodeId* col, int64_t begin,
                            int64_t end, const double* x, double inv) {
  int64_t k = begin;
  __m256d acc = _mm256_setzero_pd();
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (; k + 4 <= end; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + k));
    const __m256d xv = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx,
                                                gather_mask, /*scale=*/8);
    const __m256d pv = _mm256_mul_pd(_mm256_loadu_pd(w + k), vinv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pv, xv));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; k < end; ++k) sum += (w[k] * inv) * x[col[k]];
  return sum;
}

#include "graph/walk_kernel_rows.inc"

}  // namespace

const WalkKernelIsa* Avx2WalkKernelIsa() {
  static constexpr WalkKernelIsa isa = {
      "avx2",             &AbsorbingRows,          &AbsorbingRowsFused,
      &AbsorbingRowsNorm, &AbsorbingRowsFusedNorm, &ApplyRows};
  return &isa;
}

}  // namespace internal
}  // namespace longtail

#else  // !LONGTAIL_COMPILE_AVX2

namespace longtail {
namespace internal {

const WalkKernelIsa* Avx2WalkKernelIsa() { return nullptr; }

}  // namespace internal
}  // namespace longtail

#endif  // LONGTAIL_COMPILE_AVX2
