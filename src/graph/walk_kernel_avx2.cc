// The AVX2 flavour of the walk kernel's row passes. This translation unit
// — and only this one — is compiled with -mavx2 (plus -mno-fma and
// -ffp-contract=off, so neither the intrinsic loop's surroundings nor the
// scalar tail get contracted into FMA and every rounding matches the
// generic flavour). CMake defines LONGTAIL_COMPILE_AVX2 for it exactly
// when those flags are available; on other toolchains/targets the TU
// degrades to a stub returning nullptr and runtime dispatch stays on the
// generic path. Whether this code ever *executes* is decided per process
// by the CPUID probe in walk_kernel.cc — the binary itself stays portable.
#include "graph/walk_kernel_isa.h"

#if defined(LONGTAIL_COMPILE_AVX2)

#include <immintrin.h>

namespace longtail {
namespace internal {
namespace {

// AVX2 gather over one CSR row: vgatherdpd on the int32 column indices.
// Lane i accumulates exactly like scalar accumulator a_i of the generic
// flavour, and the reduction uses the same (a0+a1)+(a2+a3) tree, so both
// paths round identically.
inline double RowGather(const double* prob, const NodeId* col, int64_t begin,
                        int64_t end, const double* x) {
  int64_t k = begin;
  __m256d acc = _mm256_setzero_pd();
  // All-lanes mask + zeroed source: same vgatherdpd as the unmasked
  // intrinsic, but avoids its _mm256_undefined_pd() source, which GCC 12
  // flags with a spurious -Wmaybe-uninitialized.
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (; k + 4 <= end; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + k));
    const __m256d xv = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx,
                                                gather_mask, /*scale=*/8);
    const __m256d pv = _mm256_loadu_pd(prob + k);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pv, xv));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; k < end; ++k) sum += prob[k] * x[col[k]];
  return sum;
}

// Normalizing gather ("simple" mode): w[k]·inv is formed per lane before
// the multiply into x — each lane performs the same two individually
// rounded products as scalar accumulator a_i of the generic flavour, and
// the reduction tree is shared, so both paths round identically.
inline double RowGatherNorm(const double* w, const NodeId* col, int64_t begin,
                            int64_t end, const double* x, double inv) {
  int64_t k = begin;
  __m256d acc = _mm256_setzero_pd();
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (; k + 4 <= end; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + k));
    const __m256d xv = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx,
                                                gather_mask, /*scale=*/8);
    const __m256d pv = _mm256_mul_pd(_mm256_loadu_pd(w + k), vinv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pv, xv));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; k < end; ++k) sum += (w[k] * inv) * x[col[k]];
  return sum;
}

// Fused multi-query gather, vectorized across *query lanes*: the strided
// layout puts 4 adjacent lanes of one node in 32 contiguous bytes, so a
// plain vmovupd replaces the hardware gather — one edge load (col + prob)
// feeds 4 lanes. Vector accumulator A_i holds, in lane q, exactly scalar
// accumulator a_i of the generic per-lane loop (same edge partition), the
// reduction is the elementwise (A0+A1)+(A2+A3) tree, and the edge tail
// adds one product per edge in the generic order — so every lane rounds
// identically to a sequential sweep. Lanes past the last multiple of 4
// fall back to the generic-shaped scalar loop.
inline void RowGatherBatch(const double* prob, const NodeId* col,
                           int64_t begin, int64_t end, const double* x,
                           int32_t width, double* out) {
  int32_t q = 0;
  for (; q + 4 <= width; q += 4) {
    const double* xq = x + q;
    int64_t k = begin;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      a0 = _mm256_add_pd(
          a0, _mm256_mul_pd(
                  _mm256_set1_pd(prob[k]),
                  _mm256_loadu_pd(xq + static_cast<int64_t>(col[k]) * width)));
      a1 = _mm256_add_pd(
          a1, _mm256_mul_pd(_mm256_set1_pd(prob[k + 1]),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 1]) * width)));
      a2 = _mm256_add_pd(
          a2, _mm256_mul_pd(_mm256_set1_pd(prob[k + 2]),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 2]) * width)));
      a3 = _mm256_add_pd(
          a3, _mm256_mul_pd(_mm256_set1_pd(prob[k + 3]),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 3]) * width)));
    }
    __m256d sum =
        _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    for (; k < end; ++k) {
      sum = _mm256_add_pd(
          sum, _mm256_mul_pd(
                   _mm256_set1_pd(prob[k]),
                   _mm256_loadu_pd(xq + static_cast<int64_t>(col[k]) * width)));
    }
    _mm256_storeu_pd(out + q, sum);
  }
  // Ragged lane tail: the generic per-lane loop, verbatim shape.
  for (; q < width; ++q) {
    const double* xq = x + q;
    int64_t k = begin;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (; k + 4 <= end; k += 4) {
      a0 += prob[k] * xq[static_cast<int64_t>(col[k]) * width];
      a1 += prob[k + 1] * xq[static_cast<int64_t>(col[k + 1]) * width];
      a2 += prob[k + 2] * xq[static_cast<int64_t>(col[k + 2]) * width];
      a3 += prob[k + 3] * xq[static_cast<int64_t>(col[k + 3]) * width];
    }
    double sum = (a0 + a1) + (a2 + a3);
    for (; k < end; ++k) {
      sum += prob[k] * xq[static_cast<int64_t>(col[k]) * width];
    }
    out[q] = sum;
  }
}

// Normalizing flavour: w[k]·inv is one scalar product (identical rounding
// in every lane), formed once and broadcast.
inline void RowGatherNormBatch(const double* w, const NodeId* col,
                               int64_t begin, int64_t end, const double* x,
                               double inv, int32_t width, double* out) {
  int32_t q = 0;
  for (; q + 4 <= width; q += 4) {
    const double* xq = x + q;
    int64_t k = begin;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      a0 = _mm256_add_pd(
          a0, _mm256_mul_pd(
                  _mm256_set1_pd(w[k] * inv),
                  _mm256_loadu_pd(xq + static_cast<int64_t>(col[k]) * width)));
      a1 = _mm256_add_pd(
          a1, _mm256_mul_pd(_mm256_set1_pd(w[k + 1] * inv),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 1]) * width)));
      a2 = _mm256_add_pd(
          a2, _mm256_mul_pd(_mm256_set1_pd(w[k + 2] * inv),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 2]) * width)));
      a3 = _mm256_add_pd(
          a3, _mm256_mul_pd(_mm256_set1_pd(w[k + 3] * inv),
                            _mm256_loadu_pd(
                                xq + static_cast<int64_t>(col[k + 3]) * width)));
    }
    __m256d sum =
        _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    for (; k < end; ++k) {
      sum = _mm256_add_pd(
          sum, _mm256_mul_pd(
                   _mm256_set1_pd(w[k] * inv),
                   _mm256_loadu_pd(xq + static_cast<int64_t>(col[k]) * width)));
    }
    _mm256_storeu_pd(out + q, sum);
  }
  for (; q < width; ++q) {
    const double* xq = x + q;
    int64_t k = begin;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (; k + 4 <= end; k += 4) {
      a0 += (w[k] * inv) * xq[static_cast<int64_t>(col[k]) * width];
      a1 += (w[k + 1] * inv) * xq[static_cast<int64_t>(col[k + 1]) * width];
      a2 += (w[k + 2] * inv) * xq[static_cast<int64_t>(col[k + 2]) * width];
      a3 += (w[k + 3] * inv) * xq[static_cast<int64_t>(col[k + 3]) * width];
    }
    double sum = (a0 + a1) + (a2 + a3);
    for (; k < end; ++k) {
      sum += (w[k] * inv) * xq[static_cast<int64_t>(col[k]) * width];
    }
    out[q] = sum;
  }
}

#include "graph/walk_kernel_rows.inc"

}  // namespace

const WalkKernelIsa* Avx2WalkKernelIsa() {
  static constexpr WalkKernelIsa isa = {"avx2",
                                        &AbsorbingRows,
                                        &AbsorbingRowsFused,
                                        &AbsorbingRowsNorm,
                                        &AbsorbingRowsFusedNorm,
                                        &ApplyRows,
                                        &AbsorbingRowsBatch,
                                        &AbsorbingRowsFusedBatch,
                                        &AbsorbingRowsNormBatch,
                                        &AbsorbingRowsFusedNormBatch};
  return &isa;
}

}  // namespace internal
}  // namespace longtail

#else  // !LONGTAIL_COMPILE_AVX2

namespace longtail {
namespace internal {

const WalkKernelIsa* Avx2WalkKernelIsa() { return nullptr; }

}  // namespace internal
}  // namespace longtail

#endif  // LONGTAIL_COMPILE_AVX2
