// Deterministic closed-/open-loop request stream for the load harness.
//
// A LoadGenerator turns a seed into the full workload: *which* user each
// request queries (Zipf-ranked popularity, with ranks scattered across the
// user-id space so "hot" is uncorrelated with id order) and *when* open-loop
// requests arrive (Poisson process — i.i.d. exponential gaps). Both streams
// come from one seeded mt19937_64 through fixed arithmetic-only mappings
// (see util/zipf.h), so a (seed, num_users, exponent) triple names one exact
// request sequence: bench_load runs are replayable, and the determinism
// test in tests/load_gen_test.cc pins the contract.
//
// Closed loop vs open loop (the harness runs both):
//  * closed — N clients issue a request, wait for completion, repeat. The
//    offered load self-limits to the service rate; ramping N finds the
//    saturation throughput.
//  * open — requests arrive on a Poisson schedule regardless of completions,
//    the regime where queueing delay and admission-control rejections
//    actually show up. NextArrivalSeconds supplies the schedule.
#ifndef LONGTAIL_SERVING_LOAD_GEN_H_
#define LONGTAIL_SERVING_LOAD_GEN_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "core/types.h"
#include "serving/request_queue.h"
#include "util/zipf.h"

namespace longtail {

struct LoadGenOptions {
  /// Users the workload draws from (ranks map onto [0, num_users)).
  size_t num_users = 1;
  /// Zipf skew; 0.99 is the YCSB default, 0 = uniform traffic.
  double zipf_exponent = 0.99;
  /// Items requested per query.
  int top_k = 10;
  uint64_t seed = 50123;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenOptions& options);

  /// The next request in the stream: a Zipf-ranked user and options.top_k.
  /// Consumes exactly one rng draw, so the user sequence is independent of
  /// whether the caller also draws arrival gaps.
  ServeRequest Next();

  /// Exponential inter-arrival gap for an open-loop schedule at
  /// `rate_per_second` (> 0). Mean 1/rate. Consumes exactly one rng draw.
  double NextArrivalSeconds(double rate_per_second);

  /// The user a popularity rank maps to (rank 0 = hottest). Exposed so
  /// tests and the harness can relate observed per-user counts back to the
  /// intended distribution.
  UserId UserForRank(size_t rank) const;

  const ZipfDistribution& zipf() const { return zipf_; }
  const LoadGenOptions& options() const { return options_; }

 private:
  LoadGenOptions options_;
  ZipfDistribution zipf_;
  std::mt19937_64 rng_;
  /// Seeded Fisher–Yates permutation rank → user id.
  std::vector<UserId> rank_to_user_;
};

}  // namespace longtail

#endif  // LONGTAIL_SERVING_LOAD_GEN_H_
