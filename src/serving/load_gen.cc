#include "serving/load_gen.h"

#include <cmath>

#include "util/logging.h"

namespace longtail {

LoadGenerator::LoadGenerator(const LoadGenOptions& options)
    : options_(options),
      zipf_(options.num_users, options.zipf_exponent),
      rng_(options.seed) {
  // Scatter popularity ranks over the id space with an explicit
  // Fisher–Yates (std::shuffle's draw sequence is implementation-defined,
  // which would break the cross-platform determinism contract). The
  // permutation burns a fixed num_users - 1 draws up front, so request
  // streams stay aligned across builds regardless of shuffle internals.
  rank_to_user_.resize(options_.num_users);
  for (size_t i = 0; i < rank_to_user_.size(); ++i) {
    rank_to_user_[i] = static_cast<UserId>(i);
  }
  for (size_t i = rank_to_user_.size() - 1; i > 0; --i) {
    const size_t j = static_cast<size_t>(rng_() % (i + 1));
    std::swap(rank_to_user_[i], rank_to_user_[j]);
  }
}

ServeRequest LoadGenerator::Next() {
  ServeRequest request;
  request.user = rank_to_user_[zipf_.Sample(rng_)];
  request.top_k = options_.top_k;
  return request;
}

double LoadGenerator::NextArrivalSeconds(double rate_per_second) {
  LT_CHECK(rate_per_second > 0.0);
  // Inverse-CDF exponential; 1 - u keeps the argument strictly positive.
  const double u = UniformDouble(rng_);
  return -std::log(1.0 - u) / rate_per_second;
}

UserId LoadGenerator::UserForRank(size_t rank) const {
  LT_CHECK(rank < rank_to_user_.size());
  return rank_to_user_[rank];
}

}  // namespace longtail
