#include "serving/serving_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "graph/walk_kernel.h"
#include "serving/model_registry.h"
#include "util/serving_pool.h"

namespace longtail {

ServingEngine::ServingEngine(ServingEngineOptions options)
    : options_(options) {
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.max_queue_depth = std::max<size_t>(1, options_.max_queue_depth);
  if (options_.clock != nullptr) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_unique<SteadyTickClock>();
    clock_ = owned_clock_.get();
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  RegisterEngineMetrics();
  if (options_.start_dispatcher) {
    dispatcher_ = std::thread([this] { DispatcherLoop(); });
  }
}

ServingEngine::~ServingEngine() {
  // Callback series capture `this` and per-model entries; drop them before
  // any member starts dying so a concurrent scrape of an *external*
  // registry can never read a half-destroyed engine.
  metrics_->ReleaseCallbacks(this);
  shutdown_.store(true, std::memory_order_release);
  {
    // Pairs with the dispatcher's predicate check: without this empty
    // critical section a store between its check and its sleep could be
    // missed and the join below would hang.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail-fast shutdown: every still-queued request resolves with a typed
  // Status instead of blocking teardown behind unserved traffic.
  for (ModelEntry* entry : SnapshotEntries()) {
    std::vector<PendingRequest> drained = entry->queue.CloseAndDrain();
    queued_.fetch_sub(drained.size(), std::memory_order_relaxed);
    rejected_shutdown_.fetch_add(drained.size(), std::memory_order_release);
    for (PendingRequest& p : drained) {
      UserQueryResult failed;
      failed.status = Status::FailedPrecondition(
          "ServingEngine destroyed before the request was dispatched");
      p.promise.set_value(std::move(failed));
    }
  }
}

// ----------------------------------------------------------------- models

Status ServingEngine::AddEntry(std::string name, const Recommender* model,
                               std::unique_ptr<Recommender> owned) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  if (name.empty()) {
    return Status::InvalidArgument("cannot register a model without a name");
  }
  if (model->dataset() == nullptr) {
    return Status::FailedPrecondition(
        "model '" + name + "' must be fitted (or checkpoint-loaded) before "
        "it can serve");
  }
  auto entry = std::make_unique<ModelEntry>(options_.max_queue_depth);
  entry->name = name;
  entry->model = model;
  entry->owned = std::move(owned);
  ModelEntry* raw = entry.get();
  {
    std::lock_guard<std::mutex> lock(models_mu_);
    auto [it, inserted] = models_.emplace(std::move(name), std::move(entry));
    if (!inserted) {
      return Status::InvalidArgument("model '" + it->first +
                                     "' is already registered");
    }
  }
  // Outside models_mu_: registration takes the registry mutex, and
  // ExportText (registry mutex held) reads queue depths — never nest the
  // two the other way around.
  RegisterEntryMetrics(raw);
  return Status::OK();
}

void ServingEngine::RegisterEngineMetrics() {
  const auto counter = [this](const std::string& name,
                              const std::string& help,
                              const std::atomic<uint64_t>* source,
                              MetricLabels labels = {}) {
    metrics_->RegisterCallbackCounter(
        name, help, labels,
        [source] { return source->load(std::memory_order_relaxed); }, this);
  };
  counter("longtail_engine_requests_submitted_total",
          "Requests submitted to the engine (every Submit call).",
          &submitted_);
  counter("longtail_engine_requests_completed_total",
          "Requests fulfilled by an executed batch.", &completed_);
  counter("longtail_engine_requests_rejected_total",
          "Requests rejected without execution, by reason.",
          &rejected_queue_full_, {{"reason", "queue_full"}});
  counter("longtail_engine_requests_rejected_total",
          "Requests rejected without execution, by reason.",
          &rejected_expired_, {{"reason", "expired"}});
  counter("longtail_engine_requests_rejected_total",
          "Requests rejected without execution, by reason.",
          &rejected_unknown_model_, {{"reason", "unknown_model"}});
  counter("longtail_engine_requests_rejected_total",
          "Requests rejected without execution, by reason.",
          &rejected_shutdown_, {{"reason", "shutdown"}});
  counter("longtail_engine_requests_expired_in_queue_total",
          "Requests whose deadline passed while queued.", &expired_in_queue_);
  counter("longtail_engine_requests_dispatched_total",
          "Requests handed to a model's QueryBatch.", &dispatched_);
  counter("longtail_engine_batches_executed_total",
          "Micro-batches executed.", &batches_executed_);
  counter("longtail_engine_queue_wait_ticks_total",
          "Total ticks dispatched requests spent queued.", &queue_ticks_sum_);
  counter("longtail_engine_backpressure_retries_total",
          "Queue-full admissions retried inside blocking Query/QueryAll.",
          &backpressure_retries_);
  metrics_->RegisterCallbackGauge(
      "longtail_engine_queue_wait_ticks_max",
      "Worst queue wait observed at dispatch, in ticks.", {},
      [this] {
        return static_cast<double>(
            queue_ticks_max_.load(std::memory_order_relaxed));
      },
      this);
  metrics_->RegisterCallbackGauge(
      "longtail_engine_queued_requests",
      "Requests currently waiting across all model queues.", {},
      [this] {
        return static_cast<double>(queued_.load(std::memory_order_relaxed));
      },
      this);
  // Histograms are registry-owned; the engine only observes into them. The
  // bounds are powers of two so the batch-size series tells the same story
  // as EngineStats::batch_size_pow2 (whose [2^i, 2^(i+1)) buckets remain
  // the source of truth for the bench JSON).
  batch_size_hist_ = metrics_->RegisterHistogram(
      "longtail_engine_batch_size", "Executed batch sizes.",
      ExponentialBuckets(1.0, 2.0, 11));
  std::vector<double> wait_bounds{0.0};
  for (double b : ExponentialBuckets(1.0, 2.0, 12)) wait_bounds.push_back(b);
  queue_wait_hist_ = metrics_->RegisterHistogram(
      "longtail_engine_queue_wait_ticks",
      "Per-request queue wait at dispatch, in ticks.",
      std::move(wait_bounds));
  // Fused-sweep visibility: widths observed per dispatched kernel sweep
  // (1, 2, 4, ..., 32 — the kernel cap), plus the process-wide kernel
  // counters, so /metrics can answer both "are batches arriving fused?"
  // and "what is the mean fused width?" (lanes / sweeps).
  fused_width_hist_ = metrics_->RegisterHistogram(
      "longtail_engine_fused_width",
      "Fused group width per dispatched kernel sweep (post-grouping).",
      ExponentialBuckets(1.0, 2.0, 6));
  fused_width_observer_fn_ = [this](int32_t width) {
    fused_width_hist_->Observe(static_cast<double>(width));
  };
  metrics_->RegisterCallbackCounter(
      "longtail_walk_fused_sweeps_total",
      "Fused multi-query kernel sweeps executed (process-wide).", {},
      [] { return GetWalkKernelFusedStats().sweeps; }, this);
  metrics_->RegisterCallbackCounter(
      "longtail_walk_fused_lanes_total",
      "Query lanes carried by fused kernel sweeps (process-wide).", {},
      [] { return GetWalkKernelFusedStats().lanes; }, this);
}

void ServingEngine::RegisterEntryMetrics(ModelEntry* entry) {
  metrics_->RegisterCallbackGauge(
      "longtail_engine_queue_depth",
      "Requests currently queued for one model.",
      {{"model", entry->name}},
      [entry] { return static_cast<double>(entry->queue.depth()); }, this);
  metrics_->RegisterCallbackGauge(
      "longtail_engine_queue_depth_peak",
      "High-water mark of one model's queue depth.",
      {{"model", entry->name}},
      [entry] { return static_cast<double>(entry->queue.peak_depth()); },
      this);
}

Status ServingEngine::AddModel(const Recommender* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  return AddEntry(model->name(), model, nullptr);
}

Status ServingEngine::AddModel(std::string name, const Recommender* model) {
  return AddEntry(std::move(name), model, nullptr);
}

Status ServingEngine::AddOwnedModel(std::unique_ptr<Recommender> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  const Recommender* raw = model.get();
  return AddEntry(raw->name(), raw, std::move(model));
}

Status ServingEngine::AddCheckpoint(const std::string& path,
                                    const Dataset& data) {
  LT_ASSIGN_OR_RETURN(std::unique_ptr<Recommender> model,
                      LoadModelCheckpoint(path, data));
  return AddOwnedModel(std::move(model));
}

bool ServingEngine::HasModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  return models_.count(name) > 0;
}

std::vector<std::string> ServingEngine::ModelNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(models_mu_);
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

std::vector<ServingEngine::ModelEntry*> ServingEngine::SnapshotEntries()
    const {
  std::vector<ModelEntry*> entries;
  std::lock_guard<std::mutex> lock(models_mu_);
  entries.reserve(models_.size());
  for (const auto& [name, entry] : models_) entries.push_back(entry.get());
  return entries;
}

ServingEngine::ModelEntry* ServingEngine::FindEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  auto it = models_.find(name);
  return it != models_.end() ? it->second.get() : nullptr;
}

// ---------------------------------------------------------------- serving

std::future<UserQueryResult> ServingEngine::RejectedFuture(Status status) {
  std::promise<UserQueryResult> promise;
  std::future<UserQueryResult> future = promise.get_future();
  UserQueryResult rejected;
  rejected.status = std::move(status);
  promise.set_value(std::move(rejected));
  return future;
}

std::future<UserQueryResult> ServingEngine::Submit(
    const std::string& model, const ServeRequest& request) {
  // Outcome counters are incremented with release ordering *after* this
  // submitted_ increment; Stats() acquire-loads outcomes first and
  // submitted last, so every snapshot shows a submission for each outcome
  // (see EngineStats).
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_release);
    return RejectedFuture(
        Status::FailedPrecondition("ServingEngine is shutting down"));
  }
  ModelEntry* entry = FindEntry(model);
  if (entry == nullptr) {
    rejected_unknown_model_.fetch_add(1, std::memory_order_release);
    return RejectedFuture(
        Status::NotFound("no model '" + model + "' is registered"));
  }
  const uint64_t now = clock_->NowTicks();
  if (request.deadline_tick != 0 && now > request.deadline_tick) {
    rejected_expired_.fetch_add(1, std::memory_order_release);
    return RejectedFuture(Status::DeadlineExceeded(
        "request deadline (tick " + std::to_string(request.deadline_tick) +
        ") passed before submit (tick " + std::to_string(now) + ")"));
  }
  // Counted *before* the enqueue so a concurrent Pump that takes the
  // request immediately can never decrement past zero; rejected admissions
  // undo the increment below.
  queued_.fetch_add(1, std::memory_order_relaxed);
  std::future<UserQueryResult> future;
  const Status admitted = entry->queue.Enqueue(request, now, &future);
  if (!admitted.ok()) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (admitted.code() == StatusCode::kResourceExhausted) {
      rejected_queue_full_.fetch_add(1, std::memory_order_release);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_release);
    }
    return RejectedFuture(admitted);
  }
  {
    // Pairs with the dispatcher's predicate check (see ~ServingEngine):
    // the increment must not slip between its check and its sleep.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
  }
  dispatch_cv_.notify_one();
  return future;
}

UserQueryResult ServingEngine::Query(const std::string& model,
                                     const ServeRequest& request) {
  std::vector<UserQueryResult> results =
      QueryAll(model, std::span<const ServeRequest>(&request, 1));
  return std::move(results.front());
}

std::vector<UserQueryResult> ServingEngine::QueryAll(
    const std::string& model, std::span<const ServeRequest> requests) {
  std::vector<UserQueryResult> results(requests.size());
  // Futures still waiting on dispatch, in submit order (index, future).
  std::deque<std::pair<size_t, std::future<UserQueryResult>>> inflight;
  const auto settle_front = [&] {
    auto& [idx, future] = inflight.front();
    results[idx] = future.get();
    inflight.pop_front();
  };
  for (size_t i = 0; i < requests.size(); ++i) {
    uint64_t retries = 0;
    for (;;) {
      std::future<UserQueryResult> future = Submit(model, requests[i]);
      if (future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        // Either rejected at submit or already served by a racing
        // dispatcher flush; only queue-full rejections are retryable.
        UserQueryResult ready = future.get();
        if (ready.status.code() != StatusCode::kResourceExhausted) {
          results[i] = std::move(ready);
          break;
        }
        // Backpressure: make room (serve what is queued, settle our
        // oldest) and retry instead of surfacing the rejection — but only
        // within the retry budget. When foreign traffic holds the queue
        // full, unbounded retries are a hot spin that serves nobody;
        // past the budget the caller gets the ResourceExhausted and can
        // shed load itself.
        backpressure_retries_.fetch_add(1, std::memory_order_relaxed);
        ++retries;
        if (options_.query_retry_budget > 0 &&
            retries >= options_.query_retry_budget) {
          results[i] = std::move(ready);
          break;
        }
        if (!dispatcher_running()) Pump(/*force=*/true);
        if (!inflight.empty()) {
          settle_front();
        } else if (dispatcher_running()) {
          // Foreign traffic holds the queue: pause a tick instead of
          // spinning on Submit.
          BackoffOneTick();
        }
        continue;
      }
      inflight.emplace_back(i, std::move(future));
      break;
    }
  }
  if (!dispatcher_running()) PumpUntilIdle();
  while (!inflight.empty()) settle_front();
  return results;
}

void ServingEngine::BackoffOneTick() {
  // Yield until the engine clock advances. The iteration bound keeps a
  // frozen FakeClock from turning the backoff itself into a spin — with
  // the default 1 tick = 1 ms clock the bound is never the exit path.
  const uint64_t start = clock_->NowTicks();
  for (int spin = 0; spin < 1024 && clock_->NowTicks() == start; ++spin) {
    std::this_thread::yield();
  }
}

size_t ServingEngine::Pump(bool force) {
  size_t taken = 0;
  for (ModelEntry* entry : SnapshotEntries()) {
    taken += PumpEntry(entry, force);
  }
  return taken;
}

size_t ServingEngine::PumpUntilIdle() {
  size_t taken = 0;
  while (true) {
    const size_t round = Pump(/*force=*/true);
    if (round == 0) break;
    taken += round;
  }
  return taken;
}

size_t ServingEngine::PumpEntry(ModelEntry* entry, bool force) {
  size_t taken = 0;
  while (true) {
    std::vector<PendingRequest> batch =
        entry->queue.TakeBatch(options_.max_batch_size, clock_->NowTicks(),
                               options_.flush_interval_ticks, force);
    if (batch.empty()) break;
    queued_.fetch_sub(batch.size(), std::memory_order_relaxed);
    taken += batch.size();
    ExecuteBatch(entry, std::move(batch));
  }
  return taken;
}

void ServingEngine::RecordBatchSize(size_t size) {
  const size_t bucket = std::min<size_t>(
      kBatchBuckets - 1, static_cast<size_t>(std::bit_width(size) - 1));
  batch_size_pow2_[bucket].fetch_add(1, std::memory_order_relaxed);
  batch_size_hist_->Observe(static_cast<double>(size));
}

void ServingEngine::ExecuteBatch(ModelEntry* entry,
                                 std::vector<PendingRequest> batch) {
  const uint64_t now = clock_->NowTicks();
  std::vector<UserQuery> queries;
  std::vector<size_t> live;  // indexes into `batch`, aligned with queries
  queries.reserve(batch.size());
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& p = batch[i];
    if (p.request.deadline_tick != 0 && now > p.request.deadline_tick) {
      // Expired while queued: fail without spending walk workers on it.
      expired_in_queue_.fetch_add(1, std::memory_order_release);
      UserQueryResult expired;
      expired.status = Status::DeadlineExceeded(
          "request deadline (tick " +
          std::to_string(p.request.deadline_tick) +
          ") passed in queue (dispatch tick " + std::to_string(now) + ")");
      p.promise.set_value(std::move(expired));
      continue;
    }
    const uint64_t waited = now - p.enqueue_tick;
    queue_ticks_sum_.fetch_add(waited, std::memory_order_relaxed);
    // Lost-update-free max: concurrent Pump/dispatcher batches race their
    // `waited` values here (the shared primitive is the audited CAS loop;
    // a plain load-compare-store would under-report under contention —
    // see metrics_registry_test's hammer).
    AtomicFetchMax(queue_ticks_max_, waited);
    queue_wait_hist_->Observe(static_cast<double>(waited));
    UserQuery q;
    q.user = p.request.user;
    q.top_k = p.request.top_k;
    q.score_items = p.request.score_items;
    queries.push_back(q);
    live.push_back(i);
  }
  dispatched_.fetch_add(queries.size(), std::memory_order_release);
  if (queries.empty()) return;
  batches_executed_.fetch_add(1, std::memory_order_relaxed);
  RecordBatchSize(queries.size());
  BatchOptions batch_options;
  batch_options.num_threads = options_.batch_threads;
  batch_options.pool = options_.pool;
  batch_options.subgraph_cache = options_.subgraph_cache;
  // Same-model batches arrive here intact (queues are per model), so
  // QueryBatch's seed-set grouping sees every fusable pair; the observer
  // records the widths it actually dispatched.
  batch_options.fused_width_observer = &fused_width_observer_fn_;
  std::vector<UserQueryResult> batch_results =
      entry->model->QueryBatch(queries, batch_options);
  // Count before fulfilling: a blocking caller woken by set_value must
  // already see its query in Stats().completed. Release: pairs with the
  // acquire load in Stats() (completed is loaded first, so a snapshot
  // showing this completion also shows its dispatch and submission).
  completed_.fetch_add(batch_results.size(), std::memory_order_release);
  for (size_t j = 0; j < batch_results.size(); ++j) {
    batch[live[j]].promise.set_value(std::move(batch_results[j]));
  }
}

void ServingEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(dispatch_mu_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (queued_.load(std::memory_order_relaxed) == 0) {
      // Idle: block until a submit (or shutdown) wakes us.
      dispatch_cv_.wait(lock, [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      continue;
    }
    lock.unlock();
    const size_t dispatched = Pump(/*force=*/false);
    lock.lock();
    if (dispatched == 0) {
      // Requests are queued but no batch is ready (filling toward
      // max_batch_size, younger than the flush interval): poll at tick
      // granularity — 1 tick = 1 ms on the default clock.
      dispatch_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

EngineStats ServingEngine::Stats() const {
  // Load order is the fix for the over-counted-outcome snapshot (see the
  // EngineStats comment): acquire-load every *outcome* first — completed
  // before dispatched, so completed <= dispatched — and submitted_ LAST.
  // Each outcome was release-incremented after its submission, so the
  // acquire loads here guarantee the later submitted_ read covers every
  // outcome already counted; loading submitted first (the old code) let a
  // snapshot catch an outcome whose submission it had not seen, making
  // completed + rejected > submitted and RejectionRate > 100%.
  EngineStats stats;
  stats.completed = completed_.load(std::memory_order_acquire);
  // Test-only interleaving point: lets a regression test run traffic between
  // the first load and the rest of the snapshot. With submitted_ loaded
  // last, anything that lands here only widens the submitted_ read.
  if (stats_snapshot_hook_for_test_) stats_snapshot_hook_for_test_();
  stats.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_acquire);
  stats.rejected_expired = rejected_expired_.load(std::memory_order_acquire);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_acquire);
  stats.rejected_unknown_model =
      rejected_unknown_model_.load(std::memory_order_acquire);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_acquire);
  stats.dispatched = dispatched_.load(std::memory_order_acquire);
  stats.batches_executed = batches_executed_.load(std::memory_order_relaxed);
  stats.queue_ticks_sum = queue_ticks_sum_.load(std::memory_order_relaxed);
  stats.queue_ticks_max = queue_ticks_max_.load(std::memory_order_relaxed);
  stats.backpressure_retries =
      backpressure_retries_.load(std::memory_order_relaxed);
  stats.batch_size_pow2.resize(kBatchBuckets);
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    stats.batch_size_pow2[i] =
        batch_size_pow2_[i].load(std::memory_order_relaxed);
  }
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace longtail
