#include "serving/serving_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "serving/model_registry.h"
#include "util/serving_pool.h"

namespace longtail {

ServingEngine::ServingEngine(ServingEngineOptions options)
    : options_(options) {
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.max_queue_depth = std::max<size_t>(1, options_.max_queue_depth);
  if (options_.clock != nullptr) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_unique<SteadyTickClock>();
    clock_ = owned_clock_.get();
  }
  if (options_.start_dispatcher) {
    dispatcher_ = std::thread([this] { DispatcherLoop(); });
  }
}

ServingEngine::~ServingEngine() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Pairs with the dispatcher's predicate check: without this empty
    // critical section a store between its check and its sleep could be
    // missed and the join below would hang.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail-fast shutdown: every still-queued request resolves with a typed
  // Status instead of blocking teardown behind unserved traffic.
  for (ModelEntry* entry : SnapshotEntries()) {
    std::vector<PendingRequest> drained = entry->queue.CloseAndDrain();
    queued_.fetch_sub(drained.size(), std::memory_order_relaxed);
    rejected_shutdown_.fetch_add(drained.size(), std::memory_order_relaxed);
    for (PendingRequest& p : drained) {
      UserQueryResult failed;
      failed.status = Status::FailedPrecondition(
          "ServingEngine destroyed before the request was dispatched");
      p.promise.set_value(std::move(failed));
    }
  }
}

// ----------------------------------------------------------------- models

Status ServingEngine::AddEntry(std::string name, const Recommender* model,
                               std::unique_ptr<Recommender> owned) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  if (name.empty()) {
    return Status::InvalidArgument("cannot register a model without a name");
  }
  if (model->dataset() == nullptr) {
    return Status::FailedPrecondition(
        "model '" + name + "' must be fitted (or checkpoint-loaded) before "
        "it can serve");
  }
  auto entry = std::make_unique<ModelEntry>(options_.max_queue_depth);
  entry->name = name;
  entry->model = model;
  entry->owned = std::move(owned);
  std::lock_guard<std::mutex> lock(models_mu_);
  auto [it, inserted] = models_.emplace(std::move(name), std::move(entry));
  if (!inserted) {
    return Status::InvalidArgument("model '" + it->first +
                                   "' is already registered");
  }
  return Status::OK();
}

Status ServingEngine::AddModel(const Recommender* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  return AddEntry(model->name(), model, nullptr);
}

Status ServingEngine::AddModel(std::string name, const Recommender* model) {
  return AddEntry(std::move(name), model, nullptr);
}

Status ServingEngine::AddOwnedModel(std::unique_ptr<Recommender> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model");
  }
  const Recommender* raw = model.get();
  return AddEntry(raw->name(), raw, std::move(model));
}

Status ServingEngine::AddCheckpoint(const std::string& path,
                                    const Dataset& data) {
  LT_ASSIGN_OR_RETURN(std::unique_ptr<Recommender> model,
                      LoadModelCheckpoint(path, data));
  return AddOwnedModel(std::move(model));
}

bool ServingEngine::HasModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  return models_.count(name) > 0;
}

std::vector<std::string> ServingEngine::ModelNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(models_mu_);
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

std::vector<ServingEngine::ModelEntry*> ServingEngine::SnapshotEntries()
    const {
  std::vector<ModelEntry*> entries;
  std::lock_guard<std::mutex> lock(models_mu_);
  entries.reserve(models_.size());
  for (const auto& [name, entry] : models_) entries.push_back(entry.get());
  return entries;
}

ServingEngine::ModelEntry* ServingEngine::FindEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  auto it = models_.find(name);
  return it != models_.end() ? it->second.get() : nullptr;
}

// ---------------------------------------------------------------- serving

std::future<UserQueryResult> ServingEngine::RejectedFuture(Status status) {
  std::promise<UserQueryResult> promise;
  std::future<UserQueryResult> future = promise.get_future();
  UserQueryResult rejected;
  rejected.status = std::move(status);
  promise.set_value(std::move(rejected));
  return future;
}

std::future<UserQueryResult> ServingEngine::Submit(
    const std::string& model, const ServeRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return RejectedFuture(
        Status::FailedPrecondition("ServingEngine is shutting down"));
  }
  ModelEntry* entry = FindEntry(model);
  if (entry == nullptr) {
    rejected_unknown_model_.fetch_add(1, std::memory_order_relaxed);
    return RejectedFuture(
        Status::NotFound("no model '" + model + "' is registered"));
  }
  const uint64_t now = clock_->NowTicks();
  if (request.deadline_tick != 0 && now > request.deadline_tick) {
    rejected_expired_.fetch_add(1, std::memory_order_relaxed);
    return RejectedFuture(Status::DeadlineExceeded(
        "request deadline (tick " + std::to_string(request.deadline_tick) +
        ") passed before submit (tick " + std::to_string(now) + ")"));
  }
  // Counted *before* the enqueue so a concurrent Pump that takes the
  // request immediately can never decrement past zero; rejected admissions
  // undo the increment below.
  queued_.fetch_add(1, std::memory_order_relaxed);
  std::future<UserQueryResult> future;
  const Status admitted = entry->queue.Enqueue(request, now, &future);
  if (!admitted.ok()) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (admitted.code() == StatusCode::kResourceExhausted) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
    return RejectedFuture(admitted);
  }
  {
    // Pairs with the dispatcher's predicate check (see ~ServingEngine):
    // the increment must not slip between its check and its sleep.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
  }
  dispatch_cv_.notify_one();
  return future;
}

UserQueryResult ServingEngine::Query(const std::string& model,
                                     const ServeRequest& request) {
  std::vector<UserQueryResult> results =
      QueryAll(model, std::span<const ServeRequest>(&request, 1));
  return std::move(results.front());
}

std::vector<UserQueryResult> ServingEngine::QueryAll(
    const std::string& model, std::span<const ServeRequest> requests) {
  std::vector<UserQueryResult> results(requests.size());
  // Futures still waiting on dispatch, in submit order (index, future).
  std::deque<std::pair<size_t, std::future<UserQueryResult>>> inflight;
  const auto settle_front = [&] {
    auto& [idx, future] = inflight.front();
    results[idx] = future.get();
    inflight.pop_front();
  };
  for (size_t i = 0; i < requests.size(); ++i) {
    for (;;) {
      std::future<UserQueryResult> future = Submit(model, requests[i]);
      if (future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        // Either rejected at submit or already served by a racing
        // dispatcher flush; only queue-full rejections are retryable.
        UserQueryResult ready = future.get();
        if (ready.status.code() != StatusCode::kResourceExhausted) {
          results[i] = std::move(ready);
          break;
        }
        // Backpressure: make room (serve what is queued, settle our
        // oldest) and retry instead of surfacing the rejection.
        if (!dispatcher_running()) Pump(/*force=*/true);
        if (!inflight.empty()) {
          settle_front();
        } else if (dispatcher_running()) {
          std::this_thread::yield();  // foreign traffic holds the queue
        }
        continue;
      }
      inflight.emplace_back(i, std::move(future));
      break;
    }
  }
  if (!dispatcher_running()) PumpUntilIdle();
  while (!inflight.empty()) settle_front();
  return results;
}

size_t ServingEngine::Pump(bool force) {
  size_t taken = 0;
  for (ModelEntry* entry : SnapshotEntries()) {
    taken += PumpEntry(entry, force);
  }
  return taken;
}

size_t ServingEngine::PumpUntilIdle() {
  size_t taken = 0;
  while (true) {
    const size_t round = Pump(/*force=*/true);
    if (round == 0) break;
    taken += round;
  }
  return taken;
}

size_t ServingEngine::PumpEntry(ModelEntry* entry, bool force) {
  size_t taken = 0;
  while (true) {
    std::vector<PendingRequest> batch =
        entry->queue.TakeBatch(options_.max_batch_size, clock_->NowTicks(),
                               options_.flush_interval_ticks, force);
    if (batch.empty()) break;
    queued_.fetch_sub(batch.size(), std::memory_order_relaxed);
    taken += batch.size();
    ExecuteBatch(entry, std::move(batch));
  }
  return taken;
}

void ServingEngine::RecordBatchSize(size_t size) {
  const size_t bucket = std::min<size_t>(
      kBatchBuckets - 1, static_cast<size_t>(std::bit_width(size) - 1));
  batch_size_pow2_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void ServingEngine::ExecuteBatch(ModelEntry* entry,
                                 std::vector<PendingRequest> batch) {
  const uint64_t now = clock_->NowTicks();
  std::vector<UserQuery> queries;
  std::vector<size_t> live;  // indexes into `batch`, aligned with queries
  queries.reserve(batch.size());
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& p = batch[i];
    if (p.request.deadline_tick != 0 && now > p.request.deadline_tick) {
      // Expired while queued: fail without spending walk workers on it.
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      UserQueryResult expired;
      expired.status = Status::DeadlineExceeded(
          "request deadline (tick " +
          std::to_string(p.request.deadline_tick) +
          ") passed in queue (dispatch tick " + std::to_string(now) + ")");
      p.promise.set_value(std::move(expired));
      continue;
    }
    const uint64_t waited = now - p.enqueue_tick;
    queue_ticks_sum_.fetch_add(waited, std::memory_order_relaxed);
    uint64_t prev_max = queue_ticks_max_.load(std::memory_order_relaxed);
    while (waited > prev_max && !queue_ticks_max_.compare_exchange_weak(
                                    prev_max, waited,
                                    std::memory_order_relaxed)) {
    }
    UserQuery q;
    q.user = p.request.user;
    q.top_k = p.request.top_k;
    q.score_items = p.request.score_items;
    queries.push_back(q);
    live.push_back(i);
  }
  dispatched_.fetch_add(queries.size(), std::memory_order_relaxed);
  if (queries.empty()) return;
  batches_executed_.fetch_add(1, std::memory_order_relaxed);
  RecordBatchSize(queries.size());
  BatchOptions batch_options;
  batch_options.num_threads = options_.batch_threads;
  batch_options.pool = options_.pool;
  batch_options.subgraph_cache = options_.subgraph_cache;
  std::vector<UserQueryResult> batch_results =
      entry->model->QueryBatch(queries, batch_options);
  // Count before fulfilling: a blocking caller woken by set_value must
  // already see its query in Stats().completed.
  completed_.fetch_add(batch_results.size(), std::memory_order_relaxed);
  for (size_t j = 0; j < batch_results.size(); ++j) {
    batch[live[j]].promise.set_value(std::move(batch_results[j]));
  }
}

void ServingEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(dispatch_mu_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (queued_.load(std::memory_order_relaxed) == 0) {
      // Idle: block until a submit (or shutdown) wakes us.
      dispatch_cv_.wait(lock, [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      continue;
    }
    lock.unlock();
    const size_t dispatched = Pump(/*force=*/false);
    lock.lock();
    if (dispatched == 0) {
      // Requests are queued but no batch is ready (filling toward
      // max_batch_size, younger than the flush interval): poll at tick
      // granularity — 1 tick = 1 ms on the default clock.
      dispatch_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  stats.rejected_expired = rejected_expired_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.rejected_unknown_model =
      rejected_unknown_model_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.batches_executed = batches_executed_.load(std::memory_order_relaxed);
  stats.dispatched = dispatched_.load(std::memory_order_relaxed);
  stats.queue_ticks_sum = queue_ticks_sum_.load(std::memory_order_relaxed);
  stats.queue_ticks_max = queue_ticks_max_.load(std::memory_order_relaxed);
  stats.batch_size_pow2.resize(kBatchBuckets);
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    stats.batch_size_pow2[i] =
        batch_size_pow2_[i].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace longtail
