#include "serving/request_queue.h"

#include <algorithm>
#include <utility>

#include "util/metrics.h"

namespace longtail {

RequestQueue::RequestQueue(size_t max_depth)
    : max_depth_(std::max<size_t>(1, max_depth)) {}

Status RequestQueue::Enqueue(const ServeRequest& request, uint64_t now_tick,
                             std::future<UserQueryResult>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition(
        "request queue is closed (engine shutting down)");
  }
  if (pending_.size() >= max_depth_) {
    return Status::ResourceExhausted(
        "request queue is full (" + std::to_string(max_depth_) +
        " requests waiting); shed load or raise max_queue_depth");
  }
  PendingRequest pending;
  pending.request = request;
  pending.enqueue_tick = now_tick;
  *out = pending.promise.get_future();
  pending_.push_back(std::move(pending));
  AtomicFetchMax(peak_depth_, pending_.size());
  return Status::OK();
}

std::vector<PendingRequest> RequestQueue::TakeBatch(size_t max_batch,
                                                    uint64_t now_tick,
                                                    uint64_t flush_after_ticks,
                                                    bool force) {
  max_batch = std::max<size_t>(1, max_batch);
  std::vector<PendingRequest> batch;
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return batch;
  const bool full = pending_.size() >= max_batch;
  const bool aged =
      now_tick >= pending_.front().enqueue_tick + flush_after_ticks;
  if (!full && !aged && !force) return batch;
  const size_t take = std::min(pending_.size(), max_batch);
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

std::vector<PendingRequest> RequestQueue::CloseAndDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  std::vector<PendingRequest> drained;
  drained.reserve(pending_.size());
  while (!pending_.empty()) {
    drained.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return drained;
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::optional<uint64_t> RequestQueue::NextFlushTick(
    uint64_t flush_after_ticks) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return std::nullopt;
  return pending_.front().enqueue_tick + flush_after_ticks;
}

}  // namespace longtail
