// ServingEngine: the single front door for online queries.
//
// Before this subsystem, every caller hand-rolled QueryBatch against a raw
// recommender: no admission control (a traffic spike queued unboundedly
// inside the caller), no cross-caller batching (two clients asking at the
// same instant ran two batches), and concurrent identical cold queries
// raced duplicate subgraph extractions into the SubgraphCache. The engine
// industrializes that serving layer:
//
//  * Callers submit a ServeRequest{user, top_k/score_items, deadline}
//    against a registered model — future-based async (Submit) or blocking
//    sync (Query/QueryAll, which applies backpressure instead of
//    overflowing the queue).
//  * A micro-batcher groups pending requests per model into
//    admission-controlled batches: a queue at max_queue_depth rejects new
//    requests fast with Status::ResourceExhausted; a batch dispatches when
//    it reaches max_batch_size or when its oldest request has waited
//    flush_interval_ticks. Time is abstract ticks from an injectable
//    EngineClock (request_queue.h), so tests drive the policy with a
//    FakeClock and manual Pump() — no sleeps, fully deterministic.
//  * Requests carry optional deadlines; an over-deadline request fails
//    with Status::DeadlineExceeded (at submit or at dispatch) and never
//    occupies walk workers.
//  * Batches execute on the shared ServingPool through the model's
//    QueryBatch, with the engine's SubgraphCache — whose single-flight
//    front door coalesces concurrent identical extractions — so results
//    are bit-identical to a direct QueryBatch call at any thread count
//    (tests/serving_engine_test.cc).
//
// Models are registered borrowed (AddModel) or owned — AddOwnedModel, or
// straight from a checkpoint via AddCheckpoint / the registry helper
// LoadCheckpointDirIntoEngine (model_registry.h), which is how a restarted
// server goes disk → serving without ever fitting.
//
// Threading: Submit/Query/QueryAll/Pump/Stats are thread-safe. With
// start_dispatcher (default) a background thread flushes ready batches;
// with it off the embedder pumps explicitly (deterministic tests, or
// callers that want batching without an extra thread). Destruction stops
// the dispatcher and fails every still-queued request with a typed
// Status — it never blocks on unserved traffic.
#ifndef LONGTAIL_SERVING_SERVING_ENGINE_H_
#define LONGTAIL_SERVING_SERVING_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "serving/request_queue.h"
#include "util/metrics.h"

namespace longtail {

struct ServingEngineOptions {
  /// A model's batch dispatches as soon as this many requests wait.
  size_t max_batch_size = 64;
  /// Admission control: per-model queue depth beyond which Submit fails
  /// fast with ResourceExhausted instead of queueing unboundedly.
  size_t max_queue_depth = 1024;
  /// A non-full batch dispatches once its oldest request has waited this
  /// many ticks (latency bound of micro-batching; 0 = every pump).
  uint64_t flush_interval_ticks = 1;
  /// Worker threads per executed batch (BatchOptions::num_threads):
  /// 0 = hardware concurrency, 1 = the dispatching thread only.
  size_t batch_threads = 0;
  /// Pool batches fan out on; nullptr = ServingPool::Global().
  ServingPool* pool = nullptr;
  /// Shared cache of extracted walk subgraphs (with single-flight
  /// coalescing); nullptr = no caching. May be shared across engines.
  SubgraphCache* subgraph_cache = nullptr;
  /// Tick source; nullptr = an engine-owned SteadyTickClock
  /// (1 tick = 1 ms). Tests inject a FakeClock.
  EngineClock* clock = nullptr;
  /// Spawn the background dispatcher thread. Off = the embedder calls
  /// Pump() (deterministic tests; sync Query/QueryAll pump themselves).
  bool start_dispatcher = true;
  /// Metrics registry the engine exports into (counters, per-model queue
  /// gauges, batch-size and queue-wait histograms — see
  /// docs/OBSERVABILITY.md). nullptr = the engine owns a private registry,
  /// reachable via metrics(). An external registry must outlive the engine;
  /// register at most one engine per registry (the series names carry no
  /// engine label).
  MetricsRegistry* metrics = nullptr;
  /// Blocking Query/QueryAll retry budget under sustained backpressure:
  /// after this many ResourceExhausted admissions for one request, the
  /// rejection is surfaced to the caller instead of retried (the queue is
  /// not draining; spinning harder will not help). 0 = retry forever (the
  /// pre-budget behavior, which can hot-spin when foreign traffic holds the
  /// queue full).
  uint64_t query_retry_budget = 256;
};

/// Cumulative engine counters.
///
/// Snapshot semantics: Stats() is taken while traffic is in flight, without
/// stopping the engine, so a snapshot is not a single instant — but it is
/// *ordered*. Every outcome counter (completed, the rejected_* family,
/// expired_in_queue, dispatched) is incremented with release ordering after
/// the matching submitted_ increment, and Stats() acquire-loads the
/// outcomes first and `submitted` last. Any snapshot therefore satisfies
///   completed + rejected_* + expired_in_queue <= submitted
///   completed <= dispatched <= submitted
/// (requests the snapshot caught mid-flight inflate `submitted` only). A
/// snapshot that loaded each atomic independently could observe the
/// opposite — an outcome without its submission — which is exactly the
/// over-100% RejectionRate bug this ordering fixes.
struct EngineStats {
  uint64_t submitted = 0;           // every Submit call
  uint64_t completed = 0;           // promises fulfilled by an executed batch
  uint64_t rejected_queue_full = 0; // admission control (ResourceExhausted)
  uint64_t rejected_expired = 0;    // dead on arrival (DeadlineExceeded)
  uint64_t expired_in_queue = 0;    // deadline passed while queued
  uint64_t rejected_unknown_model = 0;
  uint64_t rejected_shutdown = 0;   // failed at destruction / after close
  uint64_t batches_executed = 0;
  uint64_t dispatched = 0;          // requests handed to QueryBatch
  uint64_t queue_ticks_sum = 0;     // total ticks spent waiting, dispatched
  uint64_t queue_ticks_max = 0;
  /// Queue-full admissions retried inside blocking Query/QueryAll (each
  /// retry re-submits, so these also inflate submitted + rejected_queue_full).
  uint64_t backpressure_retries = 0;
  /// batch_size_pow2[i] counts executed batches of size in [2^i, 2^(i+1)).
  std::vector<uint64_t> batch_size_pow2;

  double MeanQueueTicks() const {
    return dispatched > 0 ? static_cast<double>(queue_ticks_sum) / dispatched
                          : 0.0;
  }
  /// Rejected (queue-full + expired-on-arrival + unknown-model + shutdown)
  /// over submitted. Clamped to [0, 1] as defense in depth — the snapshot
  /// ordering above already guarantees rejected <= submitted.
  double RejectionRate() const {
    const uint64_t rejected = rejected_queue_full + rejected_expired +
                              rejected_unknown_model + rejected_shutdown;
    if (submitted == 0) return 0.0;
    const double rate = static_cast<double>(rejected) / submitted;
    return rate > 1.0 ? 1.0 : rate;
  }
};

class ServingEngine {
 public:
  explicit ServingEngine(ServingEngineOptions options = {});
  /// Stops the dispatcher and fails every still-queued request with
  /// FailedPrecondition ("engine shutting down"); never blocks on
  /// unserved traffic. Callers still holding futures see them resolve.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // ------------------------------------------------------------- models
  /// Registers a borrowed fitted model under `model->name()` (or an
  /// explicit name). The model must outlive the engine and be safe for
  /// concurrent queries (the Recommender contract). Fails with
  /// InvalidArgument on a duplicate name or null/unfitted model.
  Status AddModel(const Recommender* model);
  Status AddModel(std::string name, const Recommender* model);
  /// Same, but the engine owns the model (the checkpoint path).
  Status AddOwnedModel(std::unique_ptr<Recommender> model);
  /// Cold-start wiring: loads the checkpoint through ModelRegistry
  /// (LoadModelCheckpoint) and registers the result as an owned model.
  /// `data` must outlive the engine.
  Status AddCheckpoint(const std::string& path, const Dataset& data);
  bool HasModel(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> ModelNames() const;

  // ------------------------------------------------------------ serving
  /// Async submit. The returned future always becomes ready: with the
  /// batch result, or immediately with a typed Status — NotFound (unknown
  /// model), ResourceExhausted (queue full), DeadlineExceeded (already
  /// past deadline), FailedPrecondition (shutting down). Any
  /// `request.score_items` storage must outlive the future's resolution.
  std::future<UserQueryResult> Submit(const std::string& model,
                                      const ServeRequest& request);

  /// Blocking single query: Submit + (self-pump when no dispatcher runs)
  /// + wait, with retry-under-backpressure on a full queue. Retries are
  /// bounded by options().query_retry_budget; past the budget the
  /// ResourceExhausted rejection is returned to the caller.
  UserQueryResult Query(const std::string& model,
                        const ServeRequest& request);

  /// Blocking bulk traffic, results aligned with `requests`. Applies
  /// backpressure: at most max_queue_depth requests are in flight at
  /// once, and queue-full rejections are retried after draining instead
  /// of surfacing to the caller — up to query_retry_budget retries per
  /// request, with tick-granularity backoff between attempts when the
  /// queue is held full by foreign traffic (never a hot spin).
  std::vector<UserQueryResult> QueryAll(
      const std::string& model, std::span<const ServeRequest> requests);

  /// Dispatches every model's ready batches at the current tick (force =
  /// ignore readiness and flush everything queued). Returns the number of
  /// requests taken off queues (executed + expired). Thread-safe; the
  /// embedder's pump and the dispatcher may interleave.
  size_t Pump(bool force = false);
  /// Force-pumps until every queue is empty; returns requests dispatched.
  size_t PumpUntilIdle();

  bool dispatcher_running() const { return dispatcher_.joinable(); }
  uint64_t NowTicks() const { return clock_->NowTicks(); }
  const ServingEngineOptions& options() const { return options_; }

  EngineStats Stats() const;

  /// The registry this engine exports into: the caller-supplied one, or the
  /// engine-owned private registry when options.metrics was null. Never
  /// null; ExportText() on it is the scrape surface for a /metrics
  /// endpoint.
  MetricsRegistry* metrics() const { return metrics_; }

  /// Test-only: invoked by Stats() after its first field load, widening the
  /// window between that load and the rest of the snapshot so tests can
  /// deterministically interleave concurrent traffic mid-snapshot (the
  /// over-counted-outcome regression needs exactly that interleaving, which
  /// scheduler preemption alone almost never produces on one core). Set
  /// before any concurrent Stats() caller exists; empty by default and
  /// never used in production.
  void set_stats_snapshot_hook_for_test(std::function<void()> hook) {
    stats_snapshot_hook_for_test_ = std::move(hook);
  }

 private:
  struct ModelEntry {
    std::string name;
    const Recommender* model = nullptr;
    std::unique_ptr<Recommender> owned;
    RequestQueue queue;
    explicit ModelEntry(size_t max_depth) : queue(max_depth) {}
  };

  Status AddEntry(std::string name, const Recommender* model,
                  std::unique_ptr<Recommender> owned);
  /// Stable entry pointers (entries are never removed before destruction).
  std::vector<ModelEntry*> SnapshotEntries() const;
  ModelEntry* FindEntry(const std::string& name) const;
  /// Immediately-ready future carrying a rejection.
  static std::future<UserQueryResult> RejectedFuture(Status status);
  /// Takes ready batches off one entry; returns requests taken.
  size_t PumpEntry(ModelEntry* entry, bool force);
  /// Runs one batch through the model, failing expired requests and
  /// fulfilling the rest.
  void ExecuteBatch(ModelEntry* entry, std::vector<PendingRequest> batch);
  void DispatcherLoop();
  void RecordBatchSize(size_t size);
  /// Registers the engine-level callback series and owned histograms.
  void RegisterEngineMetrics();
  /// Registers the per-model queue gauges for a just-added entry.
  void RegisterEntryMetrics(ModelEntry* entry);
  /// Backpressure pause between Query retries: yields until the engine
  /// clock advances one tick, bounded so a frozen test clock cannot spin.
  void BackoffOneTick();

  ServingEngineOptions options_;
  /// See set_stats_snapshot_hook_for_test().
  std::function<void()> stats_snapshot_hook_for_test_;
  std::unique_ptr<EngineClock> owned_clock_;
  EngineClock* clock_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  /// Owned by the registry; observed on the dispatch path.
  Histogram* batch_size_hist_ = nullptr;
  Histogram* queue_wait_hist_ = nullptr;
  /// Post-grouping fused sweep widths (longtail_engine_fused_width):
  /// batch_size_hist_ counts requests per micro-batch, this counts query
  /// lanes per fused kernel sweep after QueryBatch groups by seed set —
  /// the pair separates queue tuning from fusion efficiency.
  Histogram* fused_width_hist_ = nullptr;
  /// Bound once at construction and handed to every QueryBatch via
  /// BatchOptions::fused_width_observer (pool workers call it
  /// concurrently; Histogram::Observe is lock-free).
  std::function<void(int32_t)> fused_width_observer_fn_;

  mutable std::mutex models_mu_;
  std::map<std::string, std::unique_ptr<ModelEntry>> models_;

  std::atomic<bool> shutdown_{false};
  /// Requests sitting in queues across all models (dispatcher wake hint).
  std::atomic<size_t> queued_{0};
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::thread dispatcher_;

  // Stats counters.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_expired_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> rejected_unknown_model_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> batches_executed_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> queue_ticks_sum_{0};
  std::atomic<uint64_t> queue_ticks_max_{0};
  std::atomic<uint64_t> backpressure_retries_{0};
  static constexpr size_t kBatchBuckets = 17;  // 2^16 > any sane batch
  std::array<std::atomic<uint64_t>, kBatchBuckets> batch_size_pow2_{};
};

}  // namespace longtail

#endif  // LONGTAIL_SERVING_SERVING_ENGINE_H_
