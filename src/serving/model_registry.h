// Registry-driven model checkpointing: reconstructing a fitted recommender
// by name from a checkpoint file, without refitting.
//
// Fitting is the dominant offline cost (paper Table 5: LDA Gibbs and the
// SVD factorization dwarf any single query), yet a serving process dies
// with its fitted models. The checkpoint entry points here give a server a
// cold-start path measured in file IO instead of training time:
//
//   // offline, once:
//   SaveModelCheckpoint(*fitted, "ac2.ckpt");
//   // after any restart:
//   auto rec = LoadModelCheckpoint("ac2.ckpt", train);   // no Fit
//
// A checkpoint file is the chunked container of data/serialization.h: the
// magic, a header chunk (algorithm name + fitted dataset shape), the
// model's own chunks (Recommender::SaveModel), and the end marker.
// LoadModelCheckpoint reads the header, asks ModelRegistry::Global() to
// construct the named algorithm, and hands the remaining chunks to
// Recommender::LoadModel — the loaded instance answers every query
// bit-identically to the one that was saved (tests/checkpoint_test.cc).
#ifndef LONGTAIL_SERVING_MODEL_REGISTRY_H_
#define LONGTAIL_SERVING_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/recommender.h"

namespace longtail {

/// Maps algorithm names (the exact strings Recommender::name() reports) to
/// factories producing unfitted instances ready for LoadModel. Thread-safe.
class ModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Recommender>()>;

  /// The process-wide registry, pre-populated with the eleven built-in
  /// algorithms: HT, AT, AC1, AC2, DPPR, PPR, PureSVD, LDA, ItemKNN, Katz
  /// and MostPopular.
  static ModelRegistry& Global();

  /// Registers (or replaces) the factory for `name`.
  void Register(const std::string& name, Factory factory);

  /// Constructs an unfitted instance of the named algorithm.
  Result<std::unique_ptr<Recommender>> Create(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> RegisteredNames() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Writes `rec`'s fitted model to `path` as a checkpoint file (container
/// magic, header chunk, model chunks, end marker). Fails if the
/// recommender is unfitted or does not implement SaveModel.
Status SaveModelCheckpoint(const Recommender& rec, const std::string& path);

/// Restores a checkpoint into `rec`, which must be unfitted and report the
/// same name() the checkpoint header records. `data` must have the exact
/// shape (users/items/ratings) of the dataset the model was fitted on and
/// must outlive the recommender.
Status LoadModelCheckpointInto(const std::string& path, const Dataset& data,
                               Recommender* rec);

/// Cold-start serving: reads the header, constructs the named algorithm
/// through ModelRegistry::Global(), and loads the model into it — Fit
/// never runs.
Result<std::unique_ptr<Recommender>> LoadModelCheckpoint(
    const std::string& path, const Dataset& data);

/// Reads just the algorithm name from a checkpoint header (inspection /
/// routing without loading the model).
Result<std::string> ReadCheckpointAlgorithm(const std::string& path);

class ServingEngine;

/// Cold-starts a whole serving fleet: loads every `*.ckpt` file under
/// `dir` through the registry and registers each loaded model into
/// `engine` (owned), so a restarted server goes disk → serving without a
/// single Fit. Files that fail to load (corrupt, wrong dataset, unknown
/// algorithm) are skipped with a warning — one bad checkpoint must not
/// keep the rest of the fleet down. Returns the registered model names,
/// sorted; fails only when `dir` cannot be read at all.
Result<std::vector<std::string>> LoadCheckpointDirIntoEngine(
    const std::string& dir, const Dataset& data, ServingEngine* engine);

}  // namespace longtail

#endif  // LONGTAIL_SERVING_MODEL_REGISTRY_H_
