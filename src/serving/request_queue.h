// Admission-controlled request queue + the tick clock it batches against:
// the waiting room of the ServingEngine (serving/serving_engine.h).
//
// One RequestQueue holds the pending requests of one registered model.
// Admission is bounded — Enqueue fails fast with a typed
// Status::ResourceExhausted once `max_depth` requests wait, instead of
// queueing unboundedly — and batch formation is explicit: TakeBatch hands
// back up to `max_batch` requests when the batch is *ready* (full, aged
// past the flush interval, or forced), leaving the rest queued.
//
// Time is abstract "ticks" read from an EngineClock so micro-batching
// policy is testable deterministically: production uses SteadyTickClock
// (1 tick = 1 ms of steady_clock); tests inject a FakeClock and advance it
// by hand (no sleeps, no flaky timing). Deadlines and queue-latency stats
// are all expressed in ticks of whichever clock the engine was given.
#ifndef LONGTAIL_SERVING_REQUEST_QUEUE_H_
#define LONGTAIL_SERVING_REQUEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/recommender.h"

namespace longtail {

/// Monotonic tick source for the serving engine. Implementations must be
/// thread-safe; ticks never decrease.
class EngineClock {
 public:
  virtual ~EngineClock() = default;
  virtual uint64_t NowTicks() = 0;
};

/// Production clock: 1 tick = 1 millisecond of std::chrono::steady_clock,
/// counted from construction.
class SteadyTickClock : public EngineClock {
 public:
  SteadyTickClock() : start_(std::chrono::steady_clock::now()) {}
  uint64_t NowTicks() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  const std::chrono::steady_clock::time_point start_;
};

/// Test clock: time moves only when the test says so.
class FakeClock : public EngineClock {
 public:
  explicit FakeClock(uint64_t start = 0) : ticks_(start) {}
  uint64_t NowTicks() override {
    return ticks_.load(std::memory_order_acquire);
  }
  void Advance(uint64_t ticks) {
    ticks_.fetch_add(ticks, std::memory_order_acq_rel);
  }
  void Set(uint64_t ticks) { ticks_.store(ticks, std::memory_order_release); }

 private:
  std::atomic<uint64_t> ticks_;
};

/// One caller request against a registered model: top-k recommendations,
/// scores for an explicit candidate list, or both (the same two halves as
/// UserQuery, served from one walk by the graph recommenders).
struct ServeRequest {
  UserId user = 0;
  /// > 0 → fill UserQueryResult::top_k with up to this many items.
  int top_k = 0;
  /// Non-empty → fill UserQueryResult::scores, aligned with this span. The
  /// referenced storage must stay alive until the request's future
  /// resolves.
  std::span<const ItemId> score_items;
  /// Last tick (engine clock) at which the request may still be
  /// dispatched; 0 = no deadline. A request past its deadline fails with
  /// Status::DeadlineExceeded — at submit if already expired, at dispatch
  /// if it expired while queued — and never runs.
  uint64_t deadline_tick = 0;
};

/// A queued request: the caller holds the future, the queue holds the
/// promise until dispatch (or rejection at shutdown).
struct PendingRequest {
  ServeRequest request;
  uint64_t enqueue_tick = 0;
  std::promise<UserQueryResult> promise;
};

/// Bounded MPMC waiting room for one model. Thread-safe; all policy
/// parameters are supplied per call by the engine so a queue stores
/// nothing but requests.
class RequestQueue {
 public:
  explicit RequestQueue(size_t max_depth);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admits `request`, recording `now_tick` for age/latency accounting,
  /// and hands the matching future to `*out`. Fails fast with
  /// ResourceExhausted when `max_depth` requests already wait and with
  /// FailedPrecondition after Close() — in both cases nothing is queued
  /// and `*out` is untouched.
  Status Enqueue(const ServeRequest& request, uint64_t now_tick,
                 std::future<UserQueryResult>* out);

  /// Takes the next batch when one is ready, oldest first:
  ///  * `depth >= max_batch`  → a full batch of exactly `max_batch`;
  ///  * else, when forced or the oldest pending request has waited at
  ///    least `flush_after_ticks` → everything queued (<= max_batch);
  ///  * otherwise → empty (the batch keeps filling).
  std::vector<PendingRequest> TakeBatch(size_t max_batch, uint64_t now_tick,
                                        uint64_t flush_after_ticks,
                                        bool force);

  /// Rejects all future Enqueues (shutdown) and returns everything still
  /// queued so the caller can fail the promises.
  std::vector<PendingRequest> CloseAndDrain();

  size_t depth() const;

  /// High-water mark of depth() since construction (atomic fetch-max; never
  /// resets). The metrics plane exports it per model next to the live depth
  /// gauge, so a scrape after a burst still shows how deep the queue got.
  size_t peak_depth() const {
    return static_cast<size_t>(peak_depth_.load(std::memory_order_relaxed));
  }

  /// The tick at which the currently-oldest request becomes flushable
  /// (enqueue + flush_after); nullopt when empty. Lets a dispatcher sleep
  /// precisely instead of polling blind.
  std::optional<uint64_t> NextFlushTick(uint64_t flush_after_ticks) const;

 private:
  const size_t max_depth_;
  mutable std::mutex mu_;
  std::deque<PendingRequest> pending_;
  std::atomic<uint64_t> peak_depth_{0};
  bool closed_ = false;
};

}  // namespace longtail

#endif  // LONGTAIL_SERVING_REQUEST_QUEUE_H_
