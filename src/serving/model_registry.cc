#include "serving/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "baselines/item_knn.h"
#include "baselines/katz.h"
#include "baselines/lda_recommender.h"
#include "baselines/pagerank.h"
#include "baselines/popularity.h"
#include "baselines/pure_svd.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/serialization.h"
#include "serving/serving_engine.h"
#include "util/logging.h"

namespace longtail {

namespace {

/// Parsed kChunkModelHeader payload.
struct CheckpointHeader {
  std::string algorithm;
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_ratings = 0;
};

/// Reads and validates the header chunk, which must be the first chunk of
/// every checkpoint file.
Result<CheckpointHeader> ReadHeader(CheckpointReader* reader) {
  ChunkReader chunk;
  LT_ASSIGN_OR_RETURN(const bool more, reader->Next(&chunk));
  if (!more || chunk.tag() != kChunkModelHeader) {
    return Status::IOError("checkpoint does not start with a model header: " +
                           reader->path());
  }
  if (chunk.version() > kCheckpointChunkVersion) {
    return Status::IOError("unsupported model header version in " +
                           reader->path());
  }
  CheckpointHeader header;
  LT_RETURN_IF_ERROR(chunk.String(&header.algorithm, /*max_len=*/1 << 10));
  LT_RETURN_IF_ERROR(chunk.Scalar(&header.num_users));
  LT_RETURN_IF_ERROR(chunk.Scalar(&header.num_items));
  LT_RETURN_IF_ERROR(chunk.Scalar(&header.num_ratings));
  if (header.algorithm.empty()) {
    return Status::IOError("empty algorithm name in checkpoint header: " +
                           reader->path());
  }
  return header;
}

/// Shared tail of the load paths: validates a parsed header against the
/// target recommender + dataset, then hands the rest of the stream to
/// LoadModel.
Status ValidateHeaderAndLoad(CheckpointReader& reader,
                             const CheckpointHeader& header,
                             const Dataset& data, Recommender* rec) {
  if (header.algorithm != rec->name()) {
    return Status::InvalidArgument(
        "checkpoint holds a \"" + header.algorithm + "\" model, not \"" +
        rec->name() + "\": " + reader.path());
  }
  if (header.num_users != data.num_users() ||
      header.num_items != data.num_items() ||
      header.num_ratings != data.num_ratings()) {
    return Status::InvalidArgument(
        "checkpoint was fitted on a dataset of different shape: " +
        reader.path());
  }
  return rec->LoadModel(reader, data);
}

}  // namespace

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    r->Register("HT", [] {
      return std::make_unique<HittingTimeRecommender>();
    });
    r->Register("AT", [] {
      return std::make_unique<AbsorbingTimeRecommender>();
    });
    r->Register("AC1", [] {
      return std::make_unique<AbsorbingCostRecommender>(
          EntropySource::kItemBased);
    });
    r->Register("AC2", [] {
      return std::make_unique<AbsorbingCostRecommender>(
          EntropySource::kTopicBased);
    });
    r->Register("PPR", [] {
      return std::make_unique<PageRankRecommender>(/*discounted=*/false);
    });
    r->Register("DPPR", [] {
      return std::make_unique<PageRankRecommender>(/*discounted=*/true);
    });
    r->Register("PureSVD", [] {
      return std::make_unique<PureSvdRecommender>();
    });
    r->Register("LDA", [] { return std::make_unique<LdaRecommender>(); });
    r->Register("ItemKNN", [] {
      return std::make_unique<ItemKnnRecommender>();
    });
    r->Register("Katz", [] { return std::make_unique<KatzRecommender>(); });
    r->Register("MostPopular", [] {
      return std::make_unique<PopularityRecommender>();
    });
    return r;
  }();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Recommender>> ModelRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("no recommender registered under \"" + name +
                              "\"");
    }
    factory = it->second;
  }
  std::unique_ptr<Recommender> rec = factory();
  if (rec == nullptr) {
    return Status::Internal("factory for \"" + name + "\" returned null");
  }
  return rec;
}

std::vector<std::string> ModelRegistry::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iterates sorted.
}

Status SaveModelCheckpoint(const Recommender& rec, const std::string& path) {
  const Dataset* data = rec.dataset();
  if (data == nullptr) {
    return Status::FailedPrecondition(
        "cannot checkpoint an unfitted recommender (" + rec.name() + ")");
  }
  // Write-to-temp + rename: a crash or disk-full mid-save must never
  // clobber an existing good checkpoint at `path` with a truncated file.
  const std::string tmp_path = path + ".tmp";
  Status written = [&]() -> Status {
    CheckpointWriter writer(tmp_path);
    if (!writer.ok()) {
      return Status::IOError("cannot open for writing: " + tmp_path);
    }
    ChunkWriter header;
    header.String(rec.name());
    header.Scalar<int32_t>(data->num_users());
    header.Scalar<int32_t>(data->num_items());
    header.Scalar<int64_t>(data->num_ratings());
    LT_RETURN_IF_ERROR(writer.WriteChunk(kChunkModelHeader,
                                         kCheckpointChunkVersion, header));
    LT_RETURN_IF_ERROR(rec.SaveModel(writer));
    return writer.Finish();
  }();
  if (!written.ok()) {
    std::remove(tmp_path.c_str());
    return written;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Status LoadModelCheckpointInto(const std::string& path, const Dataset& data,
                               Recommender* rec) {
  CheckpointReader reader(path);
  LT_RETURN_IF_ERROR(reader.status());
  LT_ASSIGN_OR_RETURN(const CheckpointHeader header, ReadHeader(&reader));
  return ValidateHeaderAndLoad(reader, header, data, rec);
}

Result<std::unique_ptr<Recommender>> LoadModelCheckpoint(
    const std::string& path, const Dataset& data) {
  // One open, one header parse: the header names the algorithm and the
  // same reader then continues into the model chunks.
  CheckpointReader reader(path);
  LT_RETURN_IF_ERROR(reader.status());
  LT_ASSIGN_OR_RETURN(const CheckpointHeader header, ReadHeader(&reader));
  LT_ASSIGN_OR_RETURN(std::unique_ptr<Recommender> rec,
                      ModelRegistry::Global().Create(header.algorithm));
  LT_RETURN_IF_ERROR(ValidateHeaderAndLoad(reader, header, data, rec.get()));
  return rec;
}

Result<std::string> ReadCheckpointAlgorithm(const std::string& path) {
  CheckpointReader reader(path);
  LT_RETURN_IF_ERROR(reader.status());
  LT_ASSIGN_OR_RETURN(const CheckpointHeader header, ReadHeader(&reader));
  return header.algorithm;
}

Result<std::vector<std::string>> LoadCheckpointDirIntoEngine(
    const std::string& dir, const Dataset& data, ServingEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read checkpoint directory '" + dir +
                           "': " + ec.message());
  }
  // Deterministic registration order regardless of directory enumeration.
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".ckpt") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> loaded;
  for (const std::string& path : paths) {
    auto model = LoadModelCheckpoint(path, data);
    if (!model.ok()) {
      LT_LOG(WARN) << "skipping checkpoint " << path << ": "
                   << model.status().ToString();
      continue;
    }
    const std::string name = (*model)->name();
    const Status added = engine->AddOwnedModel(std::move(model).value());
    if (!added.ok()) {
      LT_LOG(WARN) << "skipping checkpoint " << path << ": "
                   << added.ToString();
      continue;
    }
    loaded.push_back(name);
  }
  std::sort(loaded.begin(), loaded.end());
  return loaded;
}

}  // namespace longtail
