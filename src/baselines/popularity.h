// Most-popular baseline: scores every item by its rating count.
//
// Not evaluated in the paper's tables but referenced throughout (§1–2) as
// what classic CF degenerates to; useful as a floor for long-tail metrics.
#ifndef LONGTAIL_BASELINES_POPULARITY_H_
#define LONGTAIL_BASELINES_POPULARITY_H_

#include "core/recommender.h"

namespace longtail {

/// Recommends globally popular items the user has not rated.
class PopularityRecommender : public Recommender {
 public:
  std::string name() const override { return "MostPopular"; }
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: all serving state is the dataset itself, so the model
  /// body is empty — the checkpoint exists so the registry can cold-start
  /// this algorithm uniformly with the rest of the suite.
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_POPULARITY_H_
