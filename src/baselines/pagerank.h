// Personalized PageRank (PPR) and the paper's Discounted PPR baseline.
//
// PPR (Haveliwala 2002): π = (1-λ) e + λ Pᵀ π with restart distribution e
// concentrated on the query user (or, optionally, spread over the user's
// rated items). PPR blends similarity with popularity and therefore
// recommends head items; DPPR (Eq. 15) divides each item's PPR value by its
// popularity to re-expose the tail:
//     DPPR(i|S) = PPR(i|S) / Popularity(i).
#ifndef LONGTAIL_BASELINES_PAGERANK_H_
#define LONGTAIL_BASELINES_PAGERANK_H_

#include <vector>

#include "core/recommender.h"
#include "graph/bipartite_graph.h"
#include "graph/walk_kernel.h"

namespace longtail {

struct PageRankOptions {
  /// λ, the walk-continuation probability (paper's "dumping factor" 0.5).
  double damping = 0.5;
  /// Stop when the L1 change of π drops below this.
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// Restart at the user's rated items instead of the user node (ablation).
  bool restart_at_items = false;
  /// Edge weight = rating (true) vs unweighted (false).
  bool weighted_edges = true;
};

/// Personalized PageRank recommender; `discounted` selects DPPR.
class PageRankRecommender : public Recommender {
 public:
  explicit PageRankRecommender(bool discounted,
                               PageRankOptions options = {})
      : discounted_(discounted), options_(options) {}

  std::string name() const override { return discounted_ ? "DPPR" : "PPR"; }
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: persists the fitted graph + iteration parameters. The
  /// discounted/plain flag is part of the model's identity and must match
  /// on load (PPR and DPPR register separately in the ModelRegistry).
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  /// The converged PPR vector for a user (one entry per graph node).
  Result<std::vector<double>> ComputePpr(UserId user) const;

 private:
  double ItemScore(const std::vector<double>& ppr, ItemId item) const;

  bool discounted_;
  PageRankOptions options_;
  BipartiteGraph graph_;
  /// Immutable column-stochastic walk plan over `graph_`, built exactly
  /// once at Fit/LoadModel — the same plan/scratch split the serving path
  /// uses for cached subgraphs, applied to the fit-time global graph. The
  /// plan points into `graph_` (which is why this class stays
  /// non-copyable); any number of kernels could adopt it concurrently.
  std::shared_ptr<const WalkPlan> plan_;
  /// Per-object sweep scratch bound to `plan_`: each power iteration is
  /// one kernel Apply (π ← (1-λ)e + λPᵀπ as a blocked gather) instead of
  /// the old edge-by-edge scatter.
  WalkKernel kernel_;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_PAGERANK_H_
