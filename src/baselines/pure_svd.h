// PureSVD (Cremonesi, Koren & Turrin, RecSys 2010) — the strongest
// matrix-factorization baseline in the paper's comparison (§5.1.1).
//
// The rating matrix R (missing entries as zero) is factorized
// R ≈ U Σ Qᵀ by truncated SVD; the score of item i for user u is
// r_u · Q q_iᵀ, i.e. the user's rating row projected into the item factor
// space. We compute the factorization with the from-scratch randomized SVD
// in linalg/svd.h.
#ifndef LONGTAIL_BASELINES_PURE_SVD_H_
#define LONGTAIL_BASELINES_PURE_SVD_H_

#include "core/recommender.h"
#include "linalg/dense.h"
#include "linalg/svd.h"

namespace longtail {

struct PureSvdOptions {
  /// Number of latent factors f (paper-era sweet spot: tens).
  int num_factors = 50;
  SvdOptions svd;
};

/// PureSVD top-N recommender.
class PureSvdRecommender : public Recommender {
 public:
  explicit PureSvdRecommender(PureSvdOptions options = {})
      : options_(options) {}

  std::string name() const override { return "PureSVD"; }
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: persists the item factor matrix (the SVD itself is the
  /// expensive part; user embeddings fold in at query time).
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  /// Item factor matrix Q (num_items × f).
  const DenseMatrix& item_factors() const { return item_factors_; }

 private:
  /// e_u = r_u · Q, the user's f-dimensional embedding (folding-in).
  std::vector<double> UserEmbedding(UserId user) const;

  PureSvdOptions options_;
  DenseMatrix item_factors_;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_PURE_SVD_H_
