#include "baselines/popularity.h"

#include "data/serialization.h"

namespace longtail {

Status PopularityRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  data_ = &data;
  return Status::OK();
}

Status PopularityRecommender::SaveModel(CheckpointWriter& writer) const {
  (void)writer;
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  return Status::OK();  // No model state beyond the dataset.
}

Status PopularityRecommender::LoadModel(CheckpointReader& reader,
                                        const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Drain the chunk stream (verifying checksums; all tags are skippable
  // for this model) so the end marker is still enforced.
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
  }
  data_ = &data;
  return Status::OK();
}

Result<std::vector<ScoredItem>> PopularityRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    candidates.push_back({i, static_cast<double>(data_->ItemPopularity(i))});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> PopularityRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = static_cast<double>(data_->ItemPopularity(items[k]));
  }
  return scores;
}

}  // namespace longtail
