#include "baselines/item_knn.h"

#include <cmath>
#include <unordered_map>

namespace longtail {

Status ItemKnnRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.num_neighbors < 1) {
    return Status::InvalidArgument("num_neighbors must be >= 1");
  }
  data_ = &data;
  const int32_t num_items = data.num_items();

  // Item vector norms.
  std::vector<double> norm(num_items, 0.0);
  for (ItemId i = 0; i < num_items; ++i) {
    for (float v : data.ItemValues(i)) norm[i] += static_cast<double>(v) * v;
    norm[i] = std::sqrt(norm[i]);
  }

  // Co-rating dot products accumulated per item via its raters' lists.
  neighbors_.assign(num_items, {});
  std::unordered_map<ItemId, double> dot;
  for (ItemId i = 0; i < num_items; ++i) {
    dot.clear();
    const auto users = data.ItemUsers(i);
    const auto values = data.ItemValues(i);
    for (size_t k = 0; k < users.size(); ++k) {
      const UserId u = users[k];
      if (data.UserDegree(u) > options_.max_user_degree) continue;
      const double wui = values[k];
      const auto user_items = data.UserItems(u);
      const auto user_values = data.UserValues(u);
      for (size_t j = 0; j < user_items.size(); ++j) {
        const ItemId other = user_items[j];
        if (other == i) continue;
        dot[other] += wui * static_cast<double>(user_values[j]);
      }
    }
    std::vector<ScoredItem> sims;
    sims.reserve(dot.size());
    for (const auto& [other, d] : dot) {
      const double denom = norm[i] * norm[other];
      if (denom <= 0.0) continue;
      sims.push_back({other, d / denom});
    }
    neighbors_[i] = TopKScoredItems(std::move(sims), options_.num_neighbors);
  }
  return Status::OK();
}

std::vector<double> ItemKnnRecommender::AccumulateScores(UserId user) const {
  std::vector<double> acc(data_->num_items(), 0.0);
  const auto items = data_->UserItems(user);
  const auto values = data_->UserValues(user);
  for (size_t k = 0; k < items.size(); ++k) {
    const double w = values[k];
    for (const ScoredItem& nbr : neighbors_[items[k]]) {
      acc[nbr.item] += nbr.score * w;
    }
  }
  return acc;
}

Result<std::vector<ScoredItem>> ItemKnnRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> acc = AccumulateScores(user);
  std::vector<ScoredItem> candidates;
  candidates.reserve(acc.size());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (acc[i] <= 0.0 || data_->HasRating(user, i)) continue;
    candidates.push_back({i, acc[i]});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> ItemKnnRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> acc = AccumulateScores(user);
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = acc[items[k]];
  }
  return scores;
}

}  // namespace longtail
