#include "baselines/item_knn.h"

#include <cmath>
#include <unordered_map>

#include "data/serialization.h"

namespace longtail {

Status ItemKnnRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.num_neighbors < 1) {
    return Status::InvalidArgument("num_neighbors must be >= 1");
  }
  data_ = &data;
  const int32_t num_items = data.num_items();

  // Item vector norms.
  std::vector<double> norm(num_items, 0.0);
  for (ItemId i = 0; i < num_items; ++i) {
    for (float v : data.ItemValues(i)) norm[i] += static_cast<double>(v) * v;
    norm[i] = std::sqrt(norm[i]);
  }

  // Co-rating dot products accumulated per item via its raters' lists.
  neighbors_.assign(num_items, {});
  std::unordered_map<ItemId, double> dot;
  for (ItemId i = 0; i < num_items; ++i) {
    dot.clear();
    const auto users = data.ItemUsers(i);
    const auto values = data.ItemValues(i);
    for (size_t k = 0; k < users.size(); ++k) {
      const UserId u = users[k];
      if (data.UserDegree(u) > options_.max_user_degree) continue;
      const double wui = values[k];
      const auto user_items = data.UserItems(u);
      const auto user_values = data.UserValues(u);
      for (size_t j = 0; j < user_items.size(); ++j) {
        const ItemId other = user_items[j];
        if (other == i) continue;
        dot[other] += wui * static_cast<double>(user_values[j]);
      }
    }
    std::vector<ScoredItem> sims;
    sims.reserve(dot.size());
    for (const auto& [other, d] : dot) {
      const double denom = norm[i] * norm[other];
      if (denom <= 0.0) continue;
      sims.push_back({other, d / denom});
    }
    neighbors_[i] = TopKScoredItems(std::move(sims), options_.num_neighbors);
  }
  return Status::OK();
}

Status ItemKnnRecommender::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  // Neighbour lists flattened into parallel arrays (ScoredItem has interior
  // padding; raw struct dumps would serialize indeterminate bytes).
  std::vector<int32_t> counts;
  std::vector<int32_t> items;
  std::vector<double> scores;
  counts.reserve(neighbors_.size());
  for (const std::vector<ScoredItem>& list : neighbors_) {
    counts.push_back(static_cast<int32_t>(list.size()));
    for (const ScoredItem& si : list) {
      items.push_back(si.item);
      scores.push_back(si.score);
    }
  }
  ChunkWriter chunk;
  chunk.Scalar<int32_t>(options_.num_neighbors);
  chunk.Scalar<int32_t>(options_.max_user_degree);
  chunk.Vector(counts);
  chunk.Vector(items);
  chunk.Vector(scores);
  return writer.WriteChunk(kChunkKnnNeighbors, kCheckpointChunkVersion,
                           chunk);
}

Status ItemKnnRecommender::LoadModel(CheckpointReader& reader,
                                     const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged locals, committed only on full success — a failed load must
  // not leave checkpoint options behind for a fallback Fit() to train on.
  bool have_neighbors = false;
  ItemKnnOptions loaded_options = options_;
  std::vector<int32_t> counts;
  std::vector<int32_t> items;
  std::vector<double> scores;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    if (chunk.tag() != kChunkKnnNeighbors) continue;  // Skip unknown.
    if (chunk.version() > kCheckpointChunkVersion) {
      return Status::IOError("unsupported ItemKNN chunk version");
    }
    LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.num_neighbors));
    LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.max_user_degree));
    LT_RETURN_IF_ERROR(chunk.Vector(&counts, kMaxSerializedArrayElements));
    LT_RETURN_IF_ERROR(chunk.Vector(&items, kMaxSerializedArrayElements));
    LT_RETURN_IF_ERROR(chunk.Vector(&scores, kMaxSerializedArrayElements));
    have_neighbors = true;
  }
  if (!have_neighbors) {
    return Status::IOError("checkpoint is missing the ItemKNN chunk");
  }
  if (counts.size() != static_cast<size_t>(data.num_items()) ||
      items.size() != scores.size()) {
    return Status::IOError("checkpoint neighbour tables do not match the "
                           "dataset shape");
  }
  uint64_t total = 0;
  for (const int32_t c : counts) {
    if (c < 0) return Status::IOError("negative neighbour count");
    total += static_cast<uint64_t>(c);
  }
  if (total != items.size()) {
    return Status::IOError("checkpoint neighbour counts are inconsistent");
  }
  // NaN/Inf similarities in a checksummed-but-hostile file would poison
  // every ranking under Status::OK; reject them like graph weights.
  for (const double s : scores) {
    if (!std::isfinite(s)) {
      return Status::IOError("invalid neighbour similarity in checkpoint");
    }
  }
  std::vector<std::vector<ScoredItem>> loaded(counts.size());
  size_t pos = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    loaded[i].reserve(counts[i]);
    for (int32_t k = 0; k < counts[i]; ++k, ++pos) {
      if (items[pos] < 0 || items[pos] >= data.num_items()) {
        return Status::IOError("checkpoint neighbour id out of range");
      }
      loaded[i].push_back({items[pos], scores[pos]});
    }
  }
  options_ = loaded_options;
  neighbors_ = std::move(loaded);
  data_ = &data;
  return Status::OK();
}

std::vector<double> ItemKnnRecommender::AccumulateScores(UserId user) const {
  std::vector<double> acc(data_->num_items(), 0.0);
  const auto items = data_->UserItems(user);
  const auto values = data_->UserValues(user);
  for (size_t k = 0; k < items.size(); ++k) {
    const double w = values[k];
    for (const ScoredItem& nbr : neighbors_[items[k]]) {
      acc[nbr.item] += nbr.score * w;
    }
  }
  return acc;
}

Result<std::vector<ScoredItem>> ItemKnnRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> acc = AccumulateScores(user);
  std::vector<ScoredItem> candidates;
  candidates.reserve(acc.size());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (acc[i] <= 0.0 || data_->HasRating(user, i)) continue;
    candidates.push_back({i, acc[i]});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> ItemKnnRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> acc = AccumulateScores(user);
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = acc[items[k]];
  }
  return scores;
}

}  // namespace longtail
