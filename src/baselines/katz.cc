#include "baselines/katz.h"

#include "data/serialization.h"

namespace longtail {

Status KatzRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.beta <= 0.0) {
    return Status::InvalidArgument("beta must be positive");
  }
  if (options_.max_path_length < 2) {
    return Status::InvalidArgument(
        "max_path_length must be >= 2 to reach items");
  }
  data_ = &data;
  graph_ = BipartiteGraph::FromDataset(data, options_.weighted_edges);
  // Build the immutable plan exactly once, at fit time; queries only sweep.
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(graph_, WalkNormalization::kRaw);
  plan_ = std::move(plan);
  kernel_.AdoptPlan(plan_);
  return Status::OK();
}

Status KatzRecommender::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  ChunkWriter options;
  options.Scalar<double>(options_.beta);
  options.Scalar<int32_t>(options_.max_path_length);
  options.Scalar<uint8_t>(options_.weighted_edges ? 1 : 0);
  LT_RETURN_IF_ERROR(writer.WriteChunk(kChunkKatzOptions,
                                       kCheckpointChunkVersion, options));
  ChunkWriter graph;
  graph_.SaveTo(&graph);
  return writer.WriteChunk(kChunkBipartiteGraph, kCheckpointChunkVersion,
                           graph);
}

Status KatzRecommender::LoadModel(CheckpointReader& reader,
                                  const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged locals, committed only on full success — a failed load must
  // not leave checkpoint options behind for a fallback Fit() to train on.
  bool have_options = false;
  bool have_graph = false;
  KatzOptions loaded_options = options_;
  BipartiteGraph loaded_graph;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    switch (chunk.tag()) {
      case kChunkKatzOptions: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported Katz chunk version");
        }
        uint8_t weighted = 0;
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.beta));
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.max_path_length));
        LT_RETURN_IF_ERROR(chunk.Scalar(&weighted));
        loaded_options.weighted_edges = weighted != 0;
        have_options = true;
        break;
      }
      case kChunkBipartiteGraph: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported graph chunk version");
        }
        LT_ASSIGN_OR_RETURN(loaded_graph, BipartiteGraph::LoadFrom(&chunk));
        have_graph = true;
        break;
      }
      default:
        break;  // Unknown chunk: skip (forward compatibility).
    }
  }
  if (!have_options || !have_graph) {
    return Status::IOError("checkpoint is missing the Katz chunks");
  }
  // Same validity rules Fit enforces on constructor options.
  if (loaded_options.beta <= 0.0 || loaded_options.max_path_length < 2) {
    return Status::IOError("checkpoint Katz parameters are invalid");
  }
  if (loaded_graph.num_users() != data.num_users() ||
      loaded_graph.num_items() != data.num_items()) {
    return Status::InvalidArgument(
        "checkpoint graph shape does not match the dataset");
  }
  options_ = loaded_options;
  graph_ = std::move(loaded_graph);
  // Same plan-at-load rule as Fit: one build, then queries only sweep.
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(graph_, WalkNormalization::kRaw);
  plan_ = std::move(plan);
  kernel_.AdoptPlan(plan_);
  data_ = &data;
  return Status::OK();
}

Result<std::vector<double>> KatzRecommender::ComputeKatzVector(
    UserId user) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const int32_t n = graph_.num_nodes();
  std::vector<double> frontier(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> accum(n, 0.0);
  frontier[graph_.UserNode(user)] = 1.0;
  for (int step = 0; step < options_.max_path_length; ++step) {
    // next = β A · frontier in one kernel Apply: a sparse push while the
    // frontier is small, a blocked gather over the raw (symmetric)
    // adjacency once activation has spread.
    kernel_.Apply(options_.beta, frontier.data(), 0.0, nullptr, next.data());
    for (int32_t v = 0; v < n; ++v) accum[v] += next[v];
    frontier.swap(next);
  }
  return accum;
}

Result<std::vector<ScoredItem>> KatzRecommender::RecommendTopK(UserId user,
                                                               int k) const {
  LT_ASSIGN_OR_RETURN(std::vector<double> katz, ComputeKatzVector(user));
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    const double s = katz[graph_.ItemNode(i)];
    if (s <= 0.0) continue;
    candidates.push_back({i, s});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> KatzRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_ASSIGN_OR_RETURN(std::vector<double> katz, ComputeKatzVector(user));
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = katz[graph_.ItemNode(items[k])];
  }
  return scores;
}

}  // namespace longtail
