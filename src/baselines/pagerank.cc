#include "baselines/pagerank.h"

#include <cmath>

#include "data/serialization.h"

namespace longtail {

Status PageRankRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.damping <= 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  data_ = &data;
  graph_ = BipartiteGraph::FromDataset(data, options_.weighted_edges);
  // Build the immutable plan exactly once, at fit time; every power
  // iteration afterwards is pure sweep work against shared state.
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(graph_, WalkNormalization::kColumnStochastic);
  plan_ = std::move(plan);
  kernel_.AdoptPlan(plan_);
  return Status::OK();
}

Status PageRankRecommender::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  ChunkWriter options;
  options.Scalar<double>(options_.damping);
  options.Scalar<double>(options_.tolerance);
  options.Scalar<int32_t>(options_.max_iterations);
  options.Scalar<uint8_t>(options_.restart_at_items ? 1 : 0);
  options.Scalar<uint8_t>(options_.weighted_edges ? 1 : 0);
  options.Scalar<uint8_t>(discounted_ ? 1 : 0);
  LT_RETURN_IF_ERROR(writer.WriteChunk(kChunkPageRankOptions,
                                       kCheckpointChunkVersion, options));
  ChunkWriter graph;
  graph_.SaveTo(&graph);
  return writer.WriteChunk(kChunkBipartiteGraph, kCheckpointChunkVersion,
                           graph);
}

Status PageRankRecommender::LoadModel(CheckpointReader& reader,
                                      const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged locals, committed only on full success — a failed load must
  // not leave checkpoint options behind for a fallback Fit() to train on.
  bool have_options = false;
  bool have_graph = false;
  PageRankOptions loaded_options = options_;
  BipartiteGraph loaded_graph;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    switch (chunk.tag()) {
      case kChunkPageRankOptions: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported PageRank chunk version");
        }
        uint8_t restart_at_items = 0;
        uint8_t weighted = 0;
        uint8_t discounted = 0;
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.damping));
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.tolerance));
        LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_options.max_iterations));
        LT_RETURN_IF_ERROR(chunk.Scalar(&restart_at_items));
        LT_RETURN_IF_ERROR(chunk.Scalar(&weighted));
        LT_RETURN_IF_ERROR(chunk.Scalar(&discounted));
        loaded_options.restart_at_items = restart_at_items != 0;
        loaded_options.weighted_edges = weighted != 0;
        if ((discounted != 0) != discounted_) {
          return Status::InvalidArgument(
              "checkpoint holds a " +
              std::string(discounted != 0 ? "DPPR" : "PPR") +
              " model, not " + name());
        }
        have_options = true;
        break;
      }
      case kChunkBipartiteGraph: {
        if (chunk.version() > kCheckpointChunkVersion) {
          return Status::IOError("unsupported graph chunk version");
        }
        LT_ASSIGN_OR_RETURN(loaded_graph, BipartiteGraph::LoadFrom(&chunk));
        have_graph = true;
        break;
      }
      default:
        break;  // Unknown chunk: skip (forward compatibility).
    }
  }
  if (!have_options || !have_graph) {
    return Status::IOError("checkpoint is missing the " + name() +
                           " chunks");
  }
  if (loaded_options.damping <= 0.0 || loaded_options.damping >= 1.0) {
    return Status::IOError("checkpoint damping outside (0, 1)");
  }
  if (loaded_graph.num_users() != data.num_users() ||
      loaded_graph.num_items() != data.num_items()) {
    return Status::InvalidArgument(
        "checkpoint graph shape does not match the dataset");
  }
  options_ = loaded_options;
  graph_ = std::move(loaded_graph);
  // Same plan-at-load rule as Fit: one build, then queries only sweep.
  auto plan = std::make_shared<WalkPlan>();
  plan->Build(graph_, WalkNormalization::kColumnStochastic);
  plan_ = std::move(plan);
  kernel_.AdoptPlan(plan_);
  data_ = &data;
  return Status::OK();
}

Result<std::vector<double>> PageRankRecommender::ComputePpr(
    UserId user) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const int32_t n = graph_.num_nodes();
  std::vector<double> restart(n, 0.0);
  if (options_.restart_at_items) {
    const auto items = data_->UserItems(user);
    if (items.empty()) {
      return Status::FailedPrecondition("user " + std::to_string(user) +
                                        " has no ratings");
    }
    const double p = 1.0 / static_cast<double>(items.size());
    for (ItemId i : items) restart[graph_.ItemNode(i)] = p;
  } else {
    restart[graph_.UserNode(user)] = 1.0;
  }

  const double lambda = options_.damping;
  std::vector<double> pi = restart;
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < options_.max_iterations; ++it) {
    // next = (1-λ) restart + λ Pᵀ π in one kernel Apply: a sparse push
    // while π is concentrated (early iterations), a blocked gather over
    // the column-stochastic transition CSR once it has spread.
    kernel_.Apply(lambda, pi.data(), 1.0 - lambda, restart.data(),
                  next.data());
    double delta = 0.0;
    for (int32_t v = 0; v < n; ++v) delta += std::abs(next[v] - pi[v]);
    pi.swap(next);
    if (delta < options_.tolerance) break;
  }
  return pi;
}

double PageRankRecommender::ItemScore(const std::vector<double>& ppr,
                                      ItemId item) const {
  const double value = ppr[graph_.ItemNode(item)];
  if (!discounted_) return value;
  const int32_t pop = data_->ItemPopularity(item);
  // Unrated items have PPR 0 and popularity 0; keep them at 0 (Eq. 15 is
  // undefined there, and such items are unreachable anyway).
  return pop > 0 ? value / static_cast<double>(pop) : 0.0;
}

Result<std::vector<ScoredItem>> PageRankRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_ASSIGN_OR_RETURN(std::vector<double> ppr, ComputePpr(user));
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    const double s = ItemScore(ppr, i);
    if (s <= 0.0) continue;  // Unreachable from the restart set.
    candidates.push_back({i, s});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> PageRankRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_ASSIGN_OR_RETURN(std::vector<double> ppr, ComputePpr(user));
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = ItemScore(ppr, items[k]);
  }
  return scores;
}

}  // namespace longtail
