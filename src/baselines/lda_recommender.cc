#include "baselines/lda_recommender.h"

#include "data/serialization.h"

namespace longtail {

Status LdaRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  data_ = &data;
  if (!model_.has_value()) {
    LT_ASSIGN_OR_RETURN(LdaModel model, LdaModel::Train(data, options_));
    model_ = std::move(model);
  }
  if (model_->theta().rows() != static_cast<size_t>(data.num_users()) ||
      model_->phi().cols() != static_cast<size_t>(data.num_items())) {
    return Status::InvalidArgument(
        "adopted LDA model dimensions do not match the dataset");
  }
  return Status::OK();
}

Status LdaRecommender::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  ChunkWriter chunk;
  WriteLdaModelChunk(*model_, &chunk);
  return writer.WriteChunk(kChunkLdaModel, kCheckpointChunkVersion, chunk);
}

Status LdaRecommender::LoadModel(CheckpointReader& reader,
                                 const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged local, committed only on full success — a failed load must not
  // clobber an adopted model or leave checkpoint tables behind for a
  // fallback Fit() to skip Gibbs sampling with.
  std::optional<LdaModel> loaded;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    if (chunk.tag() != kChunkLdaModel) continue;  // Skip unknown.
    if (chunk.version() > kCheckpointChunkVersion) {
      return Status::IOError("unsupported LDA chunk version");
    }
    LT_ASSIGN_OR_RETURN(LdaModel model, ReadLdaModelChunk(&chunk));
    loaded = std::move(model);
  }
  if (!loaded.has_value()) {
    return Status::IOError("checkpoint is missing the LDA model chunk");
  }
  if (loaded->theta().rows() != static_cast<size_t>(data.num_users()) ||
      loaded->phi().cols() != static_cast<size_t>(data.num_items())) {
    return Status::IOError("checkpoint LDA model does not match the "
                           "dataset shape");
  }
  model_ = std::move(loaded);
  data_ = &data;
  return Status::OK();
}

Result<std::vector<ScoredItem>> LdaRecommender::RecommendTopK(UserId user,
                                                              int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    candidates.push_back({i, model_->Score(user, i)});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> LdaRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = model_->Score(user, items[k]);
  }
  return scores;
}

}  // namespace longtail
