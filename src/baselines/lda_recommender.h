// LDA recommender baseline (§5.1.1): rank items by the predictive
// probability score(u, i) = Σ_z θ_uz φ_zi of the user-item LDA model.
#ifndef LONGTAIL_BASELINES_LDA_RECOMMENDER_H_
#define LONGTAIL_BASELINES_LDA_RECOMMENDER_H_

#include <optional>

#include "core/recommender.h"
#include "topics/lda.h"

namespace longtail {

/// Latent-topic baseline recommender.
class LdaRecommender : public Recommender {
 public:
  explicit LdaRecommender(LdaOptions options = {}) : options_(options) {}

  std::string name() const override { return "LDA"; }

  /// Reuses an already-trained model (e.g. the one AC2 trained) so that Fit
  /// skips Gibbs sampling. Must be called before Fit.
  void AdoptModel(LdaModel model) { model_ = std::move(model); }

  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: persists θ and φ so a restart skips Gibbs sampling —
  /// the single most expensive Fit in the suite (paper Table 5).
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  const LdaModel& model() const { return *model_; }

 private:
  LdaOptions options_;
  std::optional<LdaModel> model_;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_LDA_RECOMMENDER_H_
