// Katz-index proximity baseline (§3.2 of the paper discusses Katz among the
// random-walk proximities that "can not challenge long tail item
// recommendation" because they ignore item popularity).
//
//   Katz(q, j) = Σ_{ℓ≥1} β^ℓ · (weighted #paths of length ℓ from q to j)
//
// computed by truncated spreading activation x_{ℓ+1} = β A x_ℓ from the
// query user node. Provided as an extra baseline to demonstrate that claim
// empirically (see bench_ablation_truncation and the extra-baseline suite).
#ifndef LONGTAIL_BASELINES_KATZ_H_
#define LONGTAIL_BASELINES_KATZ_H_

#include "core/recommender.h"
#include "graph/bipartite_graph.h"
#include "graph/walk_kernel.h"

namespace longtail {

struct KatzOptions {
  /// Attenuation per edge; must satisfy β < 1/σ_max(A) for the infinite
  /// series — irrelevant under truncation but kept small so long paths
  /// cannot dominate.
  double beta = 0.01;
  /// Truncation: only paths up to this length are counted (must be ≥ 2 to
  /// reach any unrated item from a user).
  int max_path_length = 6;
  bool weighted_edges = true;
};

/// Truncated Katz-index recommender.
class KatzRecommender : public Recommender {
 public:
  explicit KatzRecommender(KatzOptions options = {}) : options_(options) {}

  std::string name() const override { return "Katz"; }
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: persists the fitted graph + attenuation parameters.
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  /// The accumulated Katz vector over all graph nodes for a query user.
  Result<std::vector<double>> ComputeKatzVector(UserId user) const;

 private:
  KatzOptions options_;
  BipartiteGraph graph_;
  /// Immutable raw-weight walk plan over `graph_`, built exactly once at
  /// Fit/LoadModel (the serving path's plan/scratch split applied to the
  /// fit-time global graph). Points into `graph_`, which makes the class
  /// intentionally non-copyable.
  std::shared_ptr<const WalkPlan> plan_;
  /// Sweep scratch bound to `plan_`: each spreading-activation step
  /// x ← βAx is one kernel Apply (blocked gather over the symmetric
  /// adjacency).
  WalkKernel kernel_;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_KATZ_H_
