#include "baselines/pure_svd.h"

#include "linalg/csr_matrix.h"

namespace longtail {

Status PureSvdRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.num_factors < 1) {
    return Status::InvalidArgument("num_factors must be >= 1");
  }
  data_ = &data;

  // Assemble R in CSR (users × items), missing entries implicit zeros.
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(data.num_ratings()));
  for (UserId u = 0; u < data.num_users(); ++u) {
    const auto items = data.UserItems(u);
    const auto values = data.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      triplets.push_back({u, items[k], static_cast<double>(values[k])});
    }
  }
  LT_ASSIGN_OR_RETURN(
      CsrMatrix r,
      CsrMatrix::FromTriplets(data.num_users(), data.num_items(),
                              std::move(triplets)));

  SvdOptions svd_options = options_.svd;
  svd_options.rank =
      std::min(options_.num_factors,
               std::min(data.num_users(), data.num_items()));
  LT_ASSIGN_OR_RETURN(SvdResult svd, RandomizedSvd(r, svd_options));
  item_factors_ = std::move(svd.v);  // num_items × f
  return Status::OK();
}

std::vector<double> PureSvdRecommender::UserEmbedding(UserId user) const {
  const size_t f = item_factors_.cols();
  std::vector<double> e(f, 0.0);
  const auto items = data_->UserItems(user);
  const auto values = data_->UserValues(user);
  for (size_t k = 0; k < items.size(); ++k) {
    const auto q = item_factors_.Row(items[k]);
    const double w = values[k];
    for (size_t j = 0; j < f; ++j) e[j] += w * q[j];
  }
  return e;
}

Result<std::vector<ScoredItem>> PureSvdRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> e = UserEmbedding(user);
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    candidates.push_back({i, Dot(e, item_factors_.Row(i))});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> PureSvdRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> e = UserEmbedding(user);
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = Dot(e, item_factors_.Row(items[k]));
  }
  return scores;
}

}  // namespace longtail
