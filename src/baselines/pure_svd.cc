#include "baselines/pure_svd.h"

#include <cmath>

#include "data/serialization.h"
#include "linalg/csr_matrix.h"

namespace longtail {

Status PureSvdRecommender::Fit(const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition("Fit() must be called exactly once");
  }
  if (options_.num_factors < 1) {
    return Status::InvalidArgument("num_factors must be >= 1");
  }
  data_ = &data;

  // Assemble R in CSR (users × items), missing entries implicit zeros.
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(data.num_ratings()));
  for (UserId u = 0; u < data.num_users(); ++u) {
    const auto items = data.UserItems(u);
    const auto values = data.UserValues(u);
    for (size_t k = 0; k < items.size(); ++k) {
      triplets.push_back({u, items[k], static_cast<double>(values[k])});
    }
  }
  LT_ASSIGN_OR_RETURN(
      CsrMatrix r,
      CsrMatrix::FromTriplets(data.num_users(), data.num_items(),
                              std::move(triplets)));

  SvdOptions svd_options = options_.svd;
  svd_options.rank =
      std::min(options_.num_factors,
               std::min(data.num_users(), data.num_items()));
  LT_ASSIGN_OR_RETURN(SvdResult svd, RandomizedSvd(r, svd_options));
  item_factors_ = std::move(svd.v);  // num_items × f
  return Status::OK();
}

Status PureSvdRecommender::SaveModel(CheckpointWriter& writer) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("SaveModel requires a fitted model");
  }
  ChunkWriter chunk;
  chunk.Scalar<int32_t>(options_.num_factors);
  WriteDenseMatrix(item_factors_, &chunk);
  return writer.WriteChunk(kChunkSvdFactors, kCheckpointChunkVersion, chunk);
}

Status PureSvdRecommender::LoadModel(CheckpointReader& reader,
                                     const Dataset& data) {
  if (data_ != nullptr) {
    return Status::FailedPrecondition(
        "LoadModel requires an unfitted recommender");
  }
  // Staged locals, committed only on full success — a failed load must
  // not leave checkpoint options behind for a fallback Fit() to train on.
  bool have_factors = false;
  int32_t loaded_num_factors = options_.num_factors;
  DenseMatrix loaded_factors;
  ChunkReader chunk;
  while (true) {
    LT_ASSIGN_OR_RETURN(const bool more, reader.Next(&chunk));
    if (!more) break;
    if (chunk.tag() != kChunkSvdFactors) continue;  // Skip unknown.
    if (chunk.version() > kCheckpointChunkVersion) {
      return Status::IOError("unsupported PureSVD chunk version");
    }
    LT_RETURN_IF_ERROR(chunk.Scalar(&loaded_num_factors));
    LT_RETURN_IF_ERROR(ReadDenseMatrix(&chunk, &loaded_factors));
    have_factors = true;
  }
  if (!have_factors) {
    return Status::IOError("checkpoint is missing the PureSVD chunk");
  }
  if (loaded_factors.rows() != static_cast<size_t>(data.num_items()) ||
      loaded_factors.cols() == 0) {
    return Status::IOError("checkpoint factor matrix does not match the "
                           "dataset shape");
  }
  // NaN/Inf factors in a checksummed-but-hostile file would poison every
  // score under Status::OK; reject them like graph weights.
  for (const double v : loaded_factors.data()) {
    if (!std::isfinite(v)) {
      return Status::IOError("invalid factor value in checkpoint");
    }
  }
  options_.num_factors = loaded_num_factors;
  item_factors_ = std::move(loaded_factors);
  data_ = &data;
  return Status::OK();
}

std::vector<double> PureSvdRecommender::UserEmbedding(UserId user) const {
  const size_t f = item_factors_.cols();
  std::vector<double> e(f, 0.0);
  const auto items = data_->UserItems(user);
  const auto values = data_->UserValues(user);
  for (size_t k = 0; k < items.size(); ++k) {
    const auto q = item_factors_.Row(items[k]);
    const double w = values[k];
    for (size_t j = 0; j < f; ++j) e[j] += w * q[j];
  }
  return e;
}

Result<std::vector<ScoredItem>> PureSvdRecommender::RecommendTopK(
    UserId user, int k) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> e = UserEmbedding(user);
  std::vector<ScoredItem> candidates;
  candidates.reserve(data_->num_items());
  for (ItemId i = 0; i < data_->num_items(); ++i) {
    if (data_->HasRating(user, i)) continue;
    candidates.push_back({i, Dot(e, item_factors_.Row(i))});
  }
  return TopKScoredItems(std::move(candidates), k);
}

Result<std::vector<double>> PureSvdRecommender::ScoreItems(
    UserId user, std::span<const ItemId> items) const {
  LT_RETURN_IF_ERROR(CheckQueryUser(data_, user));
  const std::vector<double> e = UserEmbedding(user);
  std::vector<double> scores(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k] < 0 || items[k] >= data_->num_items()) {
      return Status::OutOfRange("candidate item id out of range");
    }
    scores[k] = Dot(e, item_factors_.Row(items[k]));
  }
  return scores;
}

}  // namespace longtail
