// Item-based k-nearest-neighbour collaborative filtering.
//
// The classic neighbourhood model referenced in §2 (Herlocker et al.):
// cosine similarity between item rating vectors; a user's score for item i
// is Σ_{j ∈ S_u} sim(i, j) · w(u, j) over the stored top-M neighbour lists.
#ifndef LONGTAIL_BASELINES_ITEM_KNN_H_
#define LONGTAIL_BASELINES_ITEM_KNN_H_

#include <vector>

#include "core/recommender.h"

namespace longtail {

struct ItemKnnOptions {
  /// Neighbours retained per item.
  int num_neighbors = 50;
  /// Users rating more than this many items are skipped during similarity
  /// accumulation (standard guard: they contribute O(degree²) pairs while
  /// carrying little signal).
  int32_t max_user_degree = 2000;
};

/// Item-based kNN recommender with precomputed neighbour lists.
class ItemKnnRecommender : public Recommender {
 public:
  explicit ItemKnnRecommender(ItemKnnOptions options = {})
      : options_(options) {}

  std::string name() const override { return "ItemKNN"; }
  Status Fit(const Dataset& data) override;
  Result<std::vector<ScoredItem>> RecommendTopK(UserId user,
                                                int k) const override;
  Result<std::vector<double>> ScoreItems(
      UserId user, std::span<const ItemId> items) const override;

  /// Checkpointing: persists the precomputed neighbour lists (the O(n²)
  /// similarity pass is the expensive part of Fit).
  Status SaveModel(CheckpointWriter& writer) const override;
  Status LoadModel(CheckpointReader& reader, const Dataset& data) override;

  /// Stored neighbours of `item`: (neighbour, cosine), best first.
  const std::vector<ScoredItem>& Neighbors(ItemId item) const {
    return neighbors_[item];
  }

 private:
  /// Accumulates user scores over all items; shared by both query paths.
  std::vector<double> AccumulateScores(UserId user) const;

  ItemKnnOptions options_;
  std::vector<std::vector<ScoredItem>> neighbors_;
};

}  // namespace longtail

#endif  // LONGTAIL_BASELINES_ITEM_KNN_H_
