// Row-major dense matrix and vector helpers.
//
// Dense matrices only appear in small dimensions here (factor matrices of
// rank f ≤ a few hundred, LDA parameter tables), so a straightforward
// row-major layout with no blocking is appropriate.
#ifndef LONGTAIL_LINALG_DENSE_H_
#define LONGTAIL_LINALG_DENSE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace longtail {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> Row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// C = A * B (naive triple loop; small matrices only).
  static DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);

  /// C = Aᵀ * A (symmetric Gram matrix), exploiting symmetry.
  static DenseMatrix Gram(const DenseMatrix& a);

  DenseMatrix Transposed() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Vector helpers (std::vector<double> as the vector type) ----

double Dot(std::span<const double> a, std::span<const double> b);
double Norm2(std::span<const double> a);
/// y += alpha * x
void Axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x *= alpha
void Scale(double alpha, std::span<double> x);
/// Normalizes x to unit L2 norm; returns the original norm (0 if zero vec).
double Normalize(std::span<double> x);
/// L1-normalizes x in place; returns the original sum.
double NormalizeL1(std::span<double> x);

/// Modified Gram–Schmidt QR: orthonormalizes the columns of `a` in place.
/// Returns the R factor (upper triangular, cols×cols). Columns with norm
/// below `tol` are replaced by zero vectors (rank deficiency tolerated).
DenseMatrix QrInPlace(DenseMatrix* a, double tol = 1e-12);

/// Jacobi eigen-decomposition of a small symmetric matrix.
/// On return `a` holds the rotated (near-diagonal) matrix, `eigenvalues`
/// the diagonal, and `eigenvectors` the orthonormal eigenvector columns.
/// Eigenpairs are sorted by descending eigenvalue.
void SymmetricEigen(DenseMatrix a, std::vector<double>* eigenvalues,
                    DenseMatrix* eigenvectors, int max_sweeps = 64);

}  // namespace longtail

#endif  // LONGTAIL_LINALG_DENSE_H_
