// Iterative linear solvers for sparse systems.
//
// Exact hitting/absorbing times satisfy (I - P_TT) h = b over the transient
// states. These systems are diagonally dominant M-matrices, so Jacobi and
// Gauss–Seidel converge; CG is provided for symmetric systems in tests.
#ifndef LONGTAIL_LINALG_SOLVERS_H_
#define LONGTAIL_LINALG_SOLVERS_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "util/status.h"

namespace longtail {

/// Convergence controls shared by the iterative solvers.
struct SolverOptions {
  int max_iterations = 10000;
  /// Stop when the max-norm of successive iterate deltas drops below this.
  double tolerance = 1e-10;
};

/// Reusable temporaries threaded through the iterative solvers and the
/// graph-walk value routines by the batch query engine. A scratch object is
/// sized lazily and keeps its capacity, so repeated solves of similarly
/// sized systems perform no heap allocation. Not thread-safe: use one per
/// worker thread.
struct SolverScratch {
  /// Value-sized double temporaries (Jacobi next-iterate; CG r/p/ap).
  std::vector<double> va, vb, vc;
  /// Per-node marker bytes (absorbing-set reachability).
  std::vector<uint8_t> flags;
  /// BFS queue storage for reachability sweeps.
  std::vector<int32_t> queue;
};

/// Outcome of a solve: iterations used and final delta/residual estimate.
struct SolverReport {
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

/// Solves x = A x + b by fixed-point (Jacobi-style) iteration, i.e.
/// (I - A) x = b. Requires spectral radius of A below 1 (true for
/// substochastic transition blocks). x is initialized to b. When `scratch`
/// is given its buffers are reused instead of allocating per call.
Result<SolverReport> FixedPointSolve(const CsrMatrix& a,
                                     const std::vector<double>& b,
                                     std::vector<double>* x,
                                     const SolverOptions& options = {},
                                     SolverScratch* scratch = nullptr);

/// Gauss–Seidel for x = A x + b ((I - A) x = b). Typically ~2x fewer
/// iterations than Jacobi on walk matrices. x is initialized to b.
Result<SolverReport> GaussSeidelSolve(const CsrMatrix& a,
                                      const std::vector<double>& b,
                                      std::vector<double>* x,
                                      const SolverOptions& options = {});

/// Conjugate gradient for symmetric positive definite A x = b. When
/// `scratch` is given its buffers back the r/p/Ap temporaries.
Result<SolverReport> ConjugateGradientSolve(const CsrMatrix& a,
                                            const std::vector<double>& b,
                                            std::vector<double>* x,
                                            const SolverOptions& options = {},
                                            SolverScratch* scratch = nullptr);

}  // namespace longtail

#endif  // LONGTAIL_LINALG_SOLVERS_H_
