#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace longtail {

Result<CsrMatrix> CsrMatrix::FromTriplets(int32_t rows, int32_t cols,
                                          std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("matrix dimensions must be non-negative");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange("triplet (" + std::to_string(t.row) + "," +
                                std::to_string(t.col) +
                                ") outside matrix bounds");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const int32_t r = triplets[i].row;
    const int32_t c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.col_idx_.size());
  }
  // Forward-fill row_ptr for empty rows.
  for (int32_t r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] = std::max(m.row_ptr_[r + 1], m.row_ptr_[r]);
  }
  return m;
}

Result<CsrMatrix> CsrMatrix::FromCsrArrays(int32_t rows, int32_t cols,
                                           std::vector<int64_t> row_ptr,
                                           std::vector<int32_t> col_idx,
                                           std::vector<double> values) {
  if (row_ptr.size() != static_cast<size_t>(rows) + 1) {
    return Status::InvalidArgument("row_ptr must have rows+1 entries");
  }
  if (col_idx.size() != values.size()) {
    return Status::InvalidArgument("col_idx/values size mismatch");
  }
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<int64_t>(col_idx.size())) {
    return Status::InvalidArgument("row_ptr endpoints inconsistent with nnz");
  }
  for (int32_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("row_ptr must be non-decreasing");
    }
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] < 0 || col_idx[k] >= cols) {
        return Status::OutOfRange("column index out of bounds");
      }
      if (k > row_ptr[r] && col_idx[k - 1] >= col_idx[k]) {
        return Status::InvalidArgument(
            "column indices must be strictly ascending within a row");
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

double CsrMatrix::At(int32_t row, int32_t col) const {
  LT_CHECK_GE(row, 0);
  LT_CHECK_LT(row, rows_);
  const auto cols_span = RowIndices(row);
  const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), col);
  if (it == cols_span.end() || *it != col) return 0.0;
  const size_t offset = static_cast<size_t>(it - cols_span.begin());
  return RowValues(row)[offset];
}

double CsrMatrix::RowSum(int32_t row) const {
  double s = 0.0;
  for (double v : RowValues(row)) s += v;
  return s;
}

void CsrMatrix::Multiply(std::span<const double> x,
                         std::vector<double>* y) const {
  LT_CHECK_EQ(static_cast<int32_t>(x.size()), cols_);
  y->assign(rows_, 0.0);
  for (int32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    (*y)[r] = acc;
  }
}

void CsrMatrix::MultiplyTranspose(std::span<const double> x,
                                  std::vector<double>* y) const {
  LT_CHECK_EQ(static_cast<int32_t>(x.size()), rows_);
  y->assign(cols_, 0.0);
  for (int32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      (*y)[col_idx_[k]] += values_[k] * xr;
    }
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(col_idx_.size());
  t.values_.resize(values_.size());
  // Count entries per column.
  for (int32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (int32_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  std::vector<int64_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int32_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const int64_t pos = next[col_idx_[k]]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

double CsrMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

}  // namespace longtail
