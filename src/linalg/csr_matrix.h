// Compressed sparse row matrix and a COO builder.
//
// The user-item rating matrix and graph adjacency/transition matrices are
// stored in CSR. Indices are int32 (our datasets are << 2^31 nonzeros per
// row dimension); values are double.
#ifndef LONGTAIL_LINALG_CSR_MATRIX_H_
#define LONGTAIL_LINALG_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace longtail {

/// One nonzero entry for COO assembly.
struct Triplet {
  int32_t row;
  int32_t col;
  double value;
};

/// Immutable CSR matrix. Construct via CsrMatrix::FromTriplets or a builder
/// that already has sorted per-row data.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO triplets. Duplicate (row, col) entries are summed.
  /// Column indices within each row are sorted ascending.
  static Result<CsrMatrix> FromTriplets(int32_t rows, int32_t cols,
                                        std::vector<Triplet> triplets);

  /// Adopts prebuilt CSR arrays (row_ptr.size() == rows+1, sorted cols).
  static Result<CsrMatrix> FromCsrArrays(int32_t rows, int32_t cols,
                                         std::vector<int64_t> row_ptr,
                                         std::vector<int32_t> col_idx,
                                         std::vector<double> values);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  /// Column indices of nonzeros in `row`.
  std::span<const int32_t> RowIndices(int32_t row) const {
    return {col_idx_.data() + row_ptr_[row],
            static_cast<size_t>(row_ptr_[row + 1] - row_ptr_[row])};
  }

  /// Values of nonzeros in `row`, aligned with RowIndices.
  std::span<const double> RowValues(int32_t row) const {
    return {values_.data() + row_ptr_[row],
            static_cast<size_t>(row_ptr_[row + 1] - row_ptr_[row])};
  }

  int64_t RowNnz(int32_t row) const {
    return row_ptr_[row + 1] - row_ptr_[row];
  }

  /// Value at (row, col); 0 if absent. Binary search within the row.
  double At(int32_t row, int32_t col) const;

  /// Sum of values in `row`.
  double RowSum(int32_t row) const;

  /// y = A x  (y resized to rows()).
  void Multiply(std::span<const double> x, std::vector<double>* y) const;

  /// y = Aᵀ x  (y resized to cols()).
  void MultiplyTranspose(std::span<const double> x,
                         std::vector<double>* y) const;

  /// Returns Aᵀ as a new CSR matrix.
  CsrMatrix Transpose() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  std::vector<int64_t> row_ptr_{0};
  std::vector<int32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace longtail

#endif  // LONGTAIL_LINALG_CSR_MATRIX_H_
