#include "linalg/solvers.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense.h"

namespace longtail {

namespace {
Status CheckSquareCompatible(const CsrMatrix& a, const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("solver requires a square matrix");
  }
  if (static_cast<int32_t>(b.size()) != a.rows()) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  return Status::OK();
}
}  // namespace

Result<SolverReport> FixedPointSolve(const CsrMatrix& a,
                                     const std::vector<double>& b,
                                     std::vector<double>* x,
                                     const SolverOptions& options,
                                     SolverScratch* scratch) {
  LT_RETURN_IF_ERROR(CheckSquareCompatible(a, b));
  const int32_t n = a.rows();
  *x = b;
  std::vector<double> local;
  std::vector<double>& next = scratch != nullptr ? scratch->va : local;
  next.assign(n, 0.0);
  SolverReport report;
  for (int it = 0; it < options.max_iterations; ++it) {
    a.Multiply(*x, &next);
    double delta = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      next[i] += b[i];
      delta = std::max(delta, std::abs(next[i] - (*x)[i]));
    }
    x->swap(next);
    report.iterations = it + 1;
    report.final_delta = delta;
    if (delta < options.tolerance) {
      report.converged = true;
      return report;
    }
  }
  return report;
}

Result<SolverReport> GaussSeidelSolve(const CsrMatrix& a,
                                      const std::vector<double>& b,
                                      std::vector<double>* x,
                                      const SolverOptions& options) {
  LT_RETURN_IF_ERROR(CheckSquareCompatible(a, b));
  const int32_t n = a.rows();
  *x = b;
  SolverReport report;
  for (int it = 0; it < options.max_iterations; ++it) {
    double delta = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      // x_i = b_i + sum_j a_ij x_j, using in-place (already-updated) values.
      double acc = b[i];
      double diag = 0.0;
      const auto idx = a.RowIndices(i);
      const auto val = a.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == i) {
          diag = val[k];
        } else {
          acc += val[k] * (*x)[idx[k]];
        }
      }
      // Solve x_i = acc + diag * x_i  =>  x_i = acc / (1 - diag).
      const double denom = 1.0 - diag;
      const double xi = denom != 0.0 ? acc / denom : acc;
      delta = std::max(delta, std::abs(xi - (*x)[i]));
      (*x)[i] = xi;
    }
    report.iterations = it + 1;
    report.final_delta = delta;
    if (delta < options.tolerance) {
      report.converged = true;
      return report;
    }
  }
  return report;
}

Result<SolverReport> ConjugateGradientSolve(const CsrMatrix& a,
                                            const std::vector<double>& b,
                                            std::vector<double>* x,
                                            const SolverOptions& options,
                                            SolverScratch* scratch) {
  LT_RETURN_IF_ERROR(CheckSquareCompatible(a, b));
  const int32_t n = a.rows();
  x->assign(n, 0.0);
  SolverScratch local;
  SolverScratch& s = scratch != nullptr ? *scratch : local;
  std::vector<double>& r = s.va;
  std::vector<double>& p = s.vb;
  std::vector<double>& ap = s.vc;
  r.assign(b.begin(), b.end());
  p.assign(b.begin(), b.end());
  ap.assign(n, 0.0);
  double rs_old = Dot(r, r);
  SolverReport report;
  const double b_norm = std::max(1e-300, Norm2(b));
  for (int it = 0; it < options.max_iterations; ++it) {
    a.Multiply(p, &ap);
    const double p_ap = Dot(p, ap);
    if (p_ap <= 0.0) {
      return Status::FailedPrecondition(
          "CG encountered non-positive curvature; matrix is not SPD");
    }
    const double alpha = rs_old / p_ap;
    Axpy(alpha, p, *x);
    Axpy(-alpha, ap, r);
    const double rs_new = Dot(r, r);
    report.iterations = it + 1;
    report.final_delta = std::sqrt(rs_new) / b_norm;
    if (report.final_delta < options.tolerance) {
      report.converged = true;
      return report;
    }
    const double beta = rs_new / rs_old;
    for (int32_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  return report;
}

}  // namespace longtail
