#include "linalg/dense.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace longtail {

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  LT_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.Row(k);
      auto crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

DenseMatrix DenseMatrix::Gram(const DenseMatrix& a) {
  DenseMatrix g(a.cols(), a.cols(), 0.0);
  for (size_t k = 0; k < a.rows(); ++k) {
    const auto row = a.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      for (size_t j = i; j < a.cols(); ++j) g(i, j) += v * row[j];
    }
  }
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  LT_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  LT_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Normalize(std::span<double> x) {
  const double n = Norm2(x);
  if (n > 0.0) Scale(1.0 / n, x);
  return n;
}

double NormalizeL1(std::span<double> x) {
  double s = 0.0;
  for (double v : x) s += v;
  if (s != 0.0) Scale(1.0 / s, x);
  return s;
}

DenseMatrix QrInPlace(DenseMatrix* a, double tol) {
  const size_t m = a->rows();
  const size_t n = a->cols();
  DenseMatrix r(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    // Subtract projections onto previously orthonormalized columns.
    for (size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (size_t i = 0; i < m; ++i) proj += (*a)(i, k) * (*a)(i, j);
      r(k, j) = proj;
      for (size_t i = 0; i < m; ++i) (*a)(i, j) -= proj * (*a)(i, k);
    }
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += (*a)(i, j) * (*a)(i, j);
    norm = std::sqrt(norm);
    r(j, j) = norm;
    if (norm < tol) {
      for (size_t i = 0; i < m; ++i) (*a)(i, j) = 0.0;
    } else {
      const double inv = 1.0 / norm;
      for (size_t i = 0; i < m; ++i) (*a)(i, j) *= inv;
    }
  }
  return r;
}

void SymmetricEigen(DenseMatrix a, std::vector<double>* eigenvalues,
                    DenseMatrix* eigenvectors, int max_sweeps) {
  const size_t n = a.rows();
  LT_CHECK_EQ(n, a.cols());
  DenseMatrix v(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation to A on both sides.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });
  eigenvalues->resize(n);
  *eigenvectors = DenseMatrix(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    (*eigenvalues)[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) (*eigenvectors)(i, j) = v(i, order[j]);
  }
}

}  // namespace longtail
