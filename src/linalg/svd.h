// Randomized truncated SVD of a sparse matrix.
//
// Used by the PureSVD baseline (Cremonesi et al., RecSys 2010): the rating
// matrix R (users × items) is factorized R ≈ U Σ Qᵀ and item scores for a
// user come from projecting their rating row onto the item factor space.
//
// Algorithm: randomized subspace iteration (Halko, Martinsson, Tropp 2011).
//   Y = (R Rᵀ)^q R Ω, Ω Gaussian n×(k+p)  → orthonormalize → B = QᵀR →
//   eigen-decompose the small Gram BBᵀ → singular triplets.
#ifndef LONGTAIL_LINALG_SVD_H_
#define LONGTAIL_LINALG_SVD_H_

#include <cstdint>

#include "linalg/csr_matrix.h"
#include "linalg/dense.h"
#include "util/status.h"

namespace longtail {

struct SvdOptions {
  /// Target rank (number of singular triplets kept).
  int rank = 50;
  /// Oversampling columns beyond the rank for accuracy.
  int oversample = 10;
  /// Power-iteration passes; 2 is typically enough for rating matrices.
  int power_iterations = 2;
  uint64_t seed = 42;
};

/// Truncated SVD result: A ≈ U diag(S) Vᵀ where U is rows×rank,
/// V is cols×rank, singular values descending.
struct SvdResult {
  DenseMatrix u;
  std::vector<double> singular_values;
  DenseMatrix v;
};

/// Computes a randomized truncated SVD of `a`. rank must be ≥ 1 and at most
/// min(rows, cols).
Result<SvdResult> RandomizedSvd(const CsrMatrix& a, const SvdOptions& options);

}  // namespace longtail

#endif  // LONGTAIL_LINALG_SVD_H_
