#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace longtail {

namespace {

// Y = A * X where X is dense (cols×k), result rows×k.
DenseMatrix SparseTimesDense(const CsrMatrix& a, const DenseMatrix& x) {
  LT_CHECK_EQ(static_cast<size_t>(a.cols()), x.rows());
  DenseMatrix y(a.rows(), x.cols(), 0.0);
  for (int32_t r = 0; r < a.rows(); ++r) {
    const auto idx = a.RowIndices(r);
    const auto val = a.RowValues(r);
    auto yrow = y.Row(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const double v = val[k];
      const auto xrow = x.Row(idx[k]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

// Y = Aᵀ * X where X is dense (rows×k), result cols×k.
DenseMatrix SparseTransposeTimesDense(const CsrMatrix& a,
                                      const DenseMatrix& x) {
  LT_CHECK_EQ(static_cast<size_t>(a.rows()), x.rows());
  DenseMatrix y(a.cols(), x.cols(), 0.0);
  for (int32_t r = 0; r < a.rows(); ++r) {
    const auto idx = a.RowIndices(r);
    const auto val = a.RowValues(r);
    const auto xrow = x.Row(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      auto yrow = y.Row(idx[k]);
      const double v = val[k];
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

}  // namespace

Result<SvdResult> RandomizedSvd(const CsrMatrix& a, const SvdOptions& options) {
  const int32_t m = a.rows();
  const int32_t n = a.cols();
  if (options.rank < 1) {
    return Status::InvalidArgument("SVD rank must be >= 1");
  }
  if (options.rank > std::min(m, n)) {
    return Status::InvalidArgument("SVD rank exceeds min(rows, cols)");
  }
  const int k = options.rank;
  const int sketch =
      std::min<int>(k + std::max(0, options.oversample), std::min(m, n));

  // Gaussian sketch Ω (n × sketch).
  Rng rng(options.seed);
  DenseMatrix omega(n, sketch);
  for (size_t i = 0; i < omega.rows(); ++i) {
    for (size_t j = 0; j < omega.cols(); ++j) {
      omega(i, j) = rng.NextGaussian();
    }
  }

  // Subspace iteration with re-orthonormalization each pass for stability.
  DenseMatrix y = SparseTimesDense(a, omega);  // m × sketch
  QrInPlace(&y);
  for (int q = 0; q < options.power_iterations; ++q) {
    DenseMatrix z = SparseTransposeTimesDense(a, y);  // n × sketch
    QrInPlace(&z);
    y = SparseTimesDense(a, z);  // m × sketch
    QrInPlace(&y);
  }

  // B = Qᵀ A  (sketch × n), computed as (Aᵀ Q)ᵀ.
  DenseMatrix at_q = SparseTransposeTimesDense(a, y);  // n × sketch
  // Small Gram G = B Bᵀ = (Aᵀ Q)ᵀ (Aᵀ Q)  (sketch × sketch).
  DenseMatrix gram = DenseMatrix::Gram(at_q);

  std::vector<double> eigenvalues;
  DenseMatrix eigenvectors;
  SymmetricEigen(gram, &eigenvalues, &eigenvectors);

  SvdResult result;
  result.singular_values.resize(k);
  result.u = DenseMatrix(m, k, 0.0);
  result.v = DenseMatrix(n, k, 0.0);

  // Singular values: sqrt of Gram eigenvalues. U = Q W, V = B' W / σ.
  for (int j = 0; j < k; ++j) {
    const double ev = std::max(0.0, eigenvalues[j]);
    result.singular_values[j] = std::sqrt(ev);
  }
  // U columns: Q (m×sketch) times eigenvector columns (sketch×k).
  for (int32_t i = 0; i < m; ++i) {
    const auto qrow = y.Row(i);
    for (int j = 0; j < k; ++j) {
      double acc = 0.0;
      for (int s = 0; s < sketch; ++s) acc += qrow[s] * eigenvectors(s, j);
      result.u(i, j) = acc;
    }
  }
  // V columns: at_q (n×sketch) times eigenvector columns, scaled by 1/σ.
  for (int32_t i = 0; i < n; ++i) {
    const auto brow = at_q.Row(i);
    for (int j = 0; j < k; ++j) {
      const double sigma = result.singular_values[j];
      if (sigma < 1e-12) {
        result.v(i, j) = 0.0;
        continue;
      }
      double acc = 0.0;
      for (int s = 0; s < sketch; ++s) acc += brow[s] * eigenvectors(s, j);
      result.v(i, j) = acc / sigma;
    }
  }
  return result;
}

}  // namespace longtail
