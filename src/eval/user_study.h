// Simulated user study (§5.2.7 substitution — see DESIGN.md §3).
//
// The paper hired 50 movie-lovers, recommended 10 movies each with AC2,
// DPPR, PureSVD and LDA, and collected Preference / Novelty / Serendipity /
// overall Score. We replace the humans with simulated evaluators whose
// ground-truth tastes are the synthetic generator's latent user
// preferences:
//   * Preference (1–5): affinity of the item's genre to the evaluator's
//     preference vector — the same quantity that generated their ratings.
//   * Novelty (0/1 in expectation): probability the evaluator did NOT know
//     the item. Knowing an item is rated-it OR a logistic function of item
//     popularity (the paper's evaluators knew hits from posters/IMDB lists).
//   * Serendipity (1–5): novelty-gated pleasant surprise — unknown, in the
//     tail, yet matching taste.
//   * Score (1–5): preference blended with the novelty bonus.
#ifndef LONGTAIL_EVAL_USER_STUDY_H_
#define LONGTAIL_EVAL_USER_STUDY_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/dataset.h"
#include "util/status.h"

namespace longtail {

struct UserStudyOptions {
  /// Evaluators sampled from the dataset's users (paper: 50).
  int num_evaluators = 50;
  /// Recommendations shown to each evaluator (paper: 10).
  int k = 10;
  /// Evaluators must have at least this many ratings.
  int32_t min_degree = 20;
  /// Popularity percentile at which an unrated item is known with
  /// probability 0.5 (logistic midpoint).
  double known_midpoint_percentile = 0.92;
  /// Steepness of the known-probability logistic.
  double known_steepness = 18.0;
  uint64_t seed = 50;
};

/// Table 6 row.
struct UserStudyReport {
  std::string algorithm;
  double preference = 0.0;   // 1..5
  double novelty = 0.0;      // 0..1
  double serendipity = 0.0;  // 1..5
  double score = 0.0;        // 1..5
  int items_evaluated = 0;
};

/// Runs the simulated study for one recommender. Requires the dataset to
/// carry generator ground truth (item_genres + user_genre_prefs).
Result<UserStudyReport> RunUserStudy(const Recommender& rec,
                                     const Dataset& train,
                                     const UserStudyOptions& options = {});

}  // namespace longtail

#endif  // LONGTAIL_EVAL_USER_STUDY_H_
