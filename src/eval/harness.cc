#include "eval/harness.h"

#include "baselines/item_knn.h"
#include "baselines/katz.h"
#include "baselines/lda_recommender.h"
#include "baselines/popularity.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"
#include "util/logging.h"
#include "util/timer.h"

namespace longtail {

const Recommender* AlgorithmSuite::Find(const std::string& name) const {
  for (const auto& alg : algorithms) {
    if (alg->name() == name) return alg.get();
  }
  return nullptr;
}

double AlgorithmSuite::FitSeconds(const std::string& name) const {
  for (const auto& [alg, seconds] : fit_seconds) {
    if (alg == name) return seconds;
  }
  return 0.0;
}

bool AlgorithmSuite::WasLoadedFromCheckpoint(const std::string& name) const {
  for (const std::string& loaded : loaded_from_checkpoint) {
    if (loaded == name) return true;
  }
  return false;
}

Result<AlgorithmSuite> BuildAndFitSuite(const Dataset& train,
                                        const SuiteOptions& options) {
  AlgorithmSuite suite;

  // Fit-or-load: restore from <checkpoint_dir>/<name>.ckpt when possible,
  // fall back to a timed Fit() (and checkpoint the fresh model so the next
  // run loads). fit_seconds records seconds-to-readiness either way.
  // `allow_load = false` keeps the checkpoint write but never loads — used
  // for the LDA baseline, which must always adopt AC2's model rather than
  // read a possibly different generation from disk.
  const auto timed_fit = [&suite, &train, &options](
                             Recommender* rec,
                             bool allow_load = true) -> Status {
    const std::string path =
        options.checkpoint_dir.empty()
            ? std::string()
            : options.checkpoint_dir + "/" + rec->name() + ".ckpt";
    if (!path.empty() && allow_load) {
      WallTimer timer;
      const Status loaded = LoadModelCheckpointInto(path, train, rec);
      if (loaded.ok()) {
        suite.fit_seconds.emplace_back(rec->name(), timer.ElapsedSeconds());
        suite.loaded_from_checkpoint.push_back(rec->name());
        return Status::OK();
      }
    }
    WallTimer timer;
    LT_RETURN_IF_ERROR(rec->Fit(train));
    suite.fit_seconds.emplace_back(rec->name(), timer.ElapsedSeconds());
    if (!path.empty()) {
      const Status saved = SaveModelCheckpoint(*rec, path);
      if (!saved.ok()) {
        LT_LOG(WARN) << "could not checkpoint " << rec->name() << ": "
                     << saved.ToString();
      }
    }
    return Status::OK();
  };

  AbsorbingCostOptions ac_options;
  ac_options.walk = options.walk;
  ac_options.user_jump_cost = options.user_jump_cost;
  ac_options.lda = options.lda;

  // AC2 first: it trains the LDA model the LDA baseline will adopt.
  auto ac2 = std::make_unique<AbsorbingCostRecommender>(
      EntropySource::kTopicBased, ac_options);
  LT_RETURN_IF_ERROR(timed_fit(ac2.get()));
  auto lda_baseline = std::make_unique<LdaRecommender>(options.lda);
  lda_baseline->AdoptModel(*ac2->lda_model());

  auto ac1 = std::make_unique<AbsorbingCostRecommender>(
      EntropySource::kItemBased, ac_options);
  LT_RETURN_IF_ERROR(timed_fit(ac1.get()));

  auto at = std::make_unique<AbsorbingTimeRecommender>(options.walk);
  LT_RETURN_IF_ERROR(timed_fit(at.get()));

  auto ht = std::make_unique<HittingTimeRecommender>(options.walk);
  LT_RETURN_IF_ERROR(timed_fit(ht.get()));

  auto dppr = std::make_unique<PageRankRecommender>(/*discounted=*/true,
                                                    options.ppr);
  LT_RETURN_IF_ERROR(timed_fit(dppr.get()));

  auto pure_svd = std::make_unique<PureSvdRecommender>(options.svd);
  LT_RETURN_IF_ERROR(timed_fit(pure_svd.get()));

  // The LDA baseline serves AC2's topic model by construction (§5.1.1
  // setup). Loading it from its own checkpoint could pair it with a
  // *different* model generation whenever AC2 itself was refit, so it
  // always adopts — Fit is free with an adopted model — and only the
  // checkpoint write rides along for standalone LoadModelCheckpoint users.
  LT_RETURN_IF_ERROR(timed_fit(lda_baseline.get(), /*allow_load=*/false));

  suite.algorithms.push_back(std::move(ac2));
  suite.algorithms.push_back(std::move(ac1));
  suite.algorithms.push_back(std::move(at));
  suite.algorithms.push_back(std::move(ht));
  suite.algorithms.push_back(std::move(dppr));
  suite.algorithms.push_back(std::move(pure_svd));
  suite.algorithms.push_back(std::move(lda_baseline));

  if (options.include_extra_baselines) {
    auto popular = std::make_unique<PopularityRecommender>();
    LT_RETURN_IF_ERROR(timed_fit(popular.get()));
    suite.algorithms.push_back(std::move(popular));
    auto knn = std::make_unique<ItemKnnRecommender>();
    LT_RETURN_IF_ERROR(timed_fit(knn.get()));
    suite.algorithms.push_back(std::move(knn));
    auto katz = std::make_unique<KatzRecommender>();
    LT_RETURN_IF_ERROR(timed_fit(katz.get()));
    suite.algorithms.push_back(std::move(katz));
  }
  return suite;
}

Status RegisterSuite(const AlgorithmSuite& suite, ServingEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  for (const auto& alg : suite.algorithms) {
    LT_RETURN_IF_ERROR(engine->AddModel(alg.get()));
  }
  return Status::OK();
}

Result<TopNReport> EvaluateTopN(const Recommender& rec, const Dataset& train,
                                const std::vector<UserId>& users, int k,
                                const CategoryOntology* ontology,
                                size_t num_threads,
                                SubgraphCache* subgraph_cache,
                                ServingEngine* engine) {
  TopNListOptions list_options;
  list_options.k = k;
  list_options.num_threads = num_threads;
  list_options.subgraph_cache = subgraph_cache;
  list_options.engine = engine;
  LT_ASSIGN_OR_RETURN(TopNLists lists, ComputeTopNLists(rec, users,
                                                        list_options));
  TopNReport report;
  report.algorithm = rec.name();
  report.popularity_at = PopularityAtN(train, lists, k);
  report.diversity = DiversityOfLists(train, lists, k);
  report.seconds_per_user = lists.seconds_per_user;
  if (ontology != nullptr && !train.item_categories.empty()) {
    report.similarity = SimilarityOfLists(train, *ontology, users, lists);
  }
  return report;
}

}  // namespace longtail
