#include "eval/user_study.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/split.h"
#include "util/random.h"

namespace longtail {

Result<UserStudyReport> RunUserStudy(const Recommender& rec,
                                     const Dataset& train,
                                     const UserStudyOptions& options) {
  if (train.item_genres.empty() || train.user_genre_prefs.empty() ||
      train.num_genres <= 0) {
    return Status::FailedPrecondition(
        "user study requires generator ground truth (item_genres and "
        "user_genre_prefs); real datasets have no simulated evaluators");
  }
  const std::vector<UserId> evaluators = SampleTestUsers(
      train, options.num_evaluators, options.min_degree, options.seed);
  if (evaluators.empty()) {
    return Status::FailedPrecondition("no eligible evaluators");
  }

  // Popularity percentile per item (fraction of items with strictly lower
  // popularity) — drives "knownness" and tail-ness.
  std::vector<ItemId> by_pop(train.num_items());
  std::iota(by_pop.begin(), by_pop.end(), 0);
  std::stable_sort(by_pop.begin(), by_pop.end(), [&](ItemId a, ItemId b) {
    return train.ItemPopularity(a) < train.ItemPopularity(b);
  });
  std::vector<double> pop_percentile(train.num_items(), 0.0);
  for (size_t r = 0; r < by_pop.size(); ++r) {
    pop_percentile[by_pop[r]] =
        static_cast<double>(r) / std::max<size_t>(1, by_pop.size() - 1);
  }

  UserStudyReport report;
  report.algorithm = rec.name();
  double pref_sum = 0.0;
  double novelty_sum = 0.0;
  double seren_sum = 0.0;
  double score_sum = 0.0;
  int evaluated = 0;

  for (UserId u : evaluators) {
    auto top = rec.RecommendTopK(u, options.k);
    if (!top.ok()) continue;
    const double* theta =
        &train.user_genre_prefs[static_cast<size_t>(u) * train.num_genres];
    const double theta_max =
        *std::max_element(theta, theta + train.num_genres);
    for (const ScoredItem& si : *top) {
      const ItemId item = si.item;
      // Preference: the generator's affinity, mapped to 1..5 like ratings.
      const double pref = theta[train.item_genres[item]] / theta_max;
      const double preference = 1.0 + 4.0 * pref;

      // Novelty: unknown-probability. Items the evaluator rated are known;
      // otherwise knownness rises logistically with popularity percentile.
      double novelty;
      if (train.HasRating(u, item)) {
        novelty = 0.0;
      } else {
        const double known =
            1.0 / (1.0 + std::exp(-options.known_steepness *
                                  (pop_percentile[item] -
                                   options.known_midpoint_percentile)));
        novelty = 1.0 - known;
      }

      // Serendipity: unknown AND in the tail AND matching taste.
      const double tailness = 1.0 - pop_percentile[item];
      const double serendipity =
          1.0 + 4.0 * novelty * (0.35 + 0.65 * pref) *
                    (0.30 + 0.70 * tailness);

      // Overall: mostly preference, plus a novelty/surprise bonus.
      const double score =
          1.0 + 4.0 * std::clamp(
                          0.62 * pref + 0.18 * novelty +
                              0.20 * novelty * pref,
                          0.0, 1.0);

      pref_sum += preference;
      novelty_sum += novelty;
      seren_sum += serendipity;
      score_sum += score;
      ++evaluated;
    }
  }
  if (evaluated == 0) {
    return Status::Internal("user study produced no recommendations");
  }
  report.preference = pref_sum / evaluated;
  report.novelty = novelty_sum / evaluated;
  report.serendipity = seren_sum / evaluated;
  report.score = score_sum / evaluated;
  report.items_evaluated = evaluated;
  return report;
}

}  // namespace longtail
