#include "eval/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "serving/serving_engine.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/serving_pool.h"
#include "util/timer.h"

namespace longtail {

Result<RecallCurve> EvaluateRecall(const Recommender& rec,
                                   const Dataset& train,
                                   const std::vector<TestCase>& test,
                                   const RecallProtocolOptions& options) {
  if (test.empty()) {
    return Status::InvalidArgument("recall protocol needs test cases");
  }
  if (options.max_n < 1) {
    return Status::InvalidArgument("max_n must be >= 1");
  }
  // Decoys must exist: items not rated by the user and not the test item.
  const int catalog = train.num_items();
  const int effective_decoys =
      std::min<int>(options.num_decoys, std::max(1, catalog - 2));

  const size_t num_cases = test.size();
  // hits[case][n] folded into per-case partial sums to stay thread-safe.
  std::vector<std::vector<double>> case_hits(
      num_cases, std::vector<double>(options.max_n, 0.0));
  std::vector<std::vector<double>> case_gains(
      num_cases, std::vector<double>(options.max_n, 0.0));
  std::vector<double> case_rr(num_cases, 0.0);
  std::atomic<int> failures{0};

  // Cases run through the batch engine in bounded chunks so peak memory
  // stays O(chunk * decoys) rather than O(num_cases * decoys) while the
  // engine still shares per-worker walk workspaces across a whole chunk.
  constexpr size_t kChunkCases = 1024;
  BatchOptions batch_options;
  batch_options.num_threads = options.num_threads;
  batch_options.subgraph_cache = options.subgraph_cache;
  std::vector<std::vector<ItemId>> candidates;
  std::vector<UserQuery> queries;
  for (size_t chunk_begin = 0; chunk_begin < num_cases;
       chunk_begin += kChunkCases) {
    const size_t chunk = std::min(kChunkCases, num_cases - chunk_begin);

    // Stage 1: sample each case's decoy candidates (deterministic per-case
    // RNG regardless of thread scheduling or chunking).
    candidates.assign(chunk, {});
    ParallelFor(
        chunk,
        [&](size_t i) {
          const size_t idx = chunk_begin + i;
          const TestCase& c = test[idx];
          Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + idx);
          // Sample decoys unrated by the user, excluding the test item.
          std::unordered_set<ItemId> decoys;
          decoys.reserve(effective_decoys * 2);
          int64_t attempts = 0;
          const int64_t max_attempts = 60LL * effective_decoys + 1000;
          while (static_cast<int>(decoys.size()) < effective_decoys &&
                 attempts < max_attempts) {
            ++attempts;
            const ItemId cand =
                static_cast<ItemId>(rng.NextUint64(train.num_items()));
            if (cand == c.item || train.HasRating(c.user, cand)) continue;
            decoys.insert(cand);
          }
          candidates[i].assign(decoys.begin(), decoys.end());
          candidates[i].push_back(c.item);
        },
        options.num_threads);

    // Stage 2: one batched scoring pass per chunk.
    queries.assign(chunk, {});
    for (size_t i = 0; i < chunk; ++i) {
      queries[i].user = test[chunk_begin + i].user;
      queries[i].score_items = candidates[i];
    }
    const std::vector<UserQueryResult> scored =
        rec.QueryBatch(queries, batch_options);

    // Stage 3: fold each case's scores into the recall/nDCG/MRR curves.
    ParallelFor(
        chunk,
        [&](size_t i) {
          const size_t idx = chunk_begin + i;
          if (!scored[i].status.ok()) {
            failures.fetch_add(1);
            return;
          }
          const std::vector<double>& scores = scored[i].scores;
          const double test_score = scores.back();
          int greater = 0;
          int ties = 0;
          for (size_t j = 0; j + 1 < scores.size(); ++j) {
            if (scores[j] > test_score) {
              ++greater;
            } else if (scores[j] == test_score) {
              ++ties;
            }
          }
          // Expected hit@N with the test item uniformly placed among its
          // ties: P(rank < N) = clamp(N - greater, 0, ties+1) / (ties+1).
          for (int n = 1; n <= options.max_n; ++n) {
            const double numer =
                std::clamp<double>(n - greater, 0.0, ties + 1.0);
            case_hits[idx][n - 1] = numer / (ties + 1.0);
          }
          // Ranking-quality extensions (single relevant item per case).
          // Exact expectation over the uniform tie placement: the item's
          // 0-based rank is greater + t for t uniform in [0, ties].
          double rr = 0.0;
          for (int t = 0; t <= ties; ++t) {
            const int rank = greater + t;
            rr += 1.0 / (rank + 1);
            const double gain = 1.0 / std::log2(rank + 2.0);
            for (int n = rank + 1; n <= options.max_n; ++n) {
              case_gains[idx][n - 1] += gain / (ties + 1.0);
            }
          }
          case_rr[idx] = rr / (ties + 1);
        },
        options.num_threads);
  }

  const int ok_cases = static_cast<int>(num_cases) - failures.load();
  if (ok_cases <= 0) {
    return Status::Internal("all recall test cases failed to score");
  }
  RecallCurve curve;
  curve.num_cases = ok_cases;
  curve.effective_decoys = effective_decoys;
  curve.recall_at.assign(options.max_n, 0.0);
  curve.ndcg_at.assign(options.max_n, 0.0);
  for (size_t idx = 0; idx < num_cases; ++idx) {
    for (int n = 0; n < options.max_n; ++n) {
      curve.recall_at[n] += case_hits[idx][n];
      curve.ndcg_at[n] += case_gains[idx][n];
    }
    curve.mrr += case_rr[idx];
  }
  for (double& v : curve.recall_at) v /= ok_cases;
  for (double& v : curve.ndcg_at) v /= ok_cases;
  curve.mrr /= ok_cases;
  return curve;
}

Result<TopNLists> ComputeTopNLists(const Recommender& rec,
                                   const std::vector<UserId>& users,
                                   const TopNListOptions& options) {
  if (users.empty()) {
    return Status::InvalidArgument("need at least one test user");
  }
  TopNLists out;
  out.lists.assign(users.size(), {});
  if (options.engine != nullptr) {
    // Engine path: the same queries flow through admission control and
    // the micro-batcher; per-query results are bit-identical to the
    // direct batch below.
    const std::string model = rec.name();
    if (!options.engine->HasModel(model)) {
      return Status::InvalidArgument("model '" + model +
                                     "' is not registered in the engine");
    }
    std::vector<ServeRequest> requests(users.size());
    for (size_t idx = 0; idx < users.size(); ++idx) {
      requests[idx].user = users[idx];
      requests[idx].top_k = options.k;
    }
    WallTimer timer;
    std::vector<UserQueryResult> responses =
        options.engine->QueryAll(model, requests);
    out.seconds_per_user = timer.ElapsedSeconds() / users.size();
    for (size_t idx = 0; idx < responses.size(); ++idx) {
      // Failed users (cold start) keep an empty list, as on the direct
      // path.
      if (responses[idx].status.ok()) {
        out.lists[idx] = std::move(responses[idx].top_k);
      }
    }
    return out;
  }
  BatchOptions batch_options;
  batch_options.num_threads = options.num_threads;
  batch_options.subgraph_cache = options.subgraph_cache;
  WallTimer timer;
  std::vector<Result<std::vector<ScoredItem>>> results =
      rec.RecommendBatch(users, options.k, batch_options);
  out.seconds_per_user = timer.ElapsedSeconds() / users.size();
  for (size_t idx = 0; idx < results.size(); ++idx) {
    // Failed users (cold start) keep an empty list, as before.
    if (results[idx].ok()) out.lists[idx] = std::move(results[idx]).value();
  }
  return out;
}

std::vector<double> PopularityAtN(const Dataset& train, const TopNLists& lists,
                                  int k) {
  std::vector<double> sum(k, 0.0);
  std::vector<int64_t> count(k, 0);
  for (const auto& list : lists.lists) {
    for (size_t pos = 0; pos < list.size() && pos < static_cast<size_t>(k);
         ++pos) {
      sum[pos] += train.ItemPopularity(list[pos].item);
      ++count[pos];
    }
  }
  std::vector<double> avg(k, 0.0);
  for (int n = 0; n < k; ++n) {
    avg[n] = count[n] > 0 ? sum[n] / count[n] : 0.0;
  }
  return avg;
}

double DiversityOfLists(const Dataset& train, const TopNLists& lists, int k) {
  std::unordered_set<ItemId> unique;
  for (const auto& list : lists.lists) {
    for (const ScoredItem& si : list) unique.insert(si.item);
  }
  const double ideal = std::min<double>(
      static_cast<double>(k) * lists.lists.size(), train.num_items());
  return ideal > 0 ? unique.size() / ideal : 0.0;
}

double UserItemSimilarity(const Dataset& train,
                          const CategoryOntology& ontology, UserId user,
                          ItemId item) {
  LT_CHECK(!train.item_categories.empty())
      << "dataset has no ontology categories";
  double best = 0.0;
  const int32_t cat_i = train.item_categories[item];
  for (ItemId j : train.UserItems(user)) {
    best = std::max(best,
                    ontology.PathSimilarity(cat_i, train.item_categories[j]));
    if (best >= 1.0) break;
  }
  return best;
}

double SimilarityOfLists(const Dataset& train,
                         const CategoryOntology& ontology,
                         const std::vector<UserId>& users,
                         const TopNLists& lists) {
  LT_CHECK_EQ(users.size(), lists.lists.size());
  double user_sum = 0.0;
  int64_t user_count = 0;
  for (size_t idx = 0; idx < users.size(); ++idx) {
    const auto& list = lists.lists[idx];
    if (list.empty()) continue;
    double item_sum = 0.0;
    for (const ScoredItem& si : list) {
      item_sum += UserItemSimilarity(train, ontology, users[idx], si.item);
    }
    user_sum += item_sum / list.size();
    ++user_count;
  }
  return user_count > 0 ? user_sum / user_count : 0.0;
}

}  // namespace longtail
