// Evaluation metrics of §5.1.3 / §5.2.
//
//  * Recall@N (Eq. 16): rank 1 held-out long-tail 5-star item among 1000
//    random unrated decoys; hit if it lands in the top N.
//  * Popularity@N: average rating-count of the item at each list position.
//  * Diversity (Eq. 17): unique recommended items over the ideal maximum.
//  * Similarity (Eq. 18–19): ontology path similarity between recommended
//    items and the user's rated items.
#ifndef LONGTAIL_EVAL_METRICS_H_
#define LONGTAIL_EVAL_METRICS_H_

#include <vector>

#include "core/recommender.h"
#include "data/dataset.h"
#include "data/ontology.h"
#include "data/split.h"
#include "util/status.h"

namespace longtail {

class ServingEngine;

// ---------------------------------------------------------------- Recall@N

struct RecallProtocolOptions {
  /// Decoy items sampled per test case (paper: 1000). Clamped when the
  /// catalog is too small; the effective count is reported back.
  int num_decoys = 1000;
  /// Largest N evaluated (paper plots N ∈ [1, 50]).
  int max_n = 50;
  uint64_t seed = 1001;
  /// 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Optional shared subgraph cache handed to the batch engine.
  SubgraphCache* subgraph_cache = nullptr;
};

struct RecallCurve {
  /// recall_at[n-1] = Recall@n for n in [1, max_n].
  std::vector<double> recall_at;
  /// ndcg_at[n-1] = nDCG@n: with a single relevant item per case this is
  /// mean over cases of 1/log2(rank+2) when the item lands in the top n.
  /// (Extension beyond the paper's recall-only protocol.)
  std::vector<double> ndcg_at;
  /// Mean reciprocal rank of the held-out item (extension).
  double mrr = 0.0;
  int num_cases = 0;
  int effective_decoys = 0;

  double At(int n) const { return recall_at.at(n - 1); }
  double NdcgAt(int n) const { return ndcg_at.at(n - 1); }
};

/// Runs the §5.2.1 protocol. Ties between the test item and decoys
/// contribute their expected hit probability (uniform random tie order),
/// keeping the metric deterministic yet unbiased.
Result<RecallCurve> EvaluateRecall(const Recommender& rec,
                                   const Dataset& train,
                                   const std::vector<TestCase>& test,
                                   const RecallProtocolOptions& options = {});

// ------------------------------------------------- Top-N list evaluations

struct TopNListOptions {
  /// List length per user (paper: 10).
  int k = 10;
  /// 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Optional shared subgraph cache handed to the batch engine.
  SubgraphCache* subgraph_cache = nullptr;
  /// When set, lists are served through this ServingEngine (QueryAll
  /// against the model registered under the recommender's name() —
  /// admission control, micro-batching and the engine's own
  /// cache/pool/thread configuration apply; `num_threads` and
  /// `subgraph_cache` above are ignored). Results are bit-identical to
  /// the direct path (tests/serving_engine_test.cc).
  ServingEngine* engine = nullptr;
};

/// Top-k lists for each user (empty list if the recommender failed for that
/// user, e.g. cold start), plus mean per-user wall-clock seconds.
struct TopNLists {
  std::vector<std::vector<ScoredItem>> lists;
  double seconds_per_user = 0.0;
};

/// Computes recommendation lists for `users`, timed.
Result<TopNLists> ComputeTopNLists(const Recommender& rec,
                                   const std::vector<UserId>& users,
                                   const TopNListOptions& options = {});

/// Popularity@N: avg_popularity[n-1] is the mean rating-count of the n-th
/// recommended item over users whose list reaches position n (Figure 6).
std::vector<double> PopularityAtN(const Dataset& train, const TopNLists& lists,
                                  int k);

/// Diversity (Eq. 17): |∪_u R_u| / min(k·|U|, |I|). The min handles the
/// MovieLens case where k·|U| exceeds the catalog (Table 2).
double DiversityOfLists(const Dataset& train, const TopNLists& lists, int k);

/// Similarity (Eq. 19) of a single recommended item to the user's rated
/// set: max over rated items of the ontology path similarity.
double UserItemSimilarity(const Dataset& train,
                          const CategoryOntology& ontology, UserId user,
                          ItemId item);

/// Mean over users of the mean list-item similarity (Table 3).
double SimilarityOfLists(const Dataset& train,
                         const CategoryOntology& ontology,
                         const std::vector<UserId>& users,
                         const TopNLists& lists);

}  // namespace longtail

#endif  // LONGTAIL_EVAL_METRICS_H_
