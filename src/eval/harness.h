// Experiment harness: builds and fits the paper's seven-algorithm suite
// (AC2, AC1, AT, HT, DPPR, PureSVD, LDA — §5.1.1) with shared
// configuration, and bundles the per-table evaluations the benches print.
#ifndef LONGTAIL_EVAL_HARNESS_H_
#define LONGTAIL_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/absorbing_cost.h"
#include "baselines/pagerank.h"
#include "baselines/pure_svd.h"
#include "core/recommender.h"
#include "data/ontology.h"
#include "eval/metrics.h"

namespace longtail {

class ServingEngine;

/// Shared configuration for the full algorithm suite.
struct SuiteOptions {
  GraphWalkOptions walk;
  double user_jump_cost = 0.0;  // C of Eq. 9; <= 0 → mean entropy (paper)
  LdaOptions lda;
  PureSvdOptions svd;
  PageRankOptions ppr;
  /// Adds MostPopular and ItemKNN beyond the paper's seven.
  bool include_extra_baselines = false;
  /// Fit-or-load: when non-empty, BuildAndFitSuite restores any algorithm
  /// with a loadable checkpoint at `<checkpoint_dir>/<name>.ckpt` instead
  /// of fitting it, and writes a checkpoint back after every fresh Fit —
  /// so the second run of the same pipeline cold-starts from disk. A
  /// checkpoint that fails to load (missing, corrupt, fitted on another
  /// dataset) silently falls back to Fit. The directory must exist.
  ///
  /// A loaded checkpoint restores the *saved* configuration — walk/solver
  /// parameters, factors, topics — which is what bit-identical serving
  /// requires; the walk/lda/svd/ppr fields above are NOT re-applied to a
  /// loaded model. Hyperparameter sweeps must therefore use one directory
  /// per configuration (or clear it), otherwise every run after the first
  /// silently re-serves the first run's models.
  std::string checkpoint_dir;
};

/// A fitted suite, in the paper's reporting order.
struct AlgorithmSuite {
  std::vector<std::unique_ptr<Recommender>> algorithms;
  /// Wall-clock seconds to readiness per algorithm, keyed by reporting
  /// name: Fit() time, or checkpoint load time for algorithms restored
  /// from `SuiteOptions::checkpoint_dir`.
  std::vector<std::pair<std::string, double>> fit_seconds;
  /// Names restored from a checkpoint instead of fitted.
  std::vector<std::string> loaded_from_checkpoint;

  /// Convenience lookup by reporting name; nullptr if absent.
  const Recommender* Find(const std::string& name) const;
  /// Fit() seconds for a reporting name; 0 if unknown.
  double FitSeconds(const std::string& name) const;
  /// True if the named algorithm was restored from a checkpoint.
  bool WasLoadedFromCheckpoint(const std::string& name) const;
};

/// Builds AC2, AC1, AT, HT, DPPR, PureSVD, LDA (plus extras when enabled)
/// and fits each on `train` — or restores it from
/// `SuiteOptions::checkpoint_dir` when a matching checkpoint exists. The
/// LDA baseline reuses the model AC2 trained, mirroring the paper's setup
/// where AC2's topics and the LDA recommender come from the same
/// inference.
Result<AlgorithmSuite> BuildAndFitSuite(const Dataset& train,
                                        const SuiteOptions& options);

/// One row of Tables 2/3/5 + a Figure 6 series for a fitted algorithm.
struct TopNReport {
  std::string algorithm;
  std::vector<double> popularity_at;  // Figure 6 series
  double diversity = 0.0;             // Table 2
  double similarity = 0.0;            // Table 3 (0 when no ontology given)
  double seconds_per_user = 0.0;      // Table 5
};

/// Evaluates one recommender's top-k lists on all §5.2.2-style metrics.
/// `subgraph_cache` (optional) is handed to the batch engine; sharing one
/// cache across the suite lets AT/AC1/AC2 reuse each other's extractions.
/// `engine` (optional) serves the lists through a ServingEngine instead of
/// a direct batch — the rec must be registered in it under its name(); see
/// TopNListOptions::engine.
Result<TopNReport> EvaluateTopN(const Recommender& rec, const Dataset& train,
                                const std::vector<UserId>& users, int k,
                                const CategoryOntology* ontology,
                                size_t num_threads = 0,
                                SubgraphCache* subgraph_cache = nullptr,
                                ServingEngine* engine = nullptr);

/// Registers every fitted suite algorithm into `engine` (borrowed — the
/// suite must outlive the engine), keyed by reporting name. The standard
/// bridge from BuildAndFitSuite to an online ServingEngine.
Status RegisterSuite(const AlgorithmSuite& suite, ServingEngine* engine);

}  // namespace longtail

#endif  // LONGTAIL_EVAL_HARNESS_H_
