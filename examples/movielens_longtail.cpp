// MovieLens-scale walkthrough: generate (or load) a MovieLens-like corpus,
// hold out long-tail 5-star ratings, fit AC2 and PureSVD, and compare their
// long-tail recall and the popularity of what they recommend.
//
//   $ ./movielens_longtail [--scale 0.25] [--ratings_file path/ratings.dat]
#include <cstdio>

#include "baselines/pure_svd.h"
#include "core/absorbing_cost.h"
#include "data/generator.h"
#include "data/longtail_stats.h"
#include "data/movielens_io.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "util/flags.h"

using namespace longtail;

int main(int argc, char** argv) {
  double scale = 0.2;
  std::string ratings_file;
  FlagParser flags;
  flags.AddDouble("scale", &scale, "synthetic MovieLens-like scale");
  flags.AddString("ratings_file", &ratings_file,
                  "optional real ratings.dat (MovieLens-1M format)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  Dataset dataset;
  if (!ratings_file.empty()) {
    auto loaded = LoadMovieLensRatings(ratings_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else {
    auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(scale));
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(data).value().dataset;
  }

  const LongTailStats stats = ComputeLongTailStats(dataset);
  std::printf("corpus: %d users, %d items, %lld ratings; %.0f%% of items "
              "form the 20%%-of-ratings tail\n",
              dataset.num_users(), dataset.num_items(),
              static_cast<long long>(dataset.num_ratings()),
              100.0 * stats.tail_item_fraction);

  LongTailSplitOptions split_options;
  split_options.num_test_cases = 300;
  auto split = MakeLongTailSplit(dataset, split_options);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("held out %zu long-tail 5-star ratings as test cases\n\n",
              split->test.size());

  // AC2: the paper's best variant (topic-entropy absorbing cost).
  AbsorbingCostOptions ac_options;
  ac_options.lda.num_topics = 16;
  ac_options.lda.iterations = 50;
  AbsorbingCostRecommender ac2(EntropySource::kTopicBased, ac_options);
  if (Status s = ac2.Fit(split->train); !s.ok()) {
    std::fprintf(stderr, "AC2 fit: %s\n", s.ToString().c_str());
    return 1;
  }
  // PureSVD: the strongest matrix-factorization baseline in the paper.
  PureSvdRecommender svd;
  if (Status s = svd.Fit(split->train); !s.ok()) {
    std::fprintf(stderr, "PureSVD fit: %s\n", s.ToString().c_str());
    return 1;
  }

  RecallProtocolOptions recall_options;
  recall_options.num_decoys = 500;
  recall_options.max_n = 50;
  for (const Recommender* rec :
       std::initializer_list<const Recommender*>{&ac2, &svd}) {
    auto curve = EvaluateRecall(*rec, split->train, split->test,
                                recall_options);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s recall@10=%.3f recall@50=%.3f\n", rec->name().c_str(),
                curve->At(10), curve->At(50));
  }

  // Show one user's lists side by side with item popularity.
  const std::vector<UserId> users = SampleTestUsers(split->train, 1, 30, 9);
  if (!users.empty()) {
    const UserId u = users[0];
    std::printf("\nuser %d (rated %d items) -- top-5 lists:\n", u,
                split->train.UserDegree(u));
    for (const Recommender* rec :
         std::initializer_list<const Recommender*>{&ac2, &svd}) {
      auto top = rec->RecommendTopK(u, 5);
      if (!top.ok()) continue;
      std::printf("  %-8s:", rec->name().c_str());
      for (const auto& si : *top) {
        std::printf(" item%d(pop=%d)", si.item,
                    split->train.ItemPopularity(si.item));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nAC2's lists sit visibly deeper in the tail (compare the pop= "
      "counts);\nits recall edge over PureSVD grows with corpus size — see "
      "bench_fig5_recall\nand EXPERIMENTS.md.\n");
  return 0;
}
