// Fit → save → restart → serve: the model checkpointing walkthrough.
//
// Phase 1 plays the offline trainer: it fits a mixed suite (AC2 with its
// LDA topics, HT, PureSVD, ItemKNN) on a synthetic corpus and persists the
// dataset plus one checkpoint per model. Phase 2 plays a freshly restarted
// serving process: it reloads the dataset, cold-starts every model through
// the ModelRegistry — Fit never runs — and verifies the loaded models
// answer the same queries bit-identically to the fitted originals.
//
//   $ ./serve_from_checkpoint [work_dir]      # default ./serve_ckpt_demo
//
// Exits non-zero on any parity mismatch, so ctest runs it as a smoke test.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/item_knn.h"
#include "baselines/pure_svd.h"
#include "core/absorbing_cost.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "serving/model_registry.h"
#include "util/timer.h"

using namespace longtail;

namespace {

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "serve_ckpt_demo";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // A small long-tailed corpus; deterministic given the seed.
  SyntheticSpec spec;
  spec.name = "serve-demo";
  spec.num_users = 300;
  spec.num_items = 220;
  spec.mean_user_degree = 14;
  spec.min_user_degree = 4;
  spec.num_genres = 8;
  spec.seed = 20120530;
  auto generated = GenerateSyntheticData(spec);
  if (!generated.ok()) return Fail("generate", generated.status());
  const Dataset& train = generated->dataset;

  const std::vector<UserId> probe_users = {3, 17, 42, 113, 256};
  constexpr int kTopK = 10;

  // ---- Phase 1: offline trainer — fit, record goldens, persist. -------
  std::printf("== phase 1: fit and checkpoint (%d users, %d items) ==\n",
              train.num_users(), train.num_items());

  AbsorbingCostOptions ac2_options;
  ac2_options.lda.num_topics = 8;
  ac2_options.lda.iterations = 30;
  std::vector<std::unique_ptr<Recommender>> fitted;
  fitted.push_back(std::make_unique<AbsorbingCostRecommender>(
      EntropySource::kTopicBased, ac2_options));
  fitted.push_back(std::make_unique<HittingTimeRecommender>());
  fitted.push_back(
      std::make_unique<PureSvdRecommender>(PureSvdOptions{.num_factors = 16}));
  fitted.push_back(std::make_unique<ItemKnnRecommender>());

  std::map<std::string, std::vector<Result<std::vector<ScoredItem>>>> golden;
  std::map<std::string, double> fit_seconds;
  for (const auto& rec : fitted) {
    WallTimer timer;
    if (Status s = rec->Fit(train); !s.ok()) return Fail("fit", s);
    fit_seconds[rec->name()] = timer.ElapsedSeconds();
    golden[rec->name()] = rec->RecommendBatch(probe_users, kTopK);
    const std::string path = dir + "/" + rec->name() + ".ckpt";
    if (Status s = SaveModelCheckpoint(*rec, path); !s.ok()) {
      return Fail("save", s);
    }
    std::printf("  %-10s fit %.3fs -> %s\n", rec->name().c_str(),
                fit_seconds[rec->name()], path.c_str());
  }
  if (Status s = SaveDatasetBinary(train, dir + "/train.bin"); !s.ok()) {
    return Fail("save dataset", s);
  }
  fitted.clear();  // The trainer process "exits".

  // ---- Phase 2: restarted server — reload, cold-start, verify. -------
  std::printf("\n== phase 2: restart, load, serve (no Fit) ==\n");
  auto reloaded = LoadDatasetBinary(dir + "/train.bin");
  if (!reloaded.ok()) return Fail("load dataset", reloaded.status());

  int mismatches = 0;
  for (const auto& [name, want] : golden) {
    const std::string path = dir + "/" + name + ".ckpt";
    WallTimer timer;
    auto loaded = LoadModelCheckpoint(path, *reloaded);
    if (!loaded.ok()) return Fail("load checkpoint", loaded.status());
    const double load_seconds = timer.ElapsedSeconds();
    const auto got = (*loaded)->RecommendBatch(probe_users, kTopK);

    bool identical = got.size() == want.size();
    for (size_t i = 0; identical && i < got.size(); ++i) {
      identical = got[i].ok() == want[i].ok();
      if (!identical || !got[i].ok()) continue;
      const auto& a = *want[i];
      const auto& b = *got[i];
      identical = a.size() == b.size();
      for (size_t k = 0; identical && k < a.size(); ++k) {
        identical = a[k].item == b[k].item && a[k].score == b[k].score;
      }
    }
    if (!identical) ++mismatches;
    const double fit_s = fit_seconds[name];
    std::printf("  %-10s load %.4fs (%.0fx faster than refit)  parity %s\n",
                name.c_str(), load_seconds,
                load_seconds > 0 ? fit_s / load_seconds : 0.0,
                identical ? "OK" : "MISMATCH");
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "\n%d model(s) drifted across save/load\n",
                 mismatches);
    return 1;
  }
  std::printf(
      "\nEvery model served bit-identical recommendations after the\n"
      "restart -- the serving process cold-started from checkpoints\n"
      "without repeating the offline fitting cost.\n");
  return 0;
}
