// Quickstart: build a tiny rating dataset, fit the Absorbing Time
// recommender, and print long-tail recommendations for one user.
//
// This is the paper's Figure 2 example end to end: user U5 likes the action
// movies M2/M3, and the graph walk surfaces the niche action movie M4 that
// classic popularity-driven CF would bury.
//
//   $ ./quickstart
#include <cstdio>

#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/dataset.h"

using namespace longtail;

int main() {
  // Ratings from Figure 2 of the paper (5 users, 6 movies, 1-5 stars).
  const char* movie_names[] = {"Patton",      "Gandhi",  "First Blood",
                               "Highlander",  "Ben-Hur", "The Seventh Scroll"};
  std::vector<RatingEntry> ratings = {
      {0, 0, 5}, {0, 1, 3}, {0, 4, 3}, {0, 5, 5},             // U1
      {1, 0, 5}, {1, 1, 4}, {1, 2, 5}, {1, 4, 4}, {1, 5, 5},  // U2
      {2, 0, 4}, {2, 1, 5}, {2, 2, 4},                        // U3
      {3, 2, 5}, {3, 3, 5},                                   // U4
      {4, 1, 4}, {4, 2, 5},                                   // U5
  };
  auto dataset = Dataset::Create(/*num_users=*/5, /*num_items=*/6,
                                 std::move(ratings));
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset error: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // The Absorbing Time recommender (Algorithm 1): the query user's rated
  // items become absorbing states; items are ranked by how quickly a random
  // walker starting from them falls into that set.
  AbsorbingTimeRecommender recommender;
  if (Status s = recommender.Fit(*dataset); !s.ok()) {
    std::fprintf(stderr, "fit error: %s\n", s.ToString().c_str());
    return 1;
  }

  const UserId query_user = 4;  // U5, who rated Gandhi and First Blood.
  auto top = recommender.RecommendTopK(query_user, 4);
  if (!top.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }

  std::printf("Recommendations for U5 (rated: Gandhi=4, First Blood=5):\n");
  for (const ScoredItem& item : *top) {
    std::printf("  %-20s absorbing time %.2f  (rated by %d user%s)\n",
                movie_names[item.item], -item.score,
                dataset->ItemPopularity(item.item),
                dataset->ItemPopularity(item.item) == 1 ? "" : "s");
  }
  std::printf(
      "\nThe niche 'Highlander' (one rating, same taste community) ranks\n"
      "first -- the long-tail behaviour of Figure 2 in the paper.\n");
  return 0;
}
