// Checkpoint → ServingEngine → concurrent mixed-algorithm traffic: the
// serving-engine walkthrough.
//
// Phase 1 plays the offline trainer: it fits a mixed suite (AC2 with its
// LDA topics, AT, HT) on a synthetic corpus, records golden answers, and
// persists the dataset plus one checkpoint per model. Phase 2 plays a
// freshly restarted serving process: it reloads the dataset, cold-starts a
// ServingEngine straight from the checkpoint directory
// (LoadCheckpointDirIntoEngine — Fit never runs), then drives concurrent
// client threads submitting mixed-model traffic through the engine's
// admission-controlled micro-batcher: async futures, blocking queries, a
// shared single-flight SubgraphCache, and a deliberate flood against a
// tiny queue to show fail-fast rejection.
//
//   $ ./serve_engine [work_dir]      # default ./serve_engine_demo
//
// Exits non-zero on any parity mismatch or unexpected failure, so ctest
// runs it as a smoke test.
#include <cstdio>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "graph/subgraph_cache.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"

using namespace longtail;

namespace {

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

bool Identical(const std::vector<ScoredItem>& a,
               const std::vector<ScoredItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k].item != b[k].item || a[k].score != b[k].score) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "serve_engine_demo";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  SyntheticSpec spec;
  spec.name = "engine-demo";
  spec.num_users = 260;
  spec.num_items = 200;
  spec.mean_user_degree = 12;
  spec.min_user_degree = 4;
  spec.num_genres = 8;
  spec.seed = 20120531;
  auto generated = GenerateSyntheticData(spec);
  if (!generated.ok()) return Fail("generate", generated.status());
  const Dataset& train = generated->dataset;

  const std::vector<UserId> probe_users = {2, 19, 44, 101, 233};
  constexpr int kTopK = 10;

  // ---- Phase 1: offline trainer — fit, record goldens, checkpoint. ----
  std::printf("== phase 1: fit and checkpoint (%d users, %d items) ==\n",
              train.num_users(), train.num_items());
  AbsorbingCostOptions ac2_options;
  ac2_options.lda.num_topics = 8;
  ac2_options.lda.iterations = 30;
  std::vector<std::unique_ptr<Recommender>> fitted;
  fitted.push_back(std::make_unique<AbsorbingCostRecommender>(
      EntropySource::kTopicBased, ac2_options));
  fitted.push_back(std::make_unique<AbsorbingTimeRecommender>());
  fitted.push_back(std::make_unique<HittingTimeRecommender>());

  std::map<std::string, std::vector<std::vector<ScoredItem>>> golden;
  for (const auto& rec : fitted) {
    if (Status s = rec->Fit(train); !s.ok()) return Fail("fit", s);
    auto lists = rec->RecommendBatch(probe_users, kTopK);
    std::vector<std::vector<ScoredItem>> want;
    for (auto& list : lists) {
      if (!list.ok()) return Fail("golden", list.status());
      want.push_back(std::move(list).value());
    }
    golden[rec->name()] = std::move(want);
    const std::string path = dir + "/" + rec->name() + ".ckpt";
    if (Status s = SaveModelCheckpoint(*rec, path); !s.ok()) {
      return Fail("save", s);
    }
    std::printf("  %-4s checkpointed -> %s\n", rec->name().c_str(),
                path.c_str());
  }
  if (Status s = SaveDatasetBinary(train, dir + "/train.bin"); !s.ok()) {
    return Fail("save dataset", s);
  }
  fitted.clear();  // The trainer process "exits".

  // ---- Phase 2: restarted server — engine straight from disk. ---------
  std::printf("\n== phase 2: cold-start engine from %s (no Fit) ==\n",
              dir.c_str());
  auto reloaded = LoadDatasetBinary(dir + "/train.bin");
  if (!reloaded.ok()) return Fail("load dataset", reloaded.status());

  SubgraphCache cache;  // shared, single-flight coalescing
  ServingEngineOptions options;
  options.max_batch_size = 16;
  options.flush_interval_ticks = 1;  // 1 ms batching window
  options.max_queue_depth = 512;
  options.subgraph_cache = &cache;
  ServingEngine engine(options);  // background dispatcher on
  auto loaded = LoadCheckpointDirIntoEngine(dir, *reloaded, &engine);
  if (!loaded.ok()) return Fail("load checkpoints", loaded.status());
  std::printf("  models online:");
  for (const std::string& name : *loaded) std::printf(" %s", name.c_str());
  std::printf("\n");
  if (loaded->size() != golden.size()) {
    std::fprintf(stderr, "expected %zu models, loaded %zu\n", golden.size(),
                 loaded->size());
    return 1;
  }

  // Concurrent mixed-algorithm traffic: every client thread interleaves
  // the three models over a slice of users — async futures for bulk
  // traffic, a blocking Query sprinkled in — all through one engine and
  // one coalescing cache.
  std::printf("\n== mixed traffic: %d client threads x %d requests ==\n", 4,
              60);
  std::atomic<int> errors{0};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string> names(loaded->begin(), loaded->end());
      std::vector<std::future<UserQueryResult>> futures;
      for (int i = 0; i < 60; ++i) {
        ServeRequest r;
        r.user = (c * 61 + i * 7) % reloaded->num_users();
        r.top_k = kTopK;
        r.deadline_tick = engine.NowTicks() + 2000;  // generous: 2 s
        const std::string& model = names[i % names.size()];
        if (i % 10 == 9) {
          // Blocking path.
          const UserQueryResult got = engine.Query(model, r);
          if (!got.status.ok()) errors.fetch_add(1);
          served.fetch_add(1);
        } else {
          futures.push_back(engine.Submit(model, r));
        }
      }
      for (auto& f : futures) {
        const UserQueryResult got = f.get();
        if (!got.status.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       got.status.ToString().c_str());
          errors.fetch_add(1);
        }
        served.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  const EngineStats traffic = engine.Stats();
  const SubgraphCacheStats cache_stats = cache.Stats();
  std::printf(
      "  %llu served, %llu batches, %.2f mean queue ticks (max %llu)\n",
      static_cast<unsigned long long>(served.load()),
      static_cast<unsigned long long>(traffic.batches_executed),
      traffic.MeanQueueTicks(),
      static_cast<unsigned long long>(traffic.queue_ticks_max));
  std::printf(
      "  cache: %llu extractions for %llu walk lookups "
      "(%.0f%% hit, %llu coalesced)\n",
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(cache_stats.hits + cache_stats.misses +
                                      cache_stats.coalesced_waits),
      100.0 * cache_stats.HitRate(),
      static_cast<unsigned long long>(cache_stats.coalesced_waits));

  // Golden parity: the engine must serve exactly what the fitted models
  // answered before the restart.
  std::printf("\n== golden parity through the engine ==\n");
  int mismatches = 0;
  for (const auto& [name, want] : golden) {
    int model_mismatches = 0;
    for (size_t i = 0; i < probe_users.size(); ++i) {
      ServeRequest r;
      r.user = probe_users[i];
      r.top_k = kTopK;
      const UserQueryResult got = engine.Query(name, r);
      if (!got.status.ok() || !Identical(want[i], got.top_k)) {
        ++model_mismatches;
      }
    }
    mismatches += model_mismatches;
    std::printf("  %-4s parity %s\n", name.c_str(),
                model_mismatches == 0 ? "OK" : "MISMATCH");
  }

  // Admission control: flood a tiny-queue engine without draining it —
  // the overflow fails fast with ResourceExhausted instead of piling up.
  std::printf("\n== admission control: flood a depth-8 queue ==\n");
  int rejected = 0;
  {
    ServingEngineOptions tiny;
    tiny.max_queue_depth = 8;
    tiny.max_batch_size = 8;
    tiny.subgraph_cache = &cache;
    tiny.start_dispatcher = false;  // nothing drains during the flood
    ServingEngine flood_engine(tiny);
    if (Status s = flood_engine.AddCheckpoint(dir + "/HT.ckpt", *reloaded);
        !s.ok()) {
      return Fail("flood engine checkpoint", s);
    }
    std::vector<std::future<UserQueryResult>> futures;
    for (int i = 0; i < 32; ++i) {
      ServeRequest r;
      r.user = i % reloaded->num_users();
      r.top_k = kTopK;
      futures.push_back(flood_engine.Submit("HT", r));
    }
    flood_engine.PumpUntilIdle();
    for (auto& f : futures) {
      const UserQueryResult got = f.get();
      if (got.status.code() == StatusCode::kResourceExhausted) ++rejected;
    }
    std::printf("  32 submitted, %d rejected fast, %d served\n", rejected,
                32 - rejected);
    if (rejected != 24) {
      std::fprintf(stderr, "expected 24 rejections, saw %d\n", rejected);
      return 1;
    }
  }

  if (errors.load() > 0 || mismatches > 0) {
    std::fprintf(stderr, "\n%d traffic errors, %d parity mismatches\n",
                 errors.load(), mismatches);
    return 1;
  }
  std::printf(
      "\nThe restarted engine served concurrent mixed-algorithm traffic\n"
      "bit-identically to the fitted originals: checkpoints for cold\n"
      "start, micro-batches for throughput, a coalescing cache for\n"
      "duplicate walks, and fail-fast admission control under flood.\n");
  return 0;
}
