// Bookstore scenario (the paper's Douban evaluation): a sparse book-rating
// corpus with a category ontology. Fits AC1 and shows how ontology path
// similarity (Eq. 18-19) certifies that the recommended tail books match
// the reader's shelves.
//
//   $ ./bookstore_douban [--scale 0.01]
#include <cstdio>

#include "core/absorbing_cost.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "util/flags.h"

using namespace longtail;

int main(int argc, char** argv) {
  double scale = 0.01;
  FlagParser flags;
  flags.AddDouble("scale", &scale, "Douban-like scale (1.0 = 383k users)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  auto data = GenerateSyntheticData(SyntheticSpec::DoubanLike(scale));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& books = data->dataset;
  const CategoryOntology& ontology = data->ontology;
  std::printf("bookstore: %d readers, %d books, %lld ratings "
              "(density %.3f%%)\n\n",
              books.num_users(), books.num_items(),
              static_cast<long long>(books.num_ratings()),
              100.0 * books.Density());

  AbsorbingCostRecommender ac1(EntropySource::kItemBased);
  if (Status s = ac1.Fit(books); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::vector<UserId> readers = SampleTestUsers(books, 3, 15, 11);
  for (UserId reader : readers) {
    std::printf("reader %d -- shelves (%d books), e.g.:\n", reader,
                books.UserDegree(reader));
    const auto shelf = books.UserItems(reader);
    for (size_t k = 0; k < std::min<size_t>(3, shelf.size()); ++k) {
      std::printf("    %s\n",
                  ontology.LeafPathString(books.item_categories[shelf[k]])
                      .c_str());
    }
    auto top = ac1.RecommendTopK(reader, 5);
    if (!top.ok()) continue;
    std::printf("  AC1 recommends:\n");
    for (const auto& si : *top) {
      const double sim = UserItemSimilarity(books, ontology, reader, si.item);
      std::printf("    pop=%-4d sim=%.2f  %s\n",
                  books.ItemPopularity(si.item), sim,
                  ontology.LeafPathString(books.item_categories[si.item])
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("Low-popularity books from the reader's own category branches\n"
              "-- long-tail recommendations that still match taste.\n");
  return 0;
}
