// Side-by-side comparison of all seven algorithms (plus optional extras)
// for a single user: what each one recommends, how popular those items are,
// and how long each query takes — a compact tour of the whole library.
//
//   $ ./compare_algorithms [--scale 0.15] [--user 42] [--extras]
#include <algorithm>
#include <cstdio>

#include "data/generator.h"
#include "data/split.h"
#include "eval/harness.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace longtail;

int main(int argc, char** argv) {
  double scale = 0.15;
  int user_flag = -1;
  bool extras = false;
  FlagParser flags;
  flags.AddDouble("scale", &scale, "MovieLens-like scale");
  flags.AddInt("user", &user_flag, "query user id (-1 = auto-pick)");
  flags.AddBool("extras", &extras, "include MostPopular and ItemKNN");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }

  auto data = GenerateSyntheticData(SyntheticSpec::MovieLensLike(scale));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data->dataset;

  SuiteOptions options;
  options.lda.num_topics = 12;
  options.lda.iterations = 40;
  options.svd.num_factors = 24;
  options.include_extra_baselines = extras;
  std::printf("fitting the algorithm suite on %d users x %d items...\n",
              dataset.num_users(), dataset.num_items());
  auto suite = BuildAndFitSuite(dataset, options);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }

  UserId user = user_flag;
  if (user < 0 || user >= dataset.num_users()) {
    const auto picked = SampleTestUsers(dataset, 1, 25, 123);
    if (picked.empty()) {
      std::fprintf(stderr, "no user with enough ratings\n");
      return 1;
    }
    user = picked[0];
  }

  // Show the user's taste profile from the generator's ground truth.
  std::printf("\nquery user %d rated %d items; favourite genres:",
              user, dataset.UserDegree(user));
  if (!dataset.user_genre_prefs.empty()) {
    const double* theta =
        &dataset.user_genre_prefs[static_cast<size_t>(user) *
                                  dataset.num_genres];
    std::vector<std::pair<double, int>> ranked;
    for (int g = 0; g < dataset.num_genres; ++g) {
      ranked.push_back({theta[g], g});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (int s = 0; s < 2 && s < static_cast<int>(ranked.size()); ++s) {
      std::printf(" G%d(%.0f%%)", ranked[s].second, 100 * ranked[s].first);
    }
  }
  std::printf("\n\n%-12s %-10s %s\n", "algorithm", "ms/query",
              "top-5 (item:popularity)");
  for (const auto& alg : suite->algorithms) {
    WallTimer timer;
    auto top = alg->RecommendTopK(user, 5);
    const double ms = timer.ElapsedMillis();
    if (!top.ok()) {
      std::printf("%-12s %-10s error: %s\n", alg->name().c_str(), "-",
                  top.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %-10.2f", alg->name().c_str(), ms);
    for (const auto& si : *top) {
      std::printf(" %d:%d", si.item, dataset.ItemPopularity(si.item));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading guide: the graph methods (AC2/AC1/AT/HT) and DPPR surface\n"
      "items with low popularity counts; PureSVD/LDA (and MostPopular)\n"
      "favour the head of the catalog.\n");
  return 0;
}
