// The deployable HTTP serving binary: checkpoint directory in, JSON API
// out. This is the end of the fit → checkpoint → restart → serve story —
// a process that never trains, only loads and answers.
//
//   $ ./serve_http                         # bootstrap demo corpus + serve
//   $ ./serve_http --dir=ckpts --port=8080 # serve an existing fleet
//
// Boot order (the readiness story /readyz tells):
//   1. bind the port and start answering — /healthz 200, /readyz 503,
//      engine endpoints refuse with the 503 envelope;
//   2. load the dataset + every *.ckpt through LoadCheckpointDirIntoEngine;
//   3. MarkReady — /readyz flips to 200 and traffic flows.
//
// With --dir unset the binary first plays the offline trainer: it fits AT
// and HT walkers on a synthetic corpus and persists dataset + checkpoints
// under --work_dir, then serves from that directory via the cold-start
// path (the served models are the *loaded* ones; Fit never touches them).
//
// Shutdown: SIGTERM/SIGINT trigger HttpServer::Stop — graceful drain,
// in-flight requests answered, exit 0. CI's smoke step drives exactly
// this: boot, curl the five endpoints, SIGTERM, assert clean exit.
//
// --self_check runs the five-endpoint probe in-process (own HttpClient
// against the bound port) and exits 0/1 — the ctest smoke.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/absorbing_time.h"
#include "core/hitting_time.h"
#include "data/generator.h"
#include "data/serialization.h"
#include "http/http_client.h"
#include "http/http_server.h"
#include "http/serving_http.h"
#include "serving/model_registry.h"
#include "serving/serving_engine.h"
#include "util/flags.h"

using namespace longtail;

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_release); }

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

/// Offline-trainer bootstrap: synthetic corpus + AT/HT checkpoints.
Status Bootstrap(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir);

  SyntheticSpec spec;
  spec.name = "serve-http-demo";
  spec.num_users = 200;
  spec.num_items = 150;
  spec.mean_user_degree = 12;
  spec.min_user_degree = 4;
  spec.num_genres = 6;
  spec.seed = 20120826;
  auto generated = GenerateSyntheticData(spec);
  LT_RETURN_IF_ERROR(generated.status());
  const Dataset& train = generated.value().dataset;
  LT_RETURN_IF_ERROR(SaveDatasetBinary(train, dir + "/dataset.bin"));

  AbsorbingTimeRecommender at;
  LT_RETURN_IF_ERROR(at.Fit(train));
  LT_RETURN_IF_ERROR(SaveModelCheckpoint(at, dir + "/at.ckpt"));
  HittingTimeRecommender ht;
  LT_RETURN_IF_ERROR(ht.Fit(train));
  LT_RETURN_IF_ERROR(SaveModelCheckpoint(ht, dir + "/ht.ckpt"));
  std::printf("bootstrapped demo fleet in %s (dataset + at.ckpt + ht.ckpt)\n",
              dir.c_str());
  return Status::OK();
}

/// The ctest/CI probe: all five endpoints against the live server.
int SelfCheck(uint16_t port, const std::string& model) {
  HttpClient client;
  if (Status s = client.Connect("127.0.0.1", port); !s.ok()) {
    return Fail("self_check connect", s);
  }
  struct Probe {
    const char* method;
    const char* target;
    std::string body;
    int want_status;
    const char* want_substring;
  };
  const std::vector<Probe> probes = {
      {"GET", "/healthz", "", 200, "\"ok\""},
      {"GET", "/readyz", "", 200, "\"ready\""},
      {"POST", "/v1/recommend",
       "{\"model\":\"" + model + "\",\"user\":7,\"top_k\":5}", 200,
       "\"items\""},
      {"POST", "/v1/score",
       "{\"model\":\"" + model + "\",\"user\":7,\"items\":[1,2,3]}", 200,
       "\"scores\""},
      {"GET", "/metrics", "", 200, "longtail_http_requests_total"},
      // And the failure taxonomy, straight off the wire:
      {"POST", "/v1/recommend", "{\"model\":\"nope\",\"user\":1,\"top_k\":2}",
       404, "\"NotFound\""},
      {"POST", "/v1/recommend",
       "{\"model\":\"" + model + "\",\"user\":1,\"top_k\":2,"
       "\"deadline_ms\":0}",
       504, "\"DeadlineExceeded\""},
      {"POST", "/v1/recommend", "not json", 400, "\"InvalidArgument\""},
  };
  for (const Probe& probe : probes) {
    auto response =
        client.Request(probe.method, probe.target, probe.body);
    if (!response.ok()) return Fail(probe.target, response.status());
    if (response.value().status != probe.want_status) {
      std::fprintf(stderr, "%s %s: got %d want %d (%s)\n", probe.method,
                   probe.target, response.value().status, probe.want_status,
                   response.value().body.c_str());
      return 1;
    }
    if (response.value().body.find(probe.want_substring) ==
        std::string::npos) {
      std::fprintf(stderr, "%s %s: body lacks %s: %s\n", probe.method,
                   probe.target, probe.want_substring,
                   response.value().body.c_str());
      return 1;
    }
    std::printf("self_check %-4s %-14s -> %d ok\n", probe.method,
                probe.target, response.value().status);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string work_dir = "serve_http_demo";
  std::string bind = "127.0.0.1";
  std::string port_file;
  int port = 0;
  int workers = 4;
  bool self_check = false;
  FlagParser flags;
  flags.AddString("dir", &dir,
                  "checkpoint directory (dataset.bin + *.ckpt); empty = "
                  "bootstrap a demo fleet under --work_dir first");
  flags.AddString("work_dir", &work_dir,
                  "where the bootstrapped demo fleet goes when --dir is "
                  "unset");
  flags.AddString("bind", &bind, "IPv4 address to bind");
  flags.AddInt("port", &port, "TCP port; 0 = kernel-assigned ephemeral");
  flags.AddInt("workers", &workers, "connection worker threads");
  flags.AddString("port_file", &port_file,
                  "write the bound port here after startup (for scripts "
                  "driving an ephemeral port)");
  flags.AddBool("self_check", &self_check,
                "probe all endpoints in-process, then exit 0/1 (smoke "
                "test mode)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    // --help comes back as FailedPrecondition with usage already printed.
    if (s.code() != StatusCode::kFailedPrecondition) return Fail("flags", s);
    return 0;
  }

  if (dir.empty()) {
    dir = work_dir;
    if (Status s = Bootstrap(dir); !s.ok()) return Fail("bootstrap", s);
  }

  // ---- 1. Port first: probes can tell "starting" from "dead". ---------
  ServingEngine engine;
  ServingHttpFront front(&engine);
  HttpServerOptions server_options;
  server_options.bind_address = bind;
  server_options.port = static_cast<uint16_t>(port);
  server_options.num_workers = static_cast<size_t>(workers);
  server_options.metrics = engine.metrics();
  HttpServer server(
      [&front](const RequestContext& ctx) { return front.Dispatch(ctx); },
      server_options);
  if (Status s = server.Start(); !s.ok()) return Fail("start", s);
  std::printf("listening on %s:%u (readyz: not ready)\n", bind.c_str(),
              server.port());
  if (!port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w"); f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    } else {
      return Fail("port_file", Status::IOError("cannot write " + port_file));
    }
  }

  // ---- 2. Cold-start the fleet from disk. -----------------------------
  auto dataset = LoadDatasetBinary(dir + "/dataset.bin");
  if (!dataset.ok()) return Fail("load dataset", dataset.status());
  auto loaded = LoadCheckpointDirIntoEngine(dir, dataset.value(), &engine);
  if (!loaded.ok()) return Fail("load checkpoints", loaded.status());
  if (loaded.value().empty()) {
    return Fail("load checkpoints",
                Status::NotFound("no loadable *.ckpt under " + dir));
  }
  std::string model_list;
  for (const std::string& name : loaded.value()) {
    if (!model_list.empty()) model_list += ", ";
    model_list += name;
  }

  // ---- 3. Open for business. ------------------------------------------
  front.MarkReady();
  std::printf("ready: %zu model(s) [%s] on port %u\n", loaded.value().size(),
              model_list.c_str(), server.port());

  if (self_check) {
    const int rc = SelfCheck(server.port(), loaded.value().front());
    server.Stop();
    std::printf("self_check %s\n", rc == 0 ? "passed" : "FAILED");
    return rc;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("signal received: draining...\n");
  server.Stop();
  std::printf("shutdown complete\n");
  return 0;
}
