// Batch/sequential parity: the batch query engine must return results
// bit-identical to the per-user RecommendTopK/ScoreItems path for every
// suite algorithm, at any thread count. This is the contract that lets the
// eval harness and benches run entirely on the batch API.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/pagerank.h"
#include "core/absorbing_cost.h"
#include "core/absorbing_time.h"
#include "core/graph_recommender_base.h"
#include "core/hitting_time.h"
#include "data/generator.h"

namespace longtail {
namespace {

class BatchParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_users = 100;
    spec.num_items = 80;
    spec.mean_user_degree = 10;
    spec.min_user_degree = 3;
    spec.num_genres = 5;
    spec.seed = 4242;
    auto data = GenerateSyntheticData(spec);
    ASSERT_TRUE(data.ok());
    data_ = new Dataset(std::move(data).value().dataset);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// Builds the five graph/walk algorithms named by the parity requirement:
  /// HT, AT, AC1, AC2, DPPR.
  static std::vector<std::unique_ptr<Recommender>> BuildSuite() {
    std::vector<std::unique_ptr<Recommender>> suite;
    suite.push_back(std::make_unique<HittingTimeRecommender>());
    suite.push_back(std::make_unique<AbsorbingTimeRecommender>());
    AbsorbingCostOptions ac;
    ac.lda.num_topics = 4;
    ac.lda.iterations = 15;
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kItemBased, ac));
    suite.push_back(std::make_unique<AbsorbingCostRecommender>(
        EntropySource::kTopicBased, ac));
    suite.push_back(
        std::make_unique<PageRankRecommender>(/*discounted=*/true));
    for (auto& rec : suite) {
      EXPECT_TRUE(rec->Fit(*data_).ok()) << rec->name();
    }
    return suite;
  }

  static std::vector<UserId> TestUsers() {
    std::vector<UserId> users;
    for (UserId u = 0; u < std::min<UserId>(50, data_->num_users()); ++u) {
      users.push_back(u);
    }
    return users;
  }

  static Dataset* data_;
};

Dataset* BatchParityTest::data_ = nullptr;

void ExpectIdenticalLists(const std::vector<ScoredItem>& expected,
                          const std::vector<ScoredItem>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(expected[k].item, actual[k].item) << label << " pos " << k;
    // Bit-identical, not approximately equal: the batch engine must run
    // the exact same walk.
    EXPECT_EQ(expected[k].score, actual[k].score) << label << " pos " << k;
  }
}

TEST_F(BatchParityTest, RecommendBatchMatchesSequential) {
  const std::vector<UserId> users = TestUsers();
  const int k = 10;
  for (const auto& rec : BuildSuite()) {
    std::vector<std::vector<ScoredItem>> expected(users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      auto top = rec->RecommendTopK(users[i], k);
      ASSERT_TRUE(top.ok()) << rec->name();
      expected[i] = std::move(top).value();
    }
    for (size_t threads : {1u, 4u}) {
      BatchOptions options;
      options.num_threads = threads;
      auto batch = rec->RecommendBatch(users, k, options);
      ASSERT_EQ(batch.size(), users.size());
      for (size_t i = 0; i < users.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << rec->name() << " user " << users[i];
        ExpectIdenticalLists(expected[i], *batch[i],
                             rec->name() + "@" + std::to_string(threads) +
                                 "t user " + std::to_string(users[i]));
      }
    }
  }
}

TEST_F(BatchParityTest, ScoreBatchMatchesSequential) {
  const std::vector<UserId> users = TestUsers();
  // Per-user candidate lists with different lengths and orders.
  std::vector<std::vector<ItemId>> candidates(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    const int len = 5 + static_cast<int>(i % 7);
    for (int j = 0; j < len; ++j) {
      candidates[i].push_back(
          static_cast<ItemId>((i * 13 + j * 5) % data_->num_items()));
    }
  }
  for (const auto& rec : BuildSuite()) {
    std::vector<std::vector<double>> expected(users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      auto scores = rec->ScoreItems(users[i], candidates[i]);
      ASSERT_TRUE(scores.ok()) << rec->name();
      expected[i] = std::move(scores).value();
    }
    for (size_t threads : {1u, 4u}) {
      BatchOptions options;
      options.num_threads = threads;
      auto batch = rec->ScoreBatch(users, candidates, options);
      ASSERT_EQ(batch.size(), users.size());
      for (size_t i = 0; i < users.size(); ++i) {
        ASSERT_TRUE(batch[i].ok()) << rec->name();
        EXPECT_EQ(expected[i], *batch[i])
            << rec->name() << "@" << threads << "t user " << users[i];
      }
    }
  }
}

// A combined query (top-k + candidate scores) must equal the two separate
// calls — the graph engine serves both from one walk.
TEST_F(BatchParityTest, CombinedQueryMatchesSeparateCalls) {
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*data_).ok());
  const std::vector<ItemId> candidates = {0, 3, 7, 11, 19};
  std::vector<UserQuery> queries;
  for (UserId u = 0; u < 20; ++u) {
    UserQuery q;
    q.user = u;
    q.top_k = 5;
    q.score_items = candidates;
    queries.push_back(q);
  }
  for (size_t threads : {1u, 4u}) {
    BatchOptions options;
    options.num_threads = threads;
    auto results = rec.QueryBatch(queries, options);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok());
      auto top = rec.RecommendTopK(queries[i].user, 5);
      auto scores = rec.ScoreItems(queries[i].user, candidates);
      ASSERT_TRUE(top.ok());
      ASSERT_TRUE(scores.ok());
      ExpectIdenticalLists(*top, results[i].top_k,
                           "combined@" + std::to_string(threads));
      EXPECT_EQ(*scores, results[i].scores);
    }
  }
}

// Per-query failures (out-of-range users here) must not fail the batch:
// every other query still gets served.
TEST_F(BatchParityTest, FailedQueriesAreIsolated) {
  AbsorbingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*data_).ok());
  std::vector<UserId> users = {0, -5, 1, data_->num_users() + 7, 2};
  for (size_t threads : {1u, 4u}) {
    BatchOptions options;
    options.num_threads = threads;
    auto batch = rec.RecommendBatch(users, 5, options);
    ASSERT_EQ(batch.size(), users.size());
    EXPECT_TRUE(batch[0].ok());
    EXPECT_FALSE(batch[1].ok());
    EXPECT_TRUE(batch[2].ok());
    EXPECT_FALSE(batch[3].ok());
    EXPECT_TRUE(batch[4].ok());
    auto expected = rec.RecommendTopK(0, 5);
    ASSERT_TRUE(expected.ok());
    ExpectIdenticalLists(*expected, *batch[0], "after failures");
  }
}

// Duplicated users force the fused multi-query sweep: queries with equal
// seed sets group onto one subgraph and advance as interleaved lanes of a
// single CSR pass. Results must be bit-identical to the sequential
// per-user calls and to the ungrouped width-1 dispatch, at every fused
// width ceiling and thread count, and the width observer must account for
// every served query exactly once.
TEST_F(BatchParityTest, FusedGroupingMatchesUngroupedAcrossWidthsAndThreads) {
  for (const auto& rec : BuildSuite()) {
    // DPPR is in the parity suite but is not a graph-walk engine: it takes
    // the default per-query dispatch and never invokes the observer.
    const bool graph_engine =
        dynamic_cast<const GraphRecommenderBase*>(rec.get()) != nullptr;
    const std::vector<ItemId> candidates = {2, 5, 9, 14, 21};
    // 6 copies of a hot user + assorted singletons and smaller duplicate
    // runs, interleaved so grouping has to reorder, plus one bad user whose
    // failure must stay isolated inside its would-be group.
    const std::vector<UserId> pattern = {7, 3, 7, 12, 7, 3,  7, -1, 25,
                                         7, 3, 7, 30, 12, 3, 31, 32, 33};
    std::vector<UserQuery> queries;
    for (UserId u : pattern) {
      UserQuery q;
      q.user = u;
      q.top_k = 6;
      q.score_items = candidates;
      queries.push_back(q);
    }
    std::vector<UserQueryResult> expected(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto top = rec->RecommendTopK(queries[i].user, 6);
      if (!top.ok()) {
        expected[i].status = top.status();
        continue;
      }
      expected[i].top_k = std::move(top).value();
      auto scores = rec->ScoreItems(queries[i].user, candidates);
      ASSERT_TRUE(scores.ok()) << rec->name();
      expected[i].scores = std::move(scores).value();
    }
    std::mutex mu;
    std::vector<int32_t> widths;
    std::function<void(int32_t)> observer = [&](int32_t width) {
      std::lock_guard<std::mutex> lock(mu);
      widths.push_back(width);
    };
    for (size_t threads : {1u, 8u}) {
      for (int32_t cap : {0, 1, 2, 3, 8}) {
        BatchOptions options;
        options.num_threads = threads;
        options.max_fused_width = cap;
        options.fused_width_observer = &observer;
        {
          std::lock_guard<std::mutex> lock(mu);
          widths.clear();
        }
        auto results = rec->QueryBatch(queries, options);
        ASSERT_EQ(results.size(), queries.size());
        const std::string label = rec->name() + " cap " + std::to_string(cap) +
                                  " @" + std::to_string(threads) + "t";
        size_t served = 0;
        for (size_t i = 0; i < queries.size(); ++i) {
          if (!expected[i].status.ok()) {
            EXPECT_EQ(expected[i].status.code(), results[i].status.code())
                << label;
            continue;
          }
          ASSERT_TRUE(results[i].status.ok()) << label << " query " << i;
          ++served;
          ExpectIdenticalLists(expected[i].top_k, results[i].top_k,
                               label + " query " + std::to_string(i));
          EXPECT_EQ(expected[i].scores, results[i].scores)
              << label << " query " << i;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (!graph_engine || cap == 1) {
          // Width 1 takes the ungrouped per-query dispatch; the observer
          // never fires there (nor for non-graph recommenders).
          EXPECT_TRUE(widths.empty()) << label;
        } else {
          int64_t lanes = 0;
          for (int32_t w : widths) {
            lanes += w;
            EXPECT_GE(w, 1) << label;
            if (cap > 0) EXPECT_LE(w, cap) << label;
          }
          // Every successfully served query rode exactly one dispatched
          // sweep; with 6 copies of user 7 and a cap above 1, at least one
          // sweep must actually have fused.
          EXPECT_EQ(lanes, static_cast<int64_t>(served)) << label;
          EXPECT_GT(*std::max_element(widths.begin(), widths.end()), 1)
              << label;
        }
      }
    }
  }
}

// Exact-solver configurations run the Gauss–Seidel path through the
// workspace; parity must hold there too.
TEST_F(BatchParityTest, ExactSolverBatchMatchesSequential) {
  GraphWalkOptions walk;
  walk.exact = true;
  AbsorbingTimeRecommender rec(walk);
  ASSERT_TRUE(rec.Fit(*data_).ok());
  std::vector<UserId> users = TestUsers();
  std::vector<std::vector<ScoredItem>> expected(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    auto top = rec.RecommendTopK(users[i], 8);
    ASSERT_TRUE(top.ok());
    expected[i] = std::move(top).value();
  }
  BatchOptions options;
  options.num_threads = 4;
  auto batch = rec.RecommendBatch(users, 8, options);
  for (size_t i = 0; i < users.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    ExpectIdenticalLists(expected[i], *batch[i], "exact");
  }
}

}  // namespace
}  // namespace longtail
