// A small validator for Prometheus text exposition format 0.0.4, shared by
// the metrics-registry golden tests and the live-engine exposition test.
// Checks the structural invariants a scraper relies on:
//   * every sample belongs to a family announced by a `# TYPE` line, with
//     histogram samples restricted to _bucket/_sum/_count suffixes;
//   * metric and label names match the Prometheus grammar;
//   * sample values parse as decimal floating point (or +Inf/-Inf/NaN);
//   * histogram buckets are cumulative (non-decreasing in `le` order),
//     terminated by an `le="+Inf"` bucket that equals `_count`.
// Header-only and test-only: lives in tests/, not src/.
#ifndef LONGTAIL_TESTS_PROMETHEUS_TEXT_CHECKER_H_
#define LONGTAIL_TESTS_PROMETHEUS_TEXT_CHECKER_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace longtail {

namespace prometheus_checker_internal {

inline bool ValidName(const std::string& name, bool allow_colon) {
  if (name.empty()) return false;
  auto head = [allow_colon](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           (allow_colon && c == ':');
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

inline bool ParseValue(const std::string& text, double* out) {
  if (text == "+Inf" || text == "Inf" || text == "-Inf" || text == "NaN") {
    *out = text == "-Inf" ? -1.0 : 1.0;  // magnitude unused by the checks
    return true;
  }
  const char* begin = text.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end == begin + text.size() && !text.empty();
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
  std::string value_text;
};

// Parses `name{a="b",...} value` (labels optional). Returns false with a
// reason on malformed lines.
inline bool ParseSample(const std::string& line, Sample* sample,
                        std::string* why) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  sample->name = line.substr(0, i);
  if (!ValidName(sample->name, /*allow_colon=*/true)) {
    *why = "invalid metric name '" + sample->name + "'";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *why = "malformed label pair";
        return false;
      }
      const std::string label_name = line.substr(i, eq - i);
      if (!ValidName(label_name, /*allow_colon=*/false)) {
        *why = "invalid label name '" + label_name + "'";
        return false;
      }
      // Scan the quoted value honoring backslash escapes.
      std::string value;
      size_t j = eq + 2;
      bool closed = false;
      while (j < line.size()) {
        char c = line[j];
        if (c == '\\' && j + 1 < line.size()) {
          char esc = line[j + 1];
          value += esc == 'n' ? '\n' : esc;
          j += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++j;
          break;
        }
        value += c;
        ++j;
      }
      if (!closed) {
        *why = "unterminated label value";
        return false;
      }
      sample->labels[label_name] = value;
      i = j;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *why = "unterminated label set";
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *why = "missing value separator";
    return false;
  }
  sample->value_text = line.substr(i + 1);
  // Exposition lines may carry an optional trailing timestamp; none of ours
  // do, so a space in the value field is malformed here.
  if (!ParseValue(sample->value_text, &sample->value)) {
    *why = "unparseable value '" + sample->value_text + "'";
    return false;
  }
  return true;
}

}  // namespace prometheus_checker_internal

/// Validates a full exposition. On failure returns false and, when `error`
/// is non-null, stores a human-readable reason including the line.
inline bool CheckPrometheusText(const std::string& text, std::string* error) {
  using prometheus_checker_internal::ParseSample;
  using prometheus_checker_internal::Sample;
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  std::map<std::string, std::string> family_type;  // name -> type
  // Histogram series keyed by (family, non-le labels serialization).
  struct HistogramSeries {
    std::vector<std::pair<std::string, double>> buckets;  // (le, cumulative)
    bool has_sum = false;
    bool has_count = false;
    double count = 0.0;
  };
  std::map<std::string, HistogramSeries> histograms;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string at = " at line " + std::to_string(line_no) + ": " + line;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return fail("unknown TYPE '" + type + "'" + at);
      }
      if (family_type.count(name) != 0) {
        return fail("duplicate TYPE for '" + name + "'" + at);
      }
      family_type[name] = type;
      continue;
    }
    if (line[0] == '#') continue;  // HELP and comments

    Sample sample;
    std::string why;
    if (!ParseSample(line, &sample, &why)) return fail(why + at);

    // Resolve the family: exact name, or histogram suffix on a declared
    // histogram family.
    std::string family = sample.name;
    std::string suffix;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      const std::string tail(s);
      if (family.size() > tail.size() &&
          family.compare(family.size() - tail.size(), tail.size(), tail) ==
              0) {
        const std::string base = family.substr(0, family.size() - tail.size());
        auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          family = base;
          suffix = tail;
          break;
        }
      }
    }
    auto it = family_type.find(family);
    if (it == family_type.end()) {
      return fail("sample without TYPE header" + at);
    }
    const std::string& type = it->second;
    if (type == "histogram") {
      if (suffix.empty()) {
        return fail("bare sample for histogram family '" + family + "'" + at);
      }
      // Key by the labels minus `le`.
      auto labels = sample.labels;
      std::string le;
      if (suffix == "_bucket") {
        auto le_it = labels.find("le");
        if (le_it == labels.end()) {
          return fail("histogram bucket without le label" + at);
        }
        le = le_it->second;
        labels.erase(le_it);
      }
      std::string key = family;
      for (const auto& [k, v] : labels) key += "|" + k + "=" + v;
      HistogramSeries& series = histograms[key];
      if (suffix == "_bucket") {
        series.buckets.emplace_back(le, sample.value);
      } else if (suffix == "_sum") {
        series.has_sum = true;
      } else {
        series.has_count = true;
        series.count = sample.value;
      }
    }
  }

  for (const auto& [key, series] : histograms) {
    if (series.buckets.empty()) {
      return fail("histogram '" + key + "' has no buckets");
    }
    double prev = -1.0;
    double prev_le = -1e308;
    bool saw_inf = false;
    for (const auto& [le, cumulative] : series.buckets) {
      if (saw_inf) {
        return fail("histogram '" + key + "' has buckets after +Inf");
      }
      if (le == "+Inf") {
        saw_inf = true;
      } else {
        double bound = 0.0;
        if (!prometheus_checker_internal::ParseValue(le, &bound)) {
          return fail("histogram '" + key + "' has unparseable le '" + le +
                      "'");
        }
        if (bound <= prev_le) {
          return fail("histogram '" + key + "' le bounds not ascending");
        }
        prev_le = bound;
      }
      if (cumulative < prev) {
        return fail("histogram '" + key + "' buckets not cumulative");
      }
      prev = cumulative;
    }
    if (!saw_inf) {
      return fail("histogram '" + key + "' missing +Inf bucket");
    }
    if (!series.has_sum || !series.has_count) {
      return fail("histogram '" + key + "' missing _sum or _count");
    }
    if (series.count != series.buckets.back().second) {
      return fail("histogram '" + key + "' _count != +Inf bucket");
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace longtail

#endif  // LONGTAIL_TESTS_PROMETHEUS_TEXT_CHECKER_H_
