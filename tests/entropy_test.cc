#include "core/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace longtail {
namespace {

TEST(EntropyTest, UniformDistributionIsLogN) {
  std::vector<double> w(8, 1.0);
  EXPECT_NEAR(Entropy(std::span<const double>(w)), std::log(8.0), 1e-12);
}

TEST(EntropyTest, PointMassIsZero) {
  std::vector<double> w = {0.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(Entropy(std::span<const double>(w)), 0.0);
}

TEST(EntropyTest, EmptyAndZeroAreZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Entropy(std::span<const double>(empty)), 0.0);
  std::vector<double> zeros(4, 0.0);
  EXPECT_DOUBLE_EQ(Entropy(std::span<const double>(zeros)), 0.0);
}

TEST(EntropyTest, KnownBiasedCoin) {
  // H(0.25, 0.75) = -(0.25 ln 0.25 + 0.75 ln 0.75).
  std::vector<double> w = {1.0, 3.0};
  const double expected = -(0.25 * std::log(0.25) + 0.75 * std::log(0.75));
  EXPECT_NEAR(Entropy(std::span<const double>(w)), expected, 1e-12);
}

TEST(EntropyTest, ScaleInvariant) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {10.0, 20.0, 30.0};
  EXPECT_NEAR(Entropy(std::span<const double>(a)),
              Entropy(std::span<const double>(b)), 1e-12);
}

TEST(EntropyTest, BoundedByLogSupport) {
  std::vector<double> w = {0.3, 1.7, 2.2, 0.5, 1.0};
  const double h = Entropy(std::span<const double>(w));
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, std::log(5.0) + 1e-12);
}

TEST(ItemBasedUserEntropyTest, Figure2Values) {
  // Eq. 10 on U5: ratings {4, 5} → p = {4/9, 5/9}.
  Dataset d = testing::MakeFigure2Dataset();
  const auto e = ItemBasedUserEntropy(d);
  ASSERT_EQ(e.size(), 5u);
  const double p1 = 4.0 / 9.0;
  const double p2 = 5.0 / 9.0;
  EXPECT_NEAR(e[testing::kU5], -(p1 * std::log(p1) + p2 * std::log(p2)),
              1e-12);
}

TEST(ItemBasedUserEntropyTest, BroadUsersHaveHigherEntropy) {
  // §4.2.2: U2 (5 ratings) is "general"; U4 (2 ratings) is taste-specific.
  Dataset d = testing::MakeFigure2Dataset();
  const auto e = ItemBasedUserEntropy(d);
  EXPECT_GT(e[testing::kU2], e[testing::kU4]);
  EXPECT_GT(e[testing::kU1], e[testing::kU4]);
}

TEST(ItemBasedUserEntropyTest, UserWithoutRatingsIsZero) {
  auto d = Dataset::Create(2, 1, {{0, 0, 5.0f}});
  ASSERT_TRUE(d.ok());
  const auto e = ItemBasedUserEntropy(*d);
  EXPECT_DOUBLE_EQ(e[1], 0.0);
}

TEST(TopicBasedUserEntropyTest, RowEntropies) {
  DenseMatrix theta(2, 4, 0.25);  // Uniform rows → ln 4.
  theta(1, 0) = 1.0;
  theta(1, 1) = 0.0;
  theta(1, 2) = 0.0;
  theta(1, 3) = 0.0;
  const auto e = TopicBasedUserEntropy(theta);
  EXPECT_NEAR(e[0], std::log(4.0), 1e-12);
  EXPECT_NEAR(e[1], 0.0, 1e-12);
}

TEST(TopicBasedUserEntropyTest, SpecificUserBelowBroadUser) {
  DenseMatrix theta(2, 3);
  theta(0, 0) = 0.90;
  theta(0, 1) = 0.05;
  theta(0, 2) = 0.05;
  theta(1, 0) = 0.34;
  theta(1, 1) = 0.33;
  theta(1, 2) = 0.33;
  const auto e = TopicBasedUserEntropy(theta);
  EXPECT_LT(e[0], e[1]);
}

}  // namespace
}  // namespace longtail
