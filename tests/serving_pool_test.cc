// ServingPool: the process-lifetime pool every batch shares. The contract
// under test — beyond plain ParallelFor coverage — is what makes one pool
// safe to share: the caller participates as a worker (so saturated pools
// cannot deadlock concurrent batches), re-entrant calls run inline, and
// worker threads persist across calls (pinned thread_local state survives).
#include "util/serving_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace longtail {
namespace {

TEST(ServingPoolTest, CoversEveryIndexExactlyOnce) {
  ServingPool pool(4);
  const size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ServingPoolTest, DefaultsToHardwareConcurrency) {
  ServingPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ServingPoolTest, GlobalPoolIsASingleton) {
  ServingPool& a = ServingPool::Global();
  ServingPool& b = ServingPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ServingPoolTest, ParallelismOneRunsInlineInOrder) {
  ServingPool pool(4);
  std::vector<int> order;
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(
      6,
      [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(static_cast<int>(i));
      },
      /*parallelism=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ServingPoolTest, CallerParticipatesAsWorker) {
  ServingPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> threads;
  std::atomic<int> count{0};
  pool.ParallelFor(500, [&](size_t) {
    count.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(count.load(), 500);
  // Caller + at most 2 pool workers.
  EXPECT_LE(threads.size(), 3u);
}

// Worker threads persist across calls — no per-batch thread spawn. Over
// many batches the set of executing threads stays bounded by
// caller + pool width, which is what lets thread_local WalkWorkspaces
// stay warm across batches.
TEST(ServingPoolTest, WorkersPersistAcrossCalls) {
  ServingPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> threads;
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(
        256,
        [&](size_t) {
          std::lock_guard<std::mutex> lock(mu);
          threads.insert(std::this_thread::get_id());
        },
        /*parallelism=*/0, /*grain=*/1);
  }
  EXPECT_LE(threads.size(), pool.num_threads() + 1);
}

// Re-entrant ParallelFor (a task fanning out again) must complete inline
// instead of deadlocking on its own pool.
TEST(ServingPoolTest, ReentrantCallsRunInline) {
  ServingPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ServingPoolTest, InWorkerFlagMatchesContext) {
  EXPECT_FALSE(ServingPool::InWorker());
  ServingPool pool(2);
  std::atomic<int> worker_sightings{0};
  pool.ParallelFor(
      64,
      [&](size_t) {
        if (ServingPool::InWorker()) worker_sightings.fetch_add(1);
      },
      /*parallelism=*/0, /*grain=*/1);
  // The caller is not a pool worker; helpers are. With 64 grain-1 indices
  // and 2 helpers, at least one index lands on a helper in practice, but
  // the only hard guarantee is the flag never reads true on the caller.
  EXPECT_FALSE(ServingPool::InWorker());
  EXPECT_LE(worker_sightings.load(), 64);
}

// Many external threads sharing one pool concurrently: every batch must
// complete with exact coverage — the caller-participation rule makes this
// deadlock-free even with more batches than workers.
TEST(ServingPoolTest, ConcurrentBatchesFromManyThreads) {
  ServingPool pool(2);
  constexpr int kCallers = 6;
  constexpr size_t kN = 2000;
  std::vector<long long> sums(kCallers, -1);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::atomic<long long> sum{0};
      pool.ParallelFor(kN, [&](size_t i) {
        sum.fetch_add(static_cast<long long>(i));
      });
      sums[c] = sum.load();
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], static_cast<long long>(kN) * (kN - 1) / 2) << c;
  }
}

TEST(ServingPoolTest, ZeroAndSingleIteration) {
  ServingPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ServingPoolTest, ExplicitGrainCoversAllIndices) {
  ServingPool pool(3);
  for (size_t grain : {1u, 7u, 64u, 1000u}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); },
                     /*parallelism=*/0, grain);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

}  // namespace
}  // namespace longtail
