#include "topics/lda.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "test_util.h"

namespace longtail {
namespace {

LdaOptions FastOptions(int topics) {
  LdaOptions options;
  options.num_topics = topics;
  options.iterations = 40;
  options.seed = 5;
  return options;
}

TEST(LdaTest, RejectsBadOptions) {
  Dataset d = testing::MakeFigure2Dataset();
  LdaOptions options = FastOptions(0);
  EXPECT_FALSE(LdaModel::Train(d, options).ok());
  options = FastOptions(2);
  options.beta = 0.0;
  EXPECT_FALSE(LdaModel::Train(d, options).ok());
}

TEST(LdaTest, RejectsEmptyDataset) {
  auto d = Dataset::Create(2, 2, {});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(LdaModel::Train(*d, FastOptions(2)).ok());
}

TEST(LdaTest, ThetaRowsAreDistributions) {
  Dataset d = testing::MakeFigure2Dataset();
  auto model = LdaModel::Train(d, FastOptions(3));
  ASSERT_TRUE(model.ok());
  for (size_t u = 0; u < model->theta().rows(); ++u) {
    double sum = 0.0;
    for (size_t z = 0; z < model->theta().cols(); ++z) {
      const double p = model->theta()(u, z);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, PhiRowsAreDistributions) {
  Dataset d = testing::MakeFigure2Dataset();
  auto model = LdaModel::Train(d, FastOptions(3));
  ASSERT_TRUE(model.ok());
  for (size_t z = 0; z < model->phi().rows(); ++z) {
    double sum = 0.0;
    for (size_t i = 0; i < model->phi().cols(); ++i) {
      const double p = model->phi()(z, i);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, DeterministicForFixedSeed) {
  Dataset d = testing::MakeFigure2Dataset();
  auto m1 = LdaModel::Train(d, FastOptions(2));
  auto m2 = LdaModel::Train(d, FastOptions(2));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  for (size_t u = 0; u < m1->theta().rows(); ++u) {
    for (size_t z = 0; z < m1->theta().cols(); ++z) {
      EXPECT_DOUBLE_EQ(m1->theta()(u, z), m2->theta()(u, z));
    }
  }
}

TEST(LdaTest, ScoreIsMixtureOfTopics) {
  Dataset d = testing::MakeFigure2Dataset();
  auto model = LdaModel::Train(d, FastOptions(2));
  ASSERT_TRUE(model.ok());
  for (UserId u = 0; u < d.num_users(); ++u) {
    double total = 0.0;
    for (ItemId i = 0; i < d.num_items(); ++i) {
      const double s = model->Score(u, i);
      EXPECT_GT(s, 0.0);
      total += s;
    }
    // Σ_i Σ_z θ_uz φ_zi = Σ_z θ_uz = 1.
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LdaTest, TopItemsPerTopicSortedAndSized) {
  Dataset d = testing::MakeFigure2Dataset();
  auto model = LdaModel::Train(d, FastOptions(2));
  ASSERT_TRUE(model.ok());
  const auto tops = model->TopItemsPerTopic(3);
  ASSERT_EQ(tops.size(), 2u);
  for (const auto& topic : tops) {
    ASSERT_EQ(topic.size(), 3u);
    for (size_t k = 1; k < topic.size(); ++k) {
      EXPECT_GE(topic[k - 1].score, topic[k].score);
    }
  }
}

TEST(LdaTest, RecoversPlantedGenresOnSyntheticData) {
  // Table 1's qualitative claim: topics align with genres. Generate a
  // 2-genre corpus with strong affinity and check topic purity.
  SyntheticSpec spec;
  spec.num_users = 200;
  spec.num_items = 60;
  spec.num_genres = 2;
  spec.mean_user_degree = 25;
  spec.min_user_degree = 10;
  spec.genre_affinity = 0.95;
  spec.dirichlet_alpha = 0.08;  // Very taste-specific users.
  spec.zipf_exponent = 0.3;
  spec.seed = 99;
  auto data = GenerateSyntheticData(spec);
  ASSERT_TRUE(data.ok());
  LdaOptions options = FastOptions(2);
  options.iterations = 120;
  auto model = LdaModel::Train(data->dataset, options);
  ASSERT_TRUE(model.ok());

  // For each topic, the top-10 items should be genre-pure (majority ≥ 8).
  const auto tops = model->TopItemsPerTopic(10);
  int distinct_majorities = 0;
  std::vector<int> majority_genre;
  for (const auto& topic : tops) {
    int genre_counts[2] = {0, 0};
    for (const auto& si : topic) {
      ++genre_counts[data->dataset.item_genres[si.item]];
    }
    const int majority = genre_counts[0] >= genre_counts[1] ? 0 : 1;
    EXPECT_GE(genre_counts[majority], 8)
        << "topic is not genre-pure: " << genre_counts[0] << "/"
        << genre_counts[1];
    majority_genre.push_back(majority);
  }
  if (majority_genre[0] != majority_genre[1]) ++distinct_majorities;
  EXPECT_EQ(distinct_majorities, 1) << "both topics captured the same genre";
}

TEST(LdaTest, LikelihoodImprovesWithTraining) {
  Dataset d = testing::MakeFigure2Dataset();
  LdaOptions short_run = FastOptions(2);
  short_run.iterations = 1;
  LdaOptions long_run = FastOptions(2);
  long_run.iterations = 100;
  auto m_short = LdaModel::Train(d, short_run);
  auto m_long = LdaModel::Train(d, long_run);
  ASSERT_TRUE(m_short.ok());
  ASSERT_TRUE(m_long.ok());
  // More Gibbs sweeps should not make held-in likelihood much worse.
  EXPECT_GE(m_long->TokenLogLikelihood(d),
            m_short->TokenLogLikelihood(d) - 0.05);
}

TEST(LdaTest, RatingAsFrequencyChangesTokenWeighting) {
  // A 5-star rating counts 5× in training; with the flag off both ratings
  // count once. The resulting θ must differ for a user with skewed ratings.
  auto d = Dataset::Create(
      2, 2, {{0, 0, 5.0f}, {0, 1, 1.0f}, {1, 0, 1.0f}, {1, 1, 5.0f}});
  ASSERT_TRUE(d.ok());
  LdaOptions weighted = FastOptions(2);
  LdaOptions unweighted = FastOptions(2);
  unweighted.rating_as_frequency = false;
  auto mw = LdaModel::Train(*d, weighted);
  auto mu = LdaModel::Train(*d, unweighted);
  ASSERT_TRUE(mw.ok());
  ASSERT_TRUE(mu.ok());
  // Weighted model saw 12 tokens, unweighted 4 — smoothing alone makes the
  // posterior means differ.
  bool any_diff = false;
  for (size_t u = 0; u < 2; ++u) {
    for (size_t z = 0; z < 2; ++z) {
      if (std::abs(mw->theta()(u, z) - mu->theta()(u, z)) > 1e-6) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace longtail
