#include "graph/random_walk.h"

#include <gtest/gtest.h>

#include "graph/markov.h"
#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;
using testing::MakeStarDataset;

TEST(StationaryDistributionTest, SumsToOne) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  const auto pi = StationaryDistribution(g);
  double total = 0.0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StationaryDistributionTest, ProportionalToWeightedDegree) {
  // Eq. 2: π_i = d_i / Σ d_j.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  const auto pi = StationaryDistribution(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(pi[v], g.WeightedDegree(v) / g.TotalWeight(), 1e-12);
  }
}

TEST(StationaryDistributionTest, IsFixedPointOfTransition) {
  // πᵀ P = πᵀ for the reversible walk.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  const auto pi = StationaryDistribution(g);
  CsrMatrix p = TransitionMatrix(g);
  std::vector<double> next;
  p.MultiplyTranspose(pi, &next);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(next[v], pi[v], 1e-12);
  }
}

TEST(TransitionMatrixTest, RowsAreStochastic) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  CsrMatrix p = TransitionMatrix(g);
  for (int32_t r = 0; r < p.rows(); ++r) {
    EXPECT_NEAR(p.RowSum(r), 1.0, 1e-12);
  }
}

TEST(TransitionMatrixTest, TimeReversibility) {
  // π_i p_ij = π_j p_ji (§3.3).
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  CsrMatrix p = TransitionMatrix(g);
  const auto pi = StationaryDistribution(g);
  for (int32_t i = 0; i < p.rows(); ++i) {
    const auto idx = p.RowIndices(i);
    const auto val = p.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int32_t j = idx[k];
      EXPECT_NEAR(pi[i] * val[k], pi[j] * p.At(j, i), 1e-12);
    }
  }
}

TEST(TransitionMatrixTest, WeightedProbabilities) {
  // U5 rated M2=4 and M3=5: p(U5→M3) = 5/9.
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  CsrMatrix p = TransitionMatrix(g);
  EXPECT_NEAR(p.At(g.UserNode(testing::kU5), g.ItemNode(testing::kM3)),
              5.0 / 9.0, 1e-12);
  EXPECT_NEAR(p.At(g.UserNode(testing::kU5), g.ItemNode(testing::kM2)),
              4.0 / 9.0, 1e-12);
}

TEST(SimulatorTest, StepReachesOnlyNeighbors) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeFigure2Dataset());
  RandomWalkSimulator sim(&g);
  Rng rng(3);
  const NodeId start = g.UserNode(testing::kU5);
  for (int t = 0; t < 200; ++t) {
    auto next = sim.Step(start, &rng);
    ASSERT_TRUE(next.has_value());
    const ItemId item = g.ItemOf(*next);
    EXPECT_TRUE(item == testing::kM2 || item == testing::kM3);
  }
}

TEST(SimulatorTest, StepFromIsolatedNodeIsNull) {
  auto d = Dataset::Create(2, 1, {{0, 0, 1.0f}});
  ASSERT_TRUE(d.ok());
  BipartiteGraph g = BipartiteGraph::FromDataset(*d);
  RandomWalkSimulator sim(&g);
  Rng rng(4);
  EXPECT_FALSE(sim.Step(g.UserNode(1), &rng).has_value());
}

TEST(SimulatorTest, MonteCarloMatchesAnalyticAbsorbingTime) {
  // Star with 4 items, absorb at the user: every item is 1 step away.
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(4));
  RandomWalkSimulator sim(&g);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(0)] = true;
  Rng rng(5);
  const double estimate =
      sim.EstimateAbsorbingTime(g.ItemNode(2), absorbing, 2000, 1000, &rng);
  EXPECT_NEAR(estimate, 1.0, 1e-9);
}

TEST(SimulatorTest, MonteCarloMatchesExactOnFigure2) {
  Dataset d = MakeFigure2Dataset();
  BipartiteGraph g = BipartiteGraph::FromDataset(d);
  std::vector<bool> absorbing(g.num_nodes(), false);
  absorbing[g.UserNode(testing::kU5)] = true;
  auto exact = AbsorbingTimeExact(g, absorbing);
  ASSERT_TRUE(exact.ok());
  RandomWalkSimulator sim(&g);
  Rng rng(6);
  const NodeId m4 = g.ItemNode(testing::kM4);
  const double estimate =
      sim.EstimateAbsorbingTime(m4, absorbing, 20000, 100000, &rng);
  // Monte-Carlo within ~3 standard errors (std dev of absorption time is
  // on the order of the mean here).
  EXPECT_NEAR(estimate, (*exact)[m4], 0.06 * (*exact)[m4]);
}

TEST(SimulatorTest, WalkFromAbsorbingNodeTakesZeroSteps) {
  BipartiteGraph g = BipartiteGraph::FromDataset(MakeStarDataset(3));
  RandomWalkSimulator sim(&g);
  std::vector<bool> absorbing(g.num_nodes(), true);
  Rng rng(7);
  auto steps = sim.WalkUntilAbsorbed(0, absorbing, 10, &rng);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(*steps, 0);
}

}  // namespace
}  // namespace longtail
