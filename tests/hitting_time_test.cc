#include "core/hitting_time.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace longtail {
namespace {

using testing::MakeFigure2Dataset;

GraphWalkOptions ExactOptions() {
  GraphWalkOptions options;
  options.exact = true;
  options.max_subgraph_items = 0;  // whole graph
  return options;
}

TEST(HittingTimeRecommenderTest, Figure2RecommendsM4First) {
  // §3.3: "we will recommend the niche movie M4 to U5 since it has the
  // smallest hitting time, while traditional CF would suggest M1."
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  auto top = rec.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 4u);
  EXPECT_EQ((*top)[0].item, testing::kM4);
  EXPECT_EQ((*top)[1].item, testing::kM1);
  EXPECT_EQ((*top)[2].item, testing::kM5);
  EXPECT_EQ((*top)[3].item, testing::kM6);
}

TEST(HittingTimeRecommenderTest, TruncatedMatchesExactRanking) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender exact(ExactOptions());
  ASSERT_TRUE(exact.Fit(d).ok());
  GraphWalkOptions truncated_options;
  truncated_options.iterations = 15;
  truncated_options.max_subgraph_items = 0;
  HittingTimeRecommender truncated(truncated_options);
  ASSERT_TRUE(truncated.Fit(d).ok());
  auto a = exact.RecommendTopK(testing::kU5, 4);
  auto b = truncated.RecommendTopK(testing::kU5, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t k = 0; k < a->size(); ++k) {
    EXPECT_EQ((*a)[k].item, (*b)[k].item) << "position " << k;
  }
}

TEST(HittingTimeRecommenderTest, NeverRecommendsRatedItems) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  for (UserId u = 0; u < d.num_users(); ++u) {
    auto top = rec.RecommendTopK(u, 6);
    ASSERT_TRUE(top.ok());
    for (const ScoredItem& si : *top) {
      EXPECT_FALSE(d.HasRating(u, si.item));
    }
  }
}

TEST(HittingTimeRecommenderTest, ScoresAreNegatedHittingTimes) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec(ExactOptions());
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> items = {testing::kM4, testing::kM1};
  auto scores = rec.ScoreItems(testing::kU5, items);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0], (*scores)[1]);  // M4 closer than M1.
  EXPECT_LT((*scores)[0], 0.0);           // Negated positive time.
}

TEST(HittingTimeRecommenderTest, ColdStartUserFails) {
  auto d = Dataset::Create(2, 2, {{0, 0, 5.0f}, {0, 1, 3.0f}});
  ASSERT_TRUE(d.ok());
  HittingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(*d).ok());
  EXPECT_FALSE(rec.RecommendTopK(1, 3).ok());
}

TEST(HittingTimeRecommenderTest, QueriesBeforeFitFail) {
  HittingTimeRecommender rec;
  EXPECT_FALSE(rec.RecommendTopK(0, 3).ok());
}

TEST(HittingTimeRecommenderTest, DoubleFitFails) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_FALSE(rec.Fit(d).ok());
}

TEST(HittingTimeRecommenderTest, InvalidUserRejected) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  EXPECT_FALSE(rec.RecommendTopK(99, 3).ok());
  EXPECT_FALSE(rec.RecommendTopK(-1, 3).ok());
}

TEST(HittingTimeRecommenderTest, CandidateOutOfRangeRejected) {
  Dataset d = MakeFigure2Dataset();
  HittingTimeRecommender rec;
  ASSERT_TRUE(rec.Fit(d).ok());
  const std::vector<ItemId> bad = {99};
  EXPECT_FALSE(rec.ScoreItems(testing::kU5, bad).ok());
}

TEST(HittingTimeRecommenderTest, NameIsHT) {
  HittingTimeRecommender rec;
  EXPECT_EQ(rec.name(), "HT");
}

}  // namespace
}  // namespace longtail
